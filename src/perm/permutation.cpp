#include "perm/permutation.hpp"

#include <numeric>

namespace hmm::perm {

Permutation::Permutation(std::uint64_t n) : map_(n) {
  HMM_CHECK(n > 0 && n <= (1ull << 32));
  std::iota(map_.begin(), map_.end(), 0u);
}

Permutation::Permutation(util::aligned_vector<std::uint32_t> mapping) : map_(std::move(mapping)) {
  HMM_CHECK_MSG(is_valid({map_.data(), map_.size()}), "mapping is not a permutation");
}

bool Permutation::is_valid(std::span<const std::uint32_t> mapping) {
  if (mapping.empty()) return false;
  std::vector<std::uint8_t> seen(mapping.size(), 0);
  for (std::uint32_t v : mapping) {
    if (v >= mapping.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

Permutation Permutation::inverse() const {
  util::aligned_vector<std::uint32_t> inv(map_.size());
  for (std::uint64_t i = 0; i < map_.size(); ++i) {
    inv[map_[i]] = static_cast<std::uint32_t>(i);
  }
  Permutation p(1);
  p.map_ = std::move(inv);
  return p;
}

Permutation Permutation::compose(const Permutation& other) const {
  HMM_CHECK(size() == other.size());
  util::aligned_vector<std::uint32_t> out(map_.size());
  for (std::uint64_t i = 0; i < map_.size(); ++i) out[i] = map_[other.map_[i]];
  Permutation p(1);
  p.map_ = std::move(out);
  return p;
}

bool Permutation::is_identity() const {
  for (std::uint64_t i = 0; i < map_.size(); ++i) {
    if (map_[i] != i) return false;
  }
  return true;
}

}  // namespace hmm::perm
