#include "perm/generators.hpp"

#include <numeric>

#include "util/bits.hpp"

namespace hmm::perm {
namespace {

using util::aligned_vector;

Permutation from_map(aligned_vector<std::uint32_t> map) { return Permutation(std::move(map)); }

}  // namespace

Permutation identical(std::uint64_t n) { return Permutation(n); }

Permutation shuffle(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n), "shuffle requires a power-of-two size");
  const unsigned bits = util::log2_exact(n);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(util::rotate_left_bits(i, bits));
  }
  return from_map(std::move(map));
}

Permutation unshuffle(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n), "unshuffle requires a power-of-two size");
  const unsigned bits = util::log2_exact(n);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(util::rotate_right_bits(i, bits));
  }
  return from_map(std::move(map));
}

Permutation bit_reversal(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n), "bit-reversal requires a power-of-two size");
  const unsigned bits = util::log2_exact(n);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(util::bit_reverse(i, bits));
  }
  return from_map(std::move(map));
}

Permutation transpose(std::uint64_t rows, std::uint64_t cols) {
  const std::uint64_t n = rows * cols;
  HMM_CHECK(n > 0);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < rows; ++i) {
    for (std::uint64_t j = 0; j < cols; ++j) {
      map[i * cols + j] = static_cast<std::uint32_t>(j * rows + i);
    }
  }
  return from_map(std::move(map));
}

Permutation transpose_square(std::uint64_t n) {
  const std::uint64_t m = util::isqrt_exact(n);
  return transpose(m, m);
}

Permutation random(std::uint64_t n, util::Xoshiro256& rng) {
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) map[i] = static_cast<std::uint32_t>(i);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    const std::uint64_t j = rng.bounded(i + 1);
    std::swap(map[i], map[j]);
  }
  return from_map(std::move(map));
}

Permutation rotation(std::uint64_t n, std::uint64_t shift) {
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>((i + shift) % n);
  }
  return from_map(std::move(map));
}

Permutation gray(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n), "gray requires a power-of-two size");
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(util::gray_code(i));
  }
  return from_map(std::move(map));
}

Permutation butterfly(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n) && util::log2_exact(n) % 2 == 0,
                "butterfly requires an even power-of-two size");
  const unsigned half = util::log2_exact(n) / 2;
  const std::uint64_t mask = (1ull << half) - 1;
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(((i & mask) << half) | (i >> half));
  }
  return from_map(std::move(map));
}

Permutation block_swap(std::uint64_t n, std::uint64_t block) {
  HMM_CHECK(block > 0 && n % (2 * block) == 0);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t pair = i / (2 * block);
    const std::uint64_t off = i % (2 * block);
    const std::uint64_t flipped = off < block ? off + block : off - block;
    map[i] = static_cast<std::uint32_t>(pair * 2 * block + flipped);
  }
  return from_map(std::move(map));
}

Permutation bit_complement(std::uint64_t n) {
  HMM_CHECK_MSG(util::is_pow2(n), "bit-complement requires a power-of-two size");
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) map[i] = static_cast<std::uint32_t>(n - 1 - i);
  return from_map(std::move(map));
}

Permutation stride(std::uint64_t n, std::uint64_t stride_value) {
  HMM_CHECK_MSG(std::gcd(n, stride_value) == 1, "stride must be coprime with n");
  aligned_vector<std::uint32_t> map(n);
  std::uint64_t pos = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    map[i] = static_cast<std::uint32_t>(pos);
    pos += stride_value;
    if (pos >= n) pos -= n;
  }
  return from_map(std::move(map));
}

Permutation segment_reverse(std::uint64_t n, std::uint64_t segment) {
  HMM_CHECK(segment > 0 && n % segment == 0);
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t seg = i / segment;
    const std::uint64_t off = i % segment;
    map[i] = static_cast<std::uint32_t>(seg * segment + (segment - 1 - off));
  }
  return from_map(std::move(map));
}

Permutation random_involution(std::uint64_t n, util::Xoshiro256& rng) {
  // Shuffle indices, then pair them up: (v[0] v[1]) (v[2] v[3]) ...;
  // an odd leftover becomes a fixed point.
  std::vector<std::uint32_t> order(n);
  for (std::uint64_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  for (std::uint64_t i = n - 1; i > 0; --i) {
    std::swap(order[i], order[rng.bounded(i + 1)]);
  }
  aligned_vector<std::uint32_t> map(n);
  std::uint64_t i = 0;
  for (; i + 1 < n; i += 2) {
    map[order[i]] = order[i + 1];
    map[order[i + 1]] = order[i];
  }
  if (i < n) map[order[i]] = order[i];
  return from_map(std::move(map));
}

Permutation tensor_axes(const std::array<std::uint64_t, 3>& dims,
                        const std::array<int, 3>& axes) {
  HMM_CHECK_MSG(((1 << axes[0]) | (1 << axes[1]) | (1 << axes[2])) == 0b111,
                "axes must be a permutation of {0,1,2}");
  const std::uint64_t n = dims[0] * dims[1] * dims[2];
  HMM_CHECK(n > 0);
  const std::uint64_t out_d1 = dims[axes[1]];
  const std::uint64_t out_d2 = dims[axes[2]];

  aligned_vector<std::uint32_t> map(n);
  std::uint64_t src = 0;
  std::uint64_t coord[3];
  for (coord[0] = 0; coord[0] < dims[0]; ++coord[0]) {
    for (coord[1] = 0; coord[1] < dims[1]; ++coord[1]) {
      for (coord[2] = 0; coord[2] < dims[2]; ++coord[2], ++src) {
        const std::uint64_t dst =
            (coord[axes[0]] * out_d1 + coord[axes[1]]) * out_d2 + coord[axes[2]];
        map[src] = static_cast<std::uint32_t>(dst);
      }
    }
  }
  return from_map(std::move(map));
}

Permutation interleave(std::uint64_t n, std::uint64_t ways) {
  HMM_CHECK(ways > 0 && n % ways == 0);
  const std::uint64_t per = n / ways;
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t s = 0; s < ways; ++s) {
    for (std::uint64_t i = 0; i < per; ++i) {
      map[s * per + i] = static_cast<std::uint32_t>(i * ways + s);
    }
  }
  return from_map(std::move(map));
}

Permutation deinterleave(std::uint64_t n, std::uint64_t ways) {
  // interleave(n, ways)^-1 == interleave(n, n/ways): parsing the AoS
  // index i*ways + s as (record s', lane i') of an (n/ways)-way
  // interleave sends it straight back to s*(n/ways) + i.
  return interleave(n, n / ways);
}

Permutation xor_mask(std::uint64_t n, std::uint64_t mask) {
  HMM_CHECK_MSG(util::is_pow2(n) && mask < n, "xor_mask requires mask < n, n a power of two");
  aligned_vector<std::uint32_t> map(n);
  for (std::uint64_t i = 0; i < n; ++i) map[i] = static_cast<std::uint32_t>(i ^ mask);
  return from_map(std::move(map));
}

const std::vector<std::string>& family_names() {
  static const std::vector<std::string> names = {
      "identical", "shuffle",  "random", "bit-reversal",   "transpose",
      "unshuffle", "rotation", "gray",   "butterfly",      "block-swap",
      "bit-complement", "stride", "segment-reverse", "involution"};
  return names;
}

Permutation by_name(const std::string& name, std::uint64_t n, std::uint64_t seed) {
  if (name == "identical") return identical(n);
  if (name == "shuffle") return shuffle(n);
  if (name == "unshuffle") return unshuffle(n);
  if (name == "bit-reversal") return bit_reversal(n);
  if (name == "transpose") {
    // Near-square transpose; falls back to rows x 2*rows for odd log2(n)
    // (the paper evaluates "transpose" at every power-of-two size).
    HMM_CHECK_MSG(util::is_pow2(n), "transpose requires a power-of-two size");
    const std::uint64_t rows = 1ull << (util::log2_exact(n) / 2);
    return transpose(rows, n / rows);
  }
  if (name == "rotation") return rotation(n, n / 3 + 1);
  if (name == "gray") return gray(n);
  if (name == "butterfly") return butterfly(n);
  if (name == "block-swap") return block_swap(n, 8);
  if (name == "bit-complement") return bit_complement(n);
  if (name == "stride") return stride(n, 33);  // w+1: the classic conflict stride
  if (name == "segment-reverse") return segment_reverse(n, 64);
  if (name == "involution") {
    util::Xoshiro256 rng(seed);
    return random_involution(n, rng);
  }
  if (name == "random") {
    util::Xoshiro256 rng(seed);
    return random(n, rng);
  }
  HMM_CHECK_MSG(false, ("unknown permutation family: " + name).c_str());
  return identical(n);
}

}  // namespace hmm::perm
