#pragma once
/// \file generators.hpp
/// \brief The permutation families evaluated in the paper (Section IV)
///        plus extras used by the extended benchmarks.
///
/// Paper families: identical, shuffle, random, bit-reversal, transpose.
/// Extras: unshuffle (shuffle^-1), rotation, gray-code, butterfly and
/// block-swap — all with widely differing distributions d_w(P), used by
/// `bench_distribution` to sweep the conventional algorithms' cost.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "perm/permutation.hpp"
#include "util/rng.hpp"

namespace hmm::perm {

/// P(i) = i.
Permutation identical(std::uint64_t n);

/// Perfect shuffle: one left-rotation of the index bits
/// (b_{k-1} ... b_0 -> b_{k-2} ... b_0 b_{k-1}); n must be a power of two.
Permutation shuffle(std::uint64_t n);

/// Inverse perfect shuffle (right bit rotation).
Permutation unshuffle(std::uint64_t n);

/// FFT bit-reversal: P(b_{k-1} ... b_0) = b_0 ... b_{k-1}; n power of two.
Permutation bit_reversal(std::uint64_t n);

/// Matrix transpose of a rows x cols row-major matrix
/// (element (i,j) -> (j,i)): P(i*cols + j) = j*rows + i.
Permutation transpose(std::uint64_t rows, std::uint64_t cols);

/// Square transpose of n = m*m elements.
Permutation transpose_square(std::uint64_t n);

/// Uniformly random permutation (Fisher–Yates with the given engine).
Permutation random(std::uint64_t n, util::Xoshiro256& rng);

/// Cyclic rotation by `shift`: P(i) = (i + shift) mod n.
Permutation rotation(std::uint64_t n, std::uint64_t shift);

/// Binary-reflected Gray code relabeling: P(i) = gray(i); n power of two.
Permutation gray(std::uint64_t n);

/// Butterfly: swap the top and bottom halves of the index bits
/// (b_{k-1}..b_{k/2} b_{k/2-1}..b_0 -> b_{k/2-1}..b_0 b_{k-1}..b_{k/2});
/// n must be an even power of two. Equals the square transpose.
Permutation butterfly(std::uint64_t n);

/// Swap consecutive blocks of `block` elements pairwise; n a multiple of
/// 2*block. Small, tunable distribution: d_w grows as block shrinks
/// below the width.
Permutation block_swap(std::uint64_t n, std::uint64_t block);

/// Bit complement: P(i) = ~i mod n (= n-1-i for power-of-two n). The
/// full reversal — a classic cache-adversarial access pattern with
/// minimal distribution (reversed warps still fill whole groups).
Permutation bit_complement(std::uint64_t n);

/// Stride permutation: P(i) = (i * stride) mod n, gcd(stride, n) = 1.
/// For odd stride >= w this is a maximal-distribution family, the
/// classic bank-conflict generator on vector machines.
Permutation stride(std::uint64_t n, std::uint64_t stride_value);

/// Reverse each consecutive segment of `segment` elements; n a multiple
/// of segment. distribution = n/w for segment >= w.
Permutation segment_reverse(std::uint64_t n, std::uint64_t segment);

/// Uniformly random involution (P(P(i)) = i): pairs indices randomly,
/// possibly with fixed points. Exercises self-inverse plan paths.
Permutation random_involution(std::uint64_t n, util::Xoshiro256& rng);

/// XOR with a fixed mask: P(i) = i ^ mask (mask < n, n a power of two).
/// The hypercube dimension-exchange pattern; an involution with minimal
/// distribution d_w = n/w for every mask (aligned group swap).
Permutation xor_mask(std::uint64_t n, std::uint64_t mask);

/// 3-D tensor axis permutation: the element at coordinates
/// (i0, i1, i2) of a dims[0] x dims[1] x dims[2] row-major tensor moves
/// to coordinates (i_axes[0], i_axes[1], i_axes[2]) of the permuted
/// tensor (whose shape is dims[axes[k]]). axes must be a permutation of
/// {0,1,2}. Covers layout conversions like HWC -> CHW (axes {2,0,1}).
Permutation tensor_axes(const std::array<std::uint64_t, 3>& dims,
                        const std::array<int, 3>& axes);

/// Interleave `ways` equal streams (SoA -> AoS): element i of stream s
/// (source index s*(n/ways) + i) moves to i*ways + s. Equals the
/// rectangular transpose of a ways x (n/ways) matrix.
Permutation interleave(std::uint64_t n, std::uint64_t ways);

/// De-interleave (AoS -> SoA): the inverse of `interleave`.
Permutation deinterleave(std::uint64_t n, std::uint64_t ways);

/// Names accepted by `by_name` (the bench CLI vocabulary).
const std::vector<std::string>& family_names();

/// Build a permutation family by name ("identical", "shuffle", "random",
/// "bit-reversal", "transpose", "unshuffle", "rotation", "gray",
/// "butterfly", "block-swap"). `seed` only affects "random".
Permutation by_name(const std::string& name, std::uint64_t n, std::uint64_t seed = 42);

}  // namespace hmm::perm
