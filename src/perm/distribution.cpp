#include "perm/distribution.hpp"

#include <array>

namespace hmm::perm {
namespace {

/// Count distinct address groups (of `group_width` elements) among one
/// warp's `warp_width` targets.
template <class TargetOf>
std::uint64_t count_warp_groups(std::uint64_t warp_begin, std::uint32_t warp_width,
                                std::uint32_t group_width, const TargetOf& target_of) {
  std::array<std::uint64_t, 64> groups{};
  std::uint32_t count = 0;
  for (std::uint32_t t = 0; t < warp_width; ++t) {
    const std::uint64_t g = target_of(warp_begin + t) / group_width;
    bool seen = false;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (groups[i] == g) {
        seen = true;
        break;
      }
    }
    if (!seen) groups[count++] = g;
  }
  return count;
}

}  // namespace

std::uint64_t distribution(const Permutation& p, std::uint32_t width) {
  return distribution_groups(p, width, width);
}

std::uint64_t distribution_groups(const Permutation& p, std::uint32_t warp_width,
                                  std::uint32_t group_width) {
  HMM_CHECK(p.size() % warp_width == 0);
  HMM_CHECK(warp_width <= 64 && group_width >= 1);
  std::uint64_t total = 0;
  const auto map = p.data();
  for (std::uint64_t warp = 0; warp < p.size(); warp += warp_width) {
    total += count_warp_groups(warp, warp_width, group_width,
                               [&](std::uint64_t i) { return map[i]; });
  }
  return total;
}

std::uint64_t inverse_distribution_groups(const Permutation& p, std::uint32_t warp_width,
                                          std::uint32_t group_width) {
  HMM_CHECK(p.size() % warp_width == 0);
  const auto map = p.data();
  std::vector<std::uint32_t> inv(p.size());
  for (std::uint64_t j = 0; j < p.size(); ++j) inv[map[j]] = static_cast<std::uint32_t>(j);
  std::uint64_t total = 0;
  for (std::uint64_t warp = 0; warp < p.size(); warp += warp_width) {
    total += count_warp_groups(warp, warp_width, group_width,
                               [&](std::uint64_t i) { return inv[i]; });
  }
  return total;
}

std::uint64_t inverse_distribution(const Permutation& p, std::uint32_t width) {
  // d_w(P^-1) counts, per warp of *destination* indices i, the distinct
  // source groups ⌊P^-1(i)/w⌋ — the S-designated algorithm's casual
  // read cost. Build the inverse index table once, then reuse the same
  // per-warp counting as the forward metric.
  return inverse_distribution_groups(p, width, width);
}

std::uint64_t expected_distribution_identical(std::uint64_t n, std::uint32_t width) {
  return n / width;
}

std::uint64_t expected_distribution_shuffle(std::uint64_t n, std::uint32_t width) {
  // Warp k holds indices kw..kw+w-1, differing only in the low log2(w)
  // bits; the shuffle moves those bits up by one, so targets 2i and
  // 2i+1 coincide in group while the rotated-in top bit splits the warp
  // across exactly 2 groups (for n > w^2 ... >= 2 groups); the exact
  // value is 2n/w for n >= 2w.
  return 2 * (n / width);
}

std::uint64_t expected_distribution_scatter(std::uint64_t n) { return n; }

}  // namespace hmm::perm
