#pragma once
/// \file distribution.hpp
/// \brief The distribution metric d_w(P) of a permutation (Section IV).
///
/// `d_w(P) = Σ_k |{ ⌊P(i)/w⌋ : kw <= i < (k+1)w }|` — the total number
/// of global-memory address groups the D-designated algorithm's warps
/// write to. It ranges from n/w (identical: one group per warp) to n
/// (every thread of every warp hits a different group), and Lemma 4
/// makes it *the* cost driver of the conventional algorithms.

#include <cstdint>

#include "model/machine.hpp"
#include "perm/permutation.hpp"

namespace hmm::perm {

/// d_w(P) for the machine width `width`. O(n).
std::uint64_t distribution(const Permutation& p, std::uint32_t width);

/// Generalized distribution: warps of `warp_width` consecutive sources,
/// destination groups of `group_width` elements. Equal widths give
/// d_w(P); for e-word elements the casual stage count is
/// `distribution_groups(P, w, w/e)` (each element group holds w/e
/// elements while warps stay w threads wide).
std::uint64_t distribution_groups(const Permutation& p, std::uint32_t warp_width,
                                  std::uint32_t group_width);

/// Generalized inverse distribution (see distribution_groups).
std::uint64_t inverse_distribution_groups(const Permutation& p, std::uint32_t warp_width,
                                          std::uint32_t group_width);

/// d_w(P) of the *inverse* permutation without materializing it —
/// the S-designated algorithm's cost driver. O(n) time, O(n) bits.
std::uint64_t inverse_distribution(const Permutation& p, std::uint32_t width);

/// Closed forms used as test oracles (all require n >= w^2, powers of two):
/// identical -> n/w; bit-reversal, transpose -> n (every warp scatters
/// across w groups); shuffle -> 2n/w (each warp covers exactly 2 groups).
std::uint64_t expected_distribution_identical(std::uint64_t n, std::uint32_t width);
std::uint64_t expected_distribution_shuffle(std::uint64_t n, std::uint32_t width);
std::uint64_t expected_distribution_scatter(std::uint64_t n);  // bit-reversal / transpose

}  // namespace hmm::perm
