#pragma once
/// \file io.hpp
/// \brief Binary serialization of permutations.
///
/// The offline setting means permutations (and their compiled plans,
/// core/plan_io.hpp) are artifacts worth persisting: generate/color
/// once, ship the file, load at run time. Format: little-endian,
/// magic + version header, 64-bit size, dense 32-bit mapping.

#include <iosfwd>
#include <optional>

#include "perm/permutation.hpp"

namespace hmm::perm {

/// Write `p` to `os`. Returns false on stream failure.
bool save(std::ostream& os, const Permutation& p);

/// Read a permutation written by `save`. Returns std::nullopt on a
/// malformed header, truncated payload, or non-bijective mapping.
std::optional<Permutation> load(std::istream& is);

/// File-path convenience wrappers.
bool save_file(const std::string& path, const Permutation& p);
std::optional<Permutation> load_file(const std::string& path);

}  // namespace hmm::perm
