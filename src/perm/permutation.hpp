#pragma once
/// \file permutation.hpp
/// \brief The `Permutation` value type: a bijection on [0, n).
///
/// Offline permutation (the paper's task): given arrays `a`, `b` of
/// size `n` and a permutation `P`, copy `a[i]` into `b[P(i)]` for every
/// `i`. This type stores `P` densely (`p[i] = P(i)`, 32-bit — the same
/// representation the paper's kernels read from global memory).

#include <cstdint>
#include <span>

#include "util/aligned_vector.hpp"
#include "util/check.hpp"

namespace hmm::perm {

class Permutation {
 public:
  /// Identity permutation of size n.
  explicit Permutation(std::uint64_t n);

  /// Adopt a mapping; aborts unless it is a bijection on [0, size).
  explicit Permutation(util::aligned_vector<std::uint32_t> mapping);

  [[nodiscard]] std::uint64_t size() const noexcept { return map_.size(); }

  /// P(i).
  std::uint32_t operator()(std::uint64_t i) const {
    HMM_DCHECK(i < map_.size());
    return map_[i];
  }

  /// Read-only view of the dense mapping (what the kernels load).
  [[nodiscard]] std::span<const std::uint32_t> data() const noexcept {
    return {map_.data(), map_.size()};
  }

  /// P^-1 (P^-1(P(i)) == i).
  [[nodiscard]] Permutation inverse() const;

  /// (this ∘ other)(i) = this(other(i)).
  [[nodiscard]] Permutation compose(const Permutation& other) const;

  [[nodiscard]] bool is_identity() const;

  friend bool operator==(const Permutation& a, const Permutation& b) {
    return a.map_ == b.map_;
  }

  /// True iff `mapping` is a bijection on [0, mapping.size()).
  static bool is_valid(std::span<const std::uint32_t> mapping);

  /// Apply offline: b[P(i)] = a[i]. Reference (serial) semantics used by
  /// every test as ground truth.
  template <class T>
  void apply(std::span<const T> a, std::span<T> b) const {
    HMM_CHECK(a.size() == size() && b.size() == size());
    for (std::uint64_t i = 0; i < size(); ++i) b[map_[i]] = a[i];
  }

 private:
  util::aligned_vector<std::uint32_t> map_;
};

}  // namespace hmm::perm
