#include "perm/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace hmm::perm {
namespace {

constexpr char kMagic[8] = {'H', 'M', 'M', 'P', 'E', 'R', 'M', '1'};

}  // namespace

bool save(std::ostream& os, const Permutation& p) {
  os.write(kMagic, sizeof kMagic);
  const std::uint64_t n = p.size();
  os.write(reinterpret_cast<const char*>(&n), sizeof n);
  os.write(reinterpret_cast<const char*>(p.data().data()),
           static_cast<std::streamsize>(n * sizeof(std::uint32_t)));
  return static_cast<bool>(os);
}

std::optional<Permutation> load(std::istream& is) {
  char magic[8];
  if (!is.read(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return std::nullopt;
  }
  std::uint64_t n = 0;
  if (!is.read(reinterpret_cast<char*>(&n), sizeof n) || n == 0 || n > (1ull << 32)) {
    return std::nullopt;
  }
  util::aligned_vector<std::uint32_t> map(n);
  if (!is.read(reinterpret_cast<char*>(map.data()),
               static_cast<std::streamsize>(n * sizeof(std::uint32_t)))) {
    return std::nullopt;
  }
  if (!Permutation::is_valid({map.data(), map.size()})) return std::nullopt;
  return Permutation(std::move(map));
}

bool save_file(const std::string& path, const Permutation& p) {
  std::ofstream os(path, std::ios::binary);
  return os && save(os, p);
}

std::optional<Permutation> load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return load(is);
}

}  // namespace hmm::perm
