#include "core/plan_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace hmm::core {
namespace {

// 7-byte magic + 1 format-version byte. Version history:
//   1: initial format (no payload sanity metadata).
//   2: same layout, but loaders verify every schedule entry is in range
//      for its row length (degree checks) — v1 files are rejected so a
//      foreign or stale file can never be half-trusted.
constexpr char kMagic[7] = {'H', 'M', 'M', 'P', 'L', 'A', 'N'};
constexpr char kVersion = 2;

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

bool read_u64(std::istream& is, std::uint64_t& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}

void write_u16s(std::ostream& os, const util::aligned_vector<std::uint16_t>& v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(std::uint16_t)));
}

bool read_u16s(std::istream& is, util::aligned_vector<std::uint16_t>& v, std::uint64_t count) {
  v.resize(count);
  return static_cast<bool>(is.read(reinterpret_cast<char*>(v.data()),
                                   static_cast<std::streamsize>(count * sizeof(std::uint16_t))));
}

/// Degree sanity: a schedule/permutation entry indexes a position
/// within its row, so every value must be < the row length.
bool all_below(const util::aligned_vector<std::uint16_t>& v, std::uint64_t bound) {
  for (const std::uint16_t x : v) {
    if (x >= bound) return false;
  }
  return true;
}

}  // namespace

bool save_plan(std::ostream& os, const ScheduledPlan& plan) {
  os.write(kMagic, sizeof kMagic);
  os.put(kVersion);
  write_u64(os, plan.shape().rows);
  write_u64(os, plan.shape().cols);
  write_u64(os, plan.params().width);
  write_u64(os, plan.params().latency);
  write_u64(os, plan.params().dmms);
  write_u64(os, plan.params().shared_bytes);
  for (const RowScheduleSet* set : {&plan.pass1(), &plan.pass2(), &plan.pass3()}) {
    write_u16s(os, set->phat);
    write_u16s(os, set->q);
  }
  auto write_span = [&](std::span<const std::uint16_t> s) {
    os.write(reinterpret_cast<const char*>(s.data()),
             static_cast<std::streamsize>(s.size() * sizeof(std::uint16_t)));
  };
  write_span(plan.direct1());
  write_span(plan.direct2());
  write_span(plan.direct3());
  return static_cast<bool>(os);
}

namespace {

/// Record the failure reason (when the caller asked for one) and fail.
std::nullopt_t load_fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return std::nullopt;
}

}  // namespace

std::optional<ScheduledPlan> load_plan(std::istream& is, std::string* error) {
  char magic[7];
  if (!is.read(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof magic) != 0) {
    return load_fail(error, "bad magic (not an HMMPLAN file)");
  }
  char version = 0;
  if (!is.get(version) || version != kVersion) {
    return load_fail(error, "unknown or unsupported format version");
  }
  std::uint64_t rows = 0, cols = 0, width = 0, latency = 0, dmms = 0, shared = 0;
  if (!read_u64(is, rows) || !read_u64(is, cols) || !read_u64(is, width) ||
      !read_u64(is, latency) || !read_u64(is, dmms) || !read_u64(is, shared)) {
    return load_fail(error, "truncated header");
  }
  // Bound sanity before allocating anything.
  if (rows == 0 || cols == 0 || rows > (1ull << 16) || cols > (1ull << 16) ||
      width == 0 || width > 64 || !util::is_pow2(width) || dmms == 0 ||
      !util::is_pow2(dmms) || latency == 0) {
    return load_fail(error, "machine parameters or matrix shape out of range");
  }
  const std::uint64_t n = rows * cols;
  model::MachineParams params;
  params.width = static_cast<std::uint32_t>(width);
  params.latency = static_cast<std::uint32_t>(latency);
  params.dmms = static_cast<std::uint32_t>(dmms);
  params.shared_bytes = shared;

  RowScheduleSet p1{.rows = rows, .cols = cols, .phat = {}, .q = {}};
  RowScheduleSet p2{.rows = cols, .cols = rows, .phat = {}, .q = {}};
  RowScheduleSet p3{.rows = rows, .cols = cols, .phat = {}, .q = {}};
  util::aligned_vector<std::uint16_t> g1, g2, g3;
  if (!read_u16s(is, p1.phat, n) || !read_u16s(is, p1.q, n) || !read_u16s(is, p2.phat, n) ||
      !read_u16s(is, p2.q, n) || !read_u16s(is, p3.phat, n) || !read_u16s(is, p3.q, n) ||
      !read_u16s(is, g1, n) || !read_u16s(is, g2, n) || !read_u16s(is, g3, n)) {
    return load_fail(error, "truncated schedule payload");
  }
  // Degree sanity: pass 1/3 rows have length `cols`, pass 2 rows (the
  // transposed matrix) have length `rows`; a corrupted payload that
  // indexes outside its row must fail here, not in a kernel.
  if (!all_below(p1.phat, cols) || !all_below(p1.q, cols) || !all_below(p2.phat, rows) ||
      !all_below(p2.q, rows) || !all_below(p3.phat, cols) || !all_below(p3.q, cols) ||
      !all_below(g1, cols) || !all_below(g2, rows) || !all_below(g3, cols)) {
    return load_fail(error, "schedule entry indexes outside its row (corrupt payload)");
  }
  return ScheduledPlan::restore(MatrixShape{rows, cols}, params, std::move(p1), std::move(p2),
                                std::move(p3), std::move(g1), std::move(g2), std::move(g3));
}

bool save_plan_file(const std::string& path, const ScheduledPlan& plan) {
  std::ofstream os(path, std::ios::binary);
  return os && save_plan(os, plan);
}

std::optional<ScheduledPlan> load_plan_file(const std::string& path, std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return load_fail(error, "cannot open file");
  return load_plan(is, error);
}

}  // namespace hmm::core
