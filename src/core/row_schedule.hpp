#pragma once
/// \file row_schedule.hpp
/// \brief Conflict-free schedules for row-wise permutation (Section VI).
///
/// Given a row permutation g over `len` positions, the schedule is a
/// pair of index arrays (p̂, q) with `g = q ∘ p̂⁻¹`, built from a König
/// coloring of the bank multigraph (source banks x destination banks,
/// one edge per position j: `j mod w -> g(j) mod w`, regular of degree
/// `len / w`): warp t consists of schedule slots [t*w, (t+1)*w) and its
/// p̂ entries hit w distinct banks, as do its q entries — so the shared
/// memory scatter `d[q(k)] = s[p̂(k)]` is conflict-free.

#include <cstdint>
#include <span>

#include "graph/coloring.hpp"
#include "util/aligned_vector.hpp"
#include "util/thread_pool.hpp"

namespace hmm::core {

/// Build the (p̂, q) schedule of one row permutation.
/// \param g      the row permutation: position j moves to g[j]; len = g.size().
/// \param width  machine width w; len must be a multiple of w and
///               len/w a power of two for the Euler-split default.
/// \param phat   output, len entries.
/// \param q      output, len entries.
void build_row_schedule(std::span<const std::uint16_t> g, std::uint32_t width,
                        std::span<std::uint16_t> phat, std::span<std::uint16_t> q,
                        graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

/// Schedules for every row of a rows x cols matrix, flattened row-major.
struct RowScheduleSet {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  util::aligned_vector<std::uint16_t> phat;
  util::aligned_vector<std::uint16_t> q;

  [[nodiscard]] std::span<const std::uint16_t> phat_row(std::uint64_t r) const {
    return {phat.data() + r * cols, cols};
  }
  [[nodiscard]] std::span<const std::uint16_t> q_row(std::uint64_t r) const {
    return {q.data() + r * cols, cols};
  }
  [[nodiscard]] std::uint64_t bytes() const noexcept {
    return (phat.size() + q.size()) * sizeof(std::uint16_t);
  }
};

/// Build schedules for all rows; `g` holds the row permutations
/// flattened row-major (rows*cols entries).
RowScheduleSet build_row_schedules(std::span<const std::uint16_t> g, std::uint64_t rows,
                                   std::uint64_t cols, std::uint32_t width,
                                   graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

/// Parallel overload: rows are independent, so their bank colorings run
/// on the pool. Deterministic — identical output to the serial build.
RowScheduleSet build_row_schedules(util::ThreadPool& pool, std::span<const std::uint16_t> g,
                                   std::uint64_t rows, std::uint64_t cols, std::uint32_t width,
                                   graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

/// Copy rows [row_begin, row_end) of `full` into a standalone set whose
/// row 0 is `full`'s row `row_begin`. The slice's schedules are
/// bit-identical to the corresponding rows of the full set, so a shard
/// executing its band reproduces exactly the rows a single node would
/// run (runtime/distributed.hpp builds band plans on top of this).
RowScheduleSet slice_rows(const RowScheduleSet& full, std::uint64_t row_begin,
                          std::uint64_t row_end);

/// Verify the schedule invariants for one row (used by tests and
/// `ScheduledPlan::validate`): p̂ and q are permutations, `g = q ∘ p̂⁻¹`,
/// and every schedule warp touches w distinct banks on both sides.
bool row_schedule_valid(std::span<const std::uint16_t> g, std::span<const std::uint16_t> phat,
                        std::span<const std::uint16_t> q, std::uint32_t width);

}  // namespace hmm::core
