#pragma once
/// \file layout.hpp
/// \brief Matrix view of a linear array (Section VII).
///
/// The scheduled algorithm regards the size-n arrays as rows x cols
/// matrices in row-major order. The paper uses √n x √n "for simplicity"
/// but notes the algorithm is not restricted to squares; we support any
/// power-of-two n >= 2 * width^2 via a near-square rectangle
/// (cols = rows or cols = 2 * rows).

#include <cstdint>

#include "model/machine.hpp"

namespace hmm::core {

/// Geometry of the matrix view.
struct MatrixShape {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;

  [[nodiscard]] std::uint64_t size() const noexcept { return rows * cols; }

  /// Row index of element e.
  [[nodiscard]] std::uint64_t row_of(std::uint64_t e) const noexcept { return e / cols; }
  /// Column index of element e.
  [[nodiscard]] std::uint64_t col_of(std::uint64_t e) const noexcept { return e % cols; }

  friend bool operator==(const MatrixShape&, const MatrixShape&) = default;
};

/// Choose the matrix view for an array of size n on a machine of the
/// given width: rows and cols are powers of two, rows <= cols <= 2*rows,
/// and both are multiples of the width (required by the per-row bank
/// schedules and the w x w transpose tiling). Aborts if n is not a
/// power of two or is too small (n >= width^2, and for odd log2(n),
/// n >= 2 * width^2).
MatrixShape shape_for(std::uint64_t n, std::uint32_t width);

/// Shared memory one block needs for a row-wise pass over rows of
/// length `len`: two data buffers of `len` elements plus the two
/// schedule arrays of 16-bit indices staged per block.
std::uint64_t row_pass_shared_bytes(std::uint64_t len, std::uint64_t elem_size);

/// Shared memory one block needs for a w x w transpose tile.
std::uint64_t transpose_shared_bytes(std::uint32_t width, std::uint64_t elem_size);

}  // namespace hmm::core
