#pragma once
/// \file plan_io.hpp
/// \brief Binary serialization of compiled ScheduledPlans.
///
/// Plan construction (König coloring + per-row schedules) costs ~1 µs
/// per element; in the offline setting it pays to persist the compiled
/// plan next to the data it reorders (e.g. an FFT reorder plan for a
/// fixed size) and load it in O(read) at run time. The format stores
/// the machine parameters and all six schedule arrays plus the direct
/// per-row permutations; a loaded plan is bit-identical to the built
/// one (asserted by tests via validate()).
///
/// The header carries a format-version byte after the magic; loaders
/// reject unknown versions, truncated payloads, out-of-range machine
/// parameters, and schedule entries that index outside their row, so a
/// foreign or corrupted file fails with `nullopt` instead of feeding
/// garbage indices to a kernel.

#include <iosfwd>
#include <optional>
#include <string>

#include "core/plan.hpp"

namespace hmm::core {

/// Write the plan. Returns false on stream failure.
bool save_plan(std::ostream& os, const ScheduledPlan& plan);

/// Read a plan written by `save_plan`; nullopt on malformed input.
/// The loaded plan carries the machine parameters it was built for.
/// When `error` is non-null and loading fails, it receives the reason
/// (bad magic, unknown version, truncated payload, out-of-range machine
/// parameters, schedule entry outside its row) — the serving layer
/// surfaces this through `runtime::Status` instead of guessing.
std::optional<ScheduledPlan> load_plan(std::istream& is, std::string* error = nullptr);

bool save_plan_file(const std::string& path, const ScheduledPlan& plan);
std::optional<ScheduledPlan> load_plan_file(const std::string& path,
                                            std::string* error = nullptr);

}  // namespace hmm::core
