#pragma once
/// \file plan.hpp
/// \brief The offline phase of the scheduled permutation (Section VII):
///        factor P into row-wise / column-wise / row-wise passes and
///        precompute every conflict-free schedule.
///
/// Plan construction:
/// 1. Build the *row graph*: source rows x destination rows, one edge
///    per element e (row(e) -> row(P(e))), regular of degree `cols`.
/// 2. König-color it with `cols` colors; an element colored c routes
///    through column c. Properness makes pass 1 a valid row-wise
///    permutation; perfect-matching color classes make pass 2 a valid
///    column-wise permutation.
/// 3. Derive the three per-row permutation families g1, g2, g3 and
///    compile each row into its (p̂, q) conflict-free bank schedule
///    (row_schedule.hpp).
///
/// The plan is permutation-specific but data-independent: build once,
/// execute any number of arrays (the paper's "offline" setting).

#include <cstdint>

#include "core/layout.hpp"
#include "core/row_schedule.hpp"
#include "graph/coloring.hpp"
#include "model/machine.hpp"
#include "perm/permutation.hpp"

namespace hmm::core {

/// Timing/occupancy statistics of plan construction (the offline cost
/// the paper does not charge; `bench_plan_build` quantifies it).
struct PlanBuildStats {
  double row_graph_seconds = 0;   ///< building + coloring the row graph
  double schedules_seconds = 0;   ///< compiling all per-row bank schedules
  std::uint64_t colors = 0;       ///< number of colors (= cols)
};

/// A fully compiled scheduled-permutation plan.
class ScheduledPlan {
 public:
  /// Build the plan for permutation `p` on machine `params`.
  /// Requires |p| a power of two with shape_for-compatible size.
  static ScheduledPlan build(const perm::Permutation& p, const model::MachineParams& params,
                             graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

  /// Parallel build: compiles the per-row schedules on the pool (the
  /// dominant half of plan construction; rows are independent).
  /// Bit-identical output to the serial build.
  static ScheduledPlan build(util::ThreadPool& pool, const perm::Permutation& p,
                             const model::MachineParams& params,
                             graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

  [[nodiscard]] std::uint64_t size() const noexcept { return n_; }
  [[nodiscard]] const MatrixShape& shape() const noexcept { return shape_; }
  [[nodiscard]] const model::MachineParams& params() const noexcept { return params_; }
  [[nodiscard]] const PlanBuildStats& build_stats() const noexcept { return stats_; }

  /// Pass 1: row-wise over rows x cols (route every element to its color column).
  [[nodiscard]] const RowScheduleSet& pass1() const noexcept { return pass1_; }
  /// Pass 2: row-wise over the transposed matrix, cols x rows (move to destination row).
  [[nodiscard]] const RowScheduleSet& pass2() const noexcept { return pass2_; }
  /// Pass 3: row-wise over rows x cols (move to destination column).
  [[nodiscard]] const RowScheduleSet& pass3() const noexcept { return pass3_; }

  /// The raw per-row permutations g1/g2/g3 (flattened row-major;
  /// `out[r][g(j)] = in[r][j]`). The GPU-faithful executors read the
  /// (p̂, q) schedules instead; these support the direct host variant
  /// and the schedule-overhead ablation.
  [[nodiscard]] std::span<const std::uint16_t> direct1() const noexcept { return g1_; }
  [[nodiscard]] std::span<const std::uint16_t> direct2() const noexcept { return g2_; }
  [[nodiscard]] std::span<const std::uint16_t> direct3() const noexcept { return g3_; }

  /// Total bytes of schedule data the online phase reads from global
  /// memory (the paper's 16-bit 2-D arrays).
  [[nodiscard]] std::uint64_t schedule_bytes() const noexcept;

  /// Shared memory per block required to execute with `elem_size`-byte
  /// elements (the max over the three row passes and the transpose tile).
  [[nodiscard]] std::uint64_t shared_bytes_needed(std::uint64_t elem_size) const noexcept;

  /// True iff the plan fits this machine's shared memory for the
  /// element size (the paper's 48 KiB / double limitation).
  [[nodiscard]] bool fits_shared(std::uint64_t elem_size) const noexcept;

  /// Deep invariant check: every row schedule valid and the three-pass
  /// composition realizes exactly the original permutation. O(n).
  [[nodiscard]] bool validate(const perm::Permutation& p) const;

  /// Reassemble a plan from its stored parts (plan_io.hpp
  /// deserialization). Checks structural consistency (shapes/sizes)
  /// but not the deep schedule invariants — call validate() for that.
  static ScheduledPlan restore(MatrixShape shape, model::MachineParams params,
                               RowScheduleSet pass1, RowScheduleSet pass2,
                               RowScheduleSet pass3,
                               util::aligned_vector<std::uint16_t> g1,
                               util::aligned_vector<std::uint16_t> g2,
                               util::aligned_vector<std::uint16_t> g3);

 private:
  ScheduledPlan() = default;

  static ScheduledPlan build_with(util::ThreadPool* pool, const perm::Permutation& p,
                                  const model::MachineParams& params,
                                  graph::ColoringAlgorithm algo);

  std::uint64_t n_ = 0;
  MatrixShape shape_;
  model::MachineParams params_;
  PlanBuildStats stats_;
  RowScheduleSet pass1_;
  RowScheduleSet pass2_;
  RowScheduleSet pass3_;
  util::aligned_vector<std::uint16_t> g1_;
  util::aligned_vector<std::uint16_t> g2_;
  util::aligned_vector<std::uint16_t> g3_;
};

}  // namespace hmm::core
