#include "core/diagnose.hpp"

#include <ostream>

#include "core/layout.hpp"
#include "core/permuter.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "util/table.hpp"

namespace hmm::core {

Diagnosis diagnose(const perm::Permutation& p, const model::MachineParams& machine) {
  machine.validate();
  Diagnosis d;
  d.n = p.size();
  d.machine = machine;

  d.dist_forward = perm::distribution(p, machine.width);
  d.dist_inverse = perm::inverse_distribution(p, machine.width);
  d.dist_forward_ratio = static_cast<double>(d.dist_forward) / static_cast<double>(d.n);
  d.dist_inverse_ratio = static_cast<double>(d.dist_inverse) / static_cast<double>(d.n);

  d.cycles = analyze_cycles(p);
  d.is_identity = (d.cycles.fixed_points == d.n);
  d.is_involution = (d.cycles.longest <= 2);

  d.plan_supported = OfflinePermuter<float>::plan_supported(d.n, machine);
  if (d.plan_supported) {
    const MatrixShape shape = shape_for(d.n, machine.width);
    const std::uint64_t longest_row = std::max(shape.rows, shape.cols);
    d.shared_bytes_needed_f32 = row_pass_shared_bytes(longest_row, sizeof(float));
    d.shared_bytes_needed_f64 = row_pass_shared_bytes(longest_row, sizeof(double));
    d.fits_shared_f32 = d.shared_bytes_needed_f32 <= machine.shared_bytes;
    d.fits_shared_f64 = d.shared_bytes_needed_f64 <= machine.shared_bytes;
    d.time_scheduled = model::scheduled_time(d.n, machine);
  }

  d.time_d_designated = model::d_designated_time(d.n, d.dist_forward, machine);
  d.time_s_designated = model::s_designated_time(d.n, d.dist_inverse, machine);
  d.lower_bound = model::lower_bound(d.n, machine);

  std::uint64_t best = d.time_d_designated;
  d.recommendation = "d-designated";
  if (d.time_s_designated < best) {
    best = d.time_s_designated;
    d.recommendation = "s-designated";
  }
  if (d.plan_supported && d.fits_shared_f32 && d.time_scheduled < best) {
    d.recommendation = "scheduled";
  }
  return d;
}

void print_diagnosis(std::ostream& os, const Diagnosis& d) {
  os << "permutation of n = " << d.n << " on HMM{w=" << d.machine.width
     << ", l=" << d.machine.latency << ", d=" << d.machine.dmms << "}\n";
  os << "  distribution d_w(P)   = " << d.dist_forward << "  ("
     << util::format_double(d.dist_forward_ratio, 5) << " of n)\n"
     << "  distribution d_w(P^-1)= " << d.dist_inverse << "  ("
     << util::format_double(d.dist_inverse_ratio, 5) << " of n)\n";
  os << "  cycles: " << d.cycles.cycles << " (fixed " << d.cycles.fixed_points
     << ", longest " << d.cycles.longest << ", moved " << d.cycles.moved << ")";
  if (d.is_identity) os << "  [identity]";
  if (!d.is_identity && d.is_involution) os << "  [involution]";
  os << "\n";
  os << "  scheduled plan: "
     << (d.plan_supported ? "supported" : "unsupported (size/shape)");
  if (d.plan_supported) {
    os << ", shared need " << util::format_bytes(d.shared_bytes_needed_f32) << " (f32) / "
       << util::format_bytes(d.shared_bytes_needed_f64) << " (f64); fits: "
       << (d.fits_shared_f32 ? "f32" : "") << (d.fits_shared_f64 ? "+f64" : "");
  }
  os << "\n";
  os << "  predicted HMM time units:\n"
     << "    d-designated: " << d.time_d_designated << "\n"
     << "    s-designated: " << d.time_s_designated << "\n";
  if (d.plan_supported) {
    os << "    scheduled   : " << d.time_scheduled << "\n";
  }
  os << "    lower bound : " << d.lower_bound << "\n"
     << "  recommendation: " << d.recommendation << "\n";
}

}  // namespace hmm::core
