#include "core/scheduled.hpp"

#include "core/ops.hpp"

namespace hmm::core {

std::uint64_t scheduled_sim_rounds(sim::HmmSim& sim, const ScheduledPlan& plan,
                                   std::uint32_t words) {
  const std::uint64_t n = plan.size();
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  HMM_CHECK_MSG(plan.params().width == sim.params().width,
                "plan was built for a different machine width");

  // Data buffers are element-addressed; their word base stays
  // group-aligned because alloc_global returns width-aligned bases.
  const std::uint64_t base_a = sim.alloc_global(n * words) / words;
  const std::uint64_t base_b = sim.alloc_global(n * words) / words;
  const std::uint64_t base_t1 = sim.alloc_global(n * words) / words;
  const std::uint64_t base_t2 = sim.alloc_global(n * words) / words;

  RowPassBases p1{.in = base_a, .out = base_t1, .phat = sim.alloc_global(n),
                  .q = sim.alloc_global(n)};
  RowPassBases p2{.in = base_t2, .out = base_t1, .phat = sim.alloc_global(n),
                  .q = sim.alloc_global(n)};
  RowPassBases p3{.in = base_t2, .out = base_b, .phat = sim.alloc_global(n),
                  .q = sim.alloc_global(n)};

  std::uint64_t t = 0;
  t += row_wise_sim_rounds(sim, "pass1", plan.pass1(), p1, words);
  t += transpose_sim_rounds(sim, "transpose1", r, m, base_t1, base_t2, words);
  t += row_wise_sim_rounds(sim, "pass2", plan.pass2(), p2, words);
  t += transpose_sim_rounds(sim, "transpose2", m, r, base_t1, base_t2, words);
  t += row_wise_sim_rounds(sim, "pass3", plan.pass3(), p3, words);
  return t;
}

}  // namespace hmm::core
