#pragma once
/// \file conventional.hpp
/// \brief The paper's baseline algorithms (Section IV): D-designated
///        (`b[p[i]] = a[i]`) and S-designated (`b[i] = a[p̄[i]]`).
///
/// Both run in 3 memory-access rounds; their casual round costs
/// `d_w(P)` (resp. `d_w(P⁻¹)`) pipeline stages on the HMM — the cost
/// the scheduled algorithm eliminates.

#include <cstdint>
#include <span>

#include "cpu/kernels.hpp"
#include "perm/permutation.hpp"
#include "sim/hmm_sim.hpp"
#include "util/thread_pool.hpp"

namespace hmm::core {

/// D-designated on the host backend.
template <class T>
void d_designated_cpu(util::ThreadPool& pool, std::span<const T> a, std::span<T> b,
                      const perm::Permutation& p) {
  cpu::scatter(pool, a, b, p.data());
}

/// S-designated on the host backend. `pinv` must be `P^-1` (the paper
/// precomputes it offline, like the plan).
template <class T>
void s_designated_cpu(util::ThreadPool& pool, std::span<const T> a, std::span<T> b,
                      const perm::Permutation& pinv) {
  cpu::gather(pool, a, b, pinv.data());
}

/// Issue the D-designated rounds on the simulator (addresses only);
/// returns the elapsed time units. `words` is the data element width
/// in machine words (model::words_of<T>()); the index array is 32-bit.
std::uint64_t d_designated_sim_rounds(sim::HmmSim& sim, const perm::Permutation& p,
                                      std::uint32_t words = 1);

/// Issue the S-designated rounds on the simulator; `pinv` is `P^-1`.
std::uint64_t s_designated_sim_rounds(sim::HmmSim& sim, const perm::Permutation& pinv,
                                      std::uint32_t words = 1);

/// D-designated on the simulator backend: moves the data (reference
/// semantics) and accounts the model time. Returns elapsed time units.
template <class T>
std::uint64_t d_designated_sim(sim::HmmSim& sim, std::span<const T> a, std::span<T> b,
                               const perm::Permutation& p) {
  p.apply(a, b);
  return d_designated_sim_rounds(sim, p, model::words_of<T>());
}

/// S-designated on the simulator backend (`pinv` = `P^-1`).
template <class T>
std::uint64_t s_designated_sim(sim::HmmSim& sim, std::span<const T> a, std::span<T> b,
                               const perm::Permutation& pinv) {
  HMM_CHECK(a.size() == b.size() && a.size() == pinv.size());
  const auto inv = pinv.data();
  for (std::uint64_t i = 0; i < b.size(); ++i) b[i] = a[inv[i]];
  return s_designated_sim_rounds(sim, pinv, model::words_of<T>());
}

}  // namespace hmm::core
