#include "core/plan.hpp"

#include <vector>

#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace hmm::core {

ScheduledPlan ScheduledPlan::build(const perm::Permutation& p,
                                   const model::MachineParams& params,
                                   graph::ColoringAlgorithm algo) {
  return build_with(nullptr, p, params, algo);
}

ScheduledPlan ScheduledPlan::build(util::ThreadPool& pool, const perm::Permutation& p,
                                   const model::MachineParams& params,
                                   graph::ColoringAlgorithm algo) {
  return build_with(&pool, p, params, algo);
}

ScheduledPlan ScheduledPlan::build_with(util::ThreadPool* pool, const perm::Permutation& p,
                                        const model::MachineParams& params,
                                        graph::ColoringAlgorithm algo) {
  params.validate();
  const std::uint64_t n = p.size();
  const MatrixShape shape = shape_for(n, params.width);
  const std::uint64_t r = shape.rows;
  const std::uint64_t m = shape.cols;
  HMM_CHECK_MSG(m <= (1ull << 16) && r <= (1ull << 16),
                "row/column indices must fit 16 bits (n <= 2^32)");

  ScheduledPlan plan;
  plan.n_ = n;
  plan.shape_ = shape;
  plan.params_ = params;

  util::Stopwatch clock;

  // --- Row graph + König coloring --------------------------------------
  graph::BipartiteMultigraph row_graph(static_cast<std::uint32_t>(r),
                                       static_cast<std::uint32_t>(r));
  row_graph.reserve(n);
  const auto map = p.data();
  for (std::uint64_t e = 0; e < n; ++e) {
    row_graph.add_edge(static_cast<std::uint32_t>(e / m),
                       static_cast<std::uint32_t>(map[e] / m));
  }
  const graph::EdgeColoring coloring = graph::color_edges(row_graph, algo);
  HMM_CHECK(coloring.colors == m);
  plan.stats_.colors = coloring.colors;
  plan.stats_.row_graph_seconds = clock.seconds();
  clock.reset();

  // --- Derive the three per-row permutation families -------------------
  // g1[i][j]  = color(e)                (pass 1, rows r x cols m)
  // g2[c][i]  = dest_row(element at (i, c) after pass 1)  (pass 2, m x r)
  // g3[i'][c] = dest_col(element at (i', c) after pass 2) (pass 3, r x m)
  util::aligned_vector<std::uint16_t> g1(n), g2(n), g3(n);
  // elem_by_color[i*m + c] = element with source row i and color c.
  std::vector<std::uint32_t> elem_by_color(n);
  for (std::uint64_t e = 0; e < n; ++e) {
    const std::uint64_t i = e / m;
    const std::uint32_t c = coloring.color[e];
    g1[e] = static_cast<std::uint16_t>(c);
    elem_by_color[i * m + c] = static_cast<std::uint32_t>(e);
  }
  for (std::uint64_t i = 0; i < r; ++i) {
    for (std::uint64_t c = 0; c < m; ++c) {
      const std::uint32_t e = elem_by_color[i * m + c];
      const std::uint64_t dest_row = map[e] / m;
      g2[c * r + i] = static_cast<std::uint16_t>(dest_row);
      // After pass 2, element e sits at (dest_row, c): pass 3 sends it
      // to its destination column.
      g3[dest_row * m + c] = static_cast<std::uint16_t>(map[e] % m);
    }
  }
  elem_by_color.clear();
  elem_by_color.shrink_to_fit();

  // --- Compile every row into its conflict-free bank schedule ----------
  if (pool) {
    plan.pass1_ = build_row_schedules(*pool, g1, r, m, params.width, algo);
    plan.pass2_ = build_row_schedules(*pool, g2, m, r, params.width, algo);
    plan.pass3_ = build_row_schedules(*pool, g3, r, m, params.width, algo);
  } else {
    plan.pass1_ = build_row_schedules(g1, r, m, params.width, algo);
    plan.pass2_ = build_row_schedules(g2, m, r, params.width, algo);
    plan.pass3_ = build_row_schedules(g3, r, m, params.width, algo);
  }
  plan.stats_.schedules_seconds = clock.seconds();
  plan.g1_ = std::move(g1);
  plan.g2_ = std::move(g2);
  plan.g3_ = std::move(g3);
  return plan;
}

ScheduledPlan ScheduledPlan::restore(MatrixShape shape, model::MachineParams params,
                                     RowScheduleSet pass1, RowScheduleSet pass2,
                                     RowScheduleSet pass3,
                                     util::aligned_vector<std::uint16_t> g1,
                                     util::aligned_vector<std::uint16_t> g2,
                                     util::aligned_vector<std::uint16_t> g3) {
  params.validate();
  const std::uint64_t n = shape.size();
  HMM_CHECK(pass1.rows == shape.rows && pass1.cols == shape.cols);
  HMM_CHECK(pass2.rows == shape.cols && pass2.cols == shape.rows);
  HMM_CHECK(pass3.rows == shape.rows && pass3.cols == shape.cols);
  HMM_CHECK(pass1.phat.size() == n && pass1.q.size() == n);
  HMM_CHECK(pass2.phat.size() == n && pass2.q.size() == n);
  HMM_CHECK(pass3.phat.size() == n && pass3.q.size() == n);
  HMM_CHECK(g1.size() == n && g2.size() == n && g3.size() == n);

  ScheduledPlan plan;
  plan.n_ = n;
  plan.shape_ = shape;
  plan.params_ = params;
  plan.pass1_ = std::move(pass1);
  plan.pass2_ = std::move(pass2);
  plan.pass3_ = std::move(pass3);
  plan.g1_ = std::move(g1);
  plan.g2_ = std::move(g2);
  plan.g3_ = std::move(g3);
  return plan;
}

std::uint64_t ScheduledPlan::schedule_bytes() const noexcept {
  return pass1_.bytes() + pass2_.bytes() + pass3_.bytes();
}

std::uint64_t ScheduledPlan::shared_bytes_needed(std::uint64_t elem_size) const noexcept {
  const std::uint64_t row_pass =
      std::max(row_pass_shared_bytes(shape_.cols, elem_size),
               row_pass_shared_bytes(shape_.rows, elem_size));
  return std::max(row_pass, transpose_shared_bytes(params_.width, elem_size));
}

bool ScheduledPlan::fits_shared(std::uint64_t elem_size) const noexcept {
  return shared_bytes_needed(elem_size) <= params_.shared_bytes;
}

bool ScheduledPlan::validate(const perm::Permutation& p) const {
  if (p.size() != n_) return false;
  const std::uint64_t r = shape_.rows;
  const std::uint64_t m = shape_.cols;

  // Check every row schedule's local invariants, reconstructing each
  // row permutation g from (p̂, q).
  auto check_set = [&](const RowScheduleSet& set) {
    std::vector<std::uint16_t> g(set.cols);
    for (std::uint64_t row = 0; row < set.rows; ++row) {
      const auto phat = set.phat_row(row);
      const auto q = set.q_row(row);
      for (std::uint64_t k = 0; k < set.cols; ++k) {
        if (phat[k] >= set.cols) return false;
        g[phat[k]] = q[k];
      }
      if (!row_schedule_valid(g, phat, q, params_.width)) return false;
    }
    return true;
  };
  if (!check_set(pass1_) || !check_set(pass2_) || !check_set(pass3_)) return false;

  // Replay the three passes on element ids and verify the composition
  // equals P.
  std::vector<std::uint32_t> cur(n_), next(n_);
  for (std::uint64_t e = 0; e < n_; ++e) cur[e] = static_cast<std::uint32_t>(e);

  auto row_pass = [&](const RowScheduleSet& set) {
    for (std::uint64_t row = 0; row < set.rows; ++row) {
      const auto phat = set.phat_row(row);
      const auto q = set.q_row(row);
      const std::uint64_t base = row * set.cols;
      for (std::uint64_t k = 0; k < set.cols; ++k) next[base + q[k]] = cur[base + phat[k]];
    }
    std::swap(cur, next);
  };
  auto transpose_pass = [&](std::uint64_t rows, std::uint64_t cols) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      for (std::uint64_t j = 0; j < cols; ++j) next[j * rows + i] = cur[i * cols + j];
    }
    std::swap(cur, next);
  };

  row_pass(pass1_);
  transpose_pass(r, m);
  row_pass(pass2_);
  transpose_pass(m, r);
  row_pass(pass3_);

  for (std::uint64_t pos = 0; pos < n_; ++pos) {
    if (p(cur[pos]) != pos) return false;
  }
  return true;
}

}  // namespace hmm::core
