#pragma once
/// \file shared_permute.hpp
/// \brief The prior-work baseline the paper builds on (its refs [8],
///        [9]): *conflict-free offline permutation inside one DMM's
///        shared memory*, for arrays small enough to fit one SM
///        (<= 4096 floats on the GTX-680, per the paper's Section I).
///
/// The conventional shared-memory permutation `b[p[j]] = a[j]` suffers
/// bank conflicts (up to w-way serialization). The conflict-free
/// variant is exactly one row-wise schedule (row_schedule.hpp) applied
/// to the whole array: read at p̂(k), write at q(k) — both rounds hit w
/// distinct banks per warp. The paper reports 246ns vs 165ns (1.5x) for
/// 1024 floats on one SM; `bench_shared_permutation` reproduces the
/// shape on the simulator.

#include <cstdint>
#include <span>

#include "core/row_schedule.hpp"
#include "perm/permutation.hpp"
#include "sim/hmm_sim.hpp"

namespace hmm::core {

/// Offline-compiled conflict-free shared-memory permutation of one
/// block-sized array.
class SharedPermutation {
 public:
  /// Compile for permutation `p` (|p| a multiple of width, |p| <= 2^16).
  SharedPermutation(const perm::Permutation& p, std::uint32_t width,
                    graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto);

  [[nodiscard]] std::uint64_t size() const noexcept { return phat_.size(); }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::span<const std::uint16_t> phat() const noexcept { return phat_; }
  [[nodiscard]] std::span<const std::uint16_t> q() const noexcept { return q_; }

  /// Apply on the host: b[p(j)] = a[j] via the schedule.
  template <class T>
  void apply(std::span<const T> a, std::span<T> b) const {
    HMM_CHECK(a.size() == size() && b.size() == size());
    for (std::uint64_t k = 0; k < size(); ++k) b[q_[k]] = a[phat_[k]];
  }

  /// Issue the two conflict-free shared rounds on the simulator
  /// (1 CF read + 1 CF write); returns time units.
  [[nodiscard]] std::uint64_t sim_rounds(sim::HmmSim& sim) const;

 private:
  std::uint32_t width_;
  util::aligned_vector<std::uint16_t> phat_;
  util::aligned_vector<std::uint16_t> q_;
};

/// The conventional shared-memory permutation's rounds: one
/// conflict-free read of a (thread j reads a[j]) and one *casual* write
/// of b at p(j) — pays the bank-conflict serialization the paper's
/// refs [8]/[9] eliminate. Returns time units.
std::uint64_t shared_conventional_sim_rounds(sim::HmmSim& sim, const perm::Permutation& p);

/// Worst-case bank-conflict distribution of a shared permutation: the
/// total DMM stage count of the casual write round (the analogue of
/// d_w(P) for banks). Between n/w (conflict-free) and n (one bank).
std::uint64_t bank_conflict_stages(const perm::Permutation& p, std::uint32_t width);

}  // namespace hmm::core
