#pragma once
/// \file permuter.hpp
/// \brief `OfflinePermuter<T>` — the one-stop downstream API.
///
/// Wraps the paper's decision problem for the user: given a permutation
/// known in advance, pick the best algorithm for this machine (the
/// scheduled plan when the permutation's distribution is high and the
/// size supports it; the conventional gather otherwise), own the
/// scratch buffers, and expose a single `permute(a, b)` call that can
/// be invoked any number of times.
///
/// The selection rule mirrors Lemma 4 vs Theorem 9: scheduled wins when
///   16(n/w + l - 1) + 16 n/(dw)  <  2(n/w + l - 1) + d_w(P) + l - 1,
/// evaluated with the actual machine parameters and measured d_w(P).

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

#include "core/conventional.hpp"
#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "model/cost.hpp"
#include "perm/distribution.hpp"
#include "util/bits.hpp"
#include "util/stopwatch.hpp"

namespace hmm::core {

/// Execution strategy of an OfflinePermuter.
enum class Strategy {
  kAuto,           ///< pick by model cost (default)
  kScheduled,      ///< force the paper's scheduled algorithm
  kSDesignated,    ///< force conventional gather  (b[i] = a[p̄[i]])
  kDDesignated,    ///< force conventional scatter (b[p[i]] = a[i])
};

std::string_view to_string(Strategy s) noexcept;

template <class T>
class OfflinePermuter {
 public:
  /// Compile the permuter. The permutation is copied (it defines the
  /// object); plan/inverse construction is the offline phase.
  explicit OfflinePermuter(perm::Permutation p,
                           model::MachineParams machine = model::MachineParams::gtx680(),
                           Strategy strategy = Strategy::kAuto)
      : perm_(std::move(p)), machine_(machine) {
    const util::Stopwatch build_clock;
    const std::uint64_t n = perm_.size();
    const bool plannable = util::is_pow2(n) && plan_supported(n, machine_);

    chosen_ = strategy;
    if (strategy == Strategy::kAuto) {
      if (plannable) {
        const std::uint64_t t_sched = model::scheduled_time(n, machine_);
        const std::uint64_t t_conv = model::s_designated_time(
            n, perm::inverse_distribution(perm_, machine_.width), machine_);
        chosen_ = t_sched < t_conv ? Strategy::kScheduled : Strategy::kSDesignated;
      } else {
        chosen_ = Strategy::kSDesignated;
      }
    }
    HMM_CHECK_MSG(chosen_ != Strategy::kScheduled || plannable,
                  "scheduled strategy requires power-of-two n >= width^2");

    switch (chosen_) {
      case Strategy::kScheduled:
        plan_.emplace(ScheduledPlan::build(perm_, machine_));
        scratch_.resize(n);
        HMM_CHECK_MSG(plan_->fits_shared(sizeof(T)),
                      "plan does not fit this machine's shared memory for T");
        break;
      case Strategy::kSDesignated:
        inverse_.emplace(perm_.inverse());
        break;
      case Strategy::kDDesignated:
        break;
      case Strategy::kAuto:
        break;  // unreachable; resolved above
    }
    offline_seconds_ = build_clock.seconds();
  }

  /// The strategy actually in use (after kAuto resolution).
  [[nodiscard]] Strategy strategy() const noexcept { return chosen_; }
  [[nodiscard]] const perm::Permutation& permutation() const noexcept { return perm_; }
  [[nodiscard]] const model::MachineParams& machine() const noexcept { return machine_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return perm_.size(); }

  /// The compiled plan, when the scheduled strategy is active.
  [[nodiscard]] const ScheduledPlan* plan() const noexcept {
    return plan_ ? &*plan_ : nullptr;
  }

  /// Wall-clock seconds the constructor spent on the offline phase
  /// (strategy selection + plan build or inverse computation). This is
  /// the cost a plan cache amortizes away on a hit.
  [[nodiscard]] double offline_build_seconds() const noexcept { return offline_seconds_; }

  /// Approximate resident bytes of the compiled artifact: the owned
  /// permutation, plus the strategy's precomputed state (schedule
  /// arrays + direct row permutations, or the inverse mapping) and the
  /// internal scratch buffer. Used for byte-bounded cache accounting.
  [[nodiscard]] std::uint64_t compiled_bytes() const noexcept {
    const std::uint64_t n = size();
    std::uint64_t bytes = n * sizeof(std::uint32_t);  // perm_
    if (plan_) {
      bytes += plan_->schedule_bytes();
      bytes += 3 * n * sizeof(std::uint16_t);  // direct1/2/3
    }
    if (inverse_) bytes += n * sizeof(std::uint32_t);
    bytes += scratch_.size() * sizeof(T);
    return bytes;
  }

  /// Scratch elements an external-scratch `permute` call must provide
  /// (n for the scheduled strategy, 0 otherwise).
  [[nodiscard]] std::uint64_t scratch_elements() const noexcept {
    return chosen_ == Strategy::kScheduled ? size() : 0;
  }

  /// Thread-safe online phase: b[P(i)] = a[i] using caller-provided
  /// scratch (size `scratch_elements()`; may be empty for the
  /// conventional strategies). Unlike the stateful overload below, this
  /// is `const` and touches no member buffers, so any number of threads
  /// may execute the same compiled permuter on distinct (a, b, scratch)
  /// triples concurrently — the runtime executor's batched path.
  void permute(std::span<const T> a, std::span<T> b, std::span<T> scratch) const {
    (void)permute_gated(a, b, scratch, PhaseGate{});
  }

  /// Gated variant of the const online phase: `gate` is consulted at
  /// the boundaries between the strategy's sequential kernel launches
  /// (the scheduled algorithm's five kernels; the conventional
  /// strategies are a single kernel and only check up front). Returning
  /// false stops the execution — the function then returns false and
  /// `b`/`scratch` hold garbage. This is how the runtime executor
  /// observes deadlines and cancellation mid-request without preempting
  /// a running kernel.
  [[nodiscard]] bool permute_gated(std::span<const T> a, std::span<T> b, std::span<T> scratch,
                                   const PhaseGate& gate) const {
    return permute_timed(a, b, scratch, gate, KernelObserver{});
  }

  /// Timed variant of the gated const online phase: `observer` (when
  /// non-empty) receives one (kernel index, wall ns) callback per
  /// kernel launch that ran — indices 0..4 for the scheduled
  /// algorithm's five launches, `kConventionalKernel` for the single
  /// kernel of a conventional strategy. The serving layer uses this to
  /// attribute request time to the paper's phase structure; an empty
  /// observer skips all clock reads.
  [[nodiscard]] bool permute_timed(std::span<const T> a, std::span<T> b, std::span<T> scratch,
                                   const PhaseGate& gate, const KernelObserver& observer) const {
    HMM_CHECK(a.size() == size() && b.size() == size());
    auto& pool = util::ThreadPool::global();
    const auto run_conventional = [&](auto&& kernel) {
      if (gate && !gate()) return false;
      if (observer) {
        util::Stopwatch clock;
        kernel();
        observer(kConventionalKernel, static_cast<std::uint64_t>(clock.nanos()));
      } else {
        kernel();
      }
      return true;
    };
    switch (chosen_) {
      case Strategy::kScheduled:
        HMM_CHECK_MSG(scratch.size() == size(), "scheduled strategy needs n scratch elements");
        return scheduled_cpu_lean_timed<T>(pool, *plan_, a, b, scratch, gate, observer);
      case Strategy::kSDesignated:
        return run_conventional([&] { s_designated_cpu<T>(pool, a, b, *inverse_); });
      case Strategy::kDDesignated:
        return run_conventional([&] { d_designated_cpu<T>(pool, a, b, perm_); });
      case Strategy::kAuto:
        break;
    }
    HMM_CHECK_MSG(false, "unresolved strategy");
    return false;
  }

  /// Online phase: b[P(i)] = a[i]. Reusable; `a` and `b` must not
  /// alias. Uses the permuter's own scratch buffer, so calls on the
  /// same object must be serialized — use the const overload above for
  /// concurrent execution.
  void permute(std::span<const T> a, std::span<T> b) {
    permute(a, b, std::span<T>(scratch_.data(), scratch_.size()));
  }

  /// Predicted HMM running time of the active strategy (time units).
  [[nodiscard]] std::uint64_t predicted_time_units() const {
    const std::uint64_t n = size();
    switch (chosen_) {
      case Strategy::kScheduled:
        return model::scheduled_time(n, machine_);
      case Strategy::kSDesignated:
        return model::s_designated_time(
            n, perm::inverse_distribution(perm_, machine_.width), machine_);
      case Strategy::kDDesignated:
        return model::d_designated_time(n, perm::distribution(perm_, machine_.width),
                                        machine_);
      case Strategy::kAuto:
        break;
    }
    return 0;
  }

  /// True iff the scheduled plan is usable for (n, machine).
  static bool plan_supported(std::uint64_t n, const model::MachineParams& machine) {
    if (!util::is_pow2(n)) return false;
    const unsigned k = util::log2_floor(n);
    const unsigned wk = util::log2_floor(machine.width);
    return (k - (k + 1) / 2) >= wk;  // rows >= width (layout.cpp's rule)
  }

 private:
  perm::Permutation perm_;
  model::MachineParams machine_;
  Strategy chosen_;
  double offline_seconds_ = 0;
  std::optional<ScheduledPlan> plan_;
  std::optional<perm::Permutation> inverse_;
  util::aligned_vector<T> scratch_;
};

}  // namespace hmm::core
