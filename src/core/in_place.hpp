#pragma once
/// \file in_place.hpp
/// \brief In-place offline permutation by cycle following — the
///        memory-frugal extension of the paper's out-of-place setting.
///
/// The paper's algorithms use distinct `a` and `b` (plus two scratch
/// buffers for the scheduled pipeline). When memory is the constraint,
/// a permutation can be applied in place by walking its cycles:
/// `O(n)` time, `n` bits of scratch (visited bitmap), and — relevant to
/// the paper's cost lens — an inherently *casual* access pattern (each
/// cycle hops across the whole array), so on the HMM it costs
/// `Θ(n + l)` like the conventional algorithm's worst case. The
/// `bench_ablation_passes` family quantifies the time/space trade.
///
/// Also provides cycle-structure analysis (used to pick strategies:
/// an identity-heavy permutation moves few elements).

#include <cstdint>
#include <span>
#include <vector>

#include "perm/permutation.hpp"

namespace hmm::core {

/// Cycle statistics of a permutation.
struct CycleStats {
  std::uint64_t cycles = 0;        ///< number of cycles, fixed points included
  std::uint64_t fixed_points = 0;  ///< cycles of length 1
  std::uint64_t longest = 0;       ///< longest cycle length
  std::uint64_t moved = 0;         ///< elements not fixed (n - fixed_points)
};

/// One O(n) pass over the cycle structure.
CycleStats analyze_cycles(const perm::Permutation& p);

/// Apply `b[P(i)] = a[i]` semantics to a single buffer in place:
/// after the call, `data[P(i)]` holds the value that was at `data[i]`.
/// O(n) time, n bits of scratch.
template <class T>
void permute_in_place(std::span<T> data, const perm::Permutation& p) {
  HMM_CHECK(data.size() == p.size());
  std::vector<bool> visited(data.size(), false);
  for (std::uint64_t start = 0; start < data.size(); ++start) {
    if (visited[start] || p(start) == start) {
      visited[start] = true;
      continue;
    }
    // Walk the cycle starting at `start`, carrying the displaced value.
    T carry = data[start];
    std::uint64_t pos = start;
    do {
      visited[pos] = true;
      const std::uint64_t next = p(pos);
      std::swap(carry, data[next]);
      pos = next;
    } while (pos != start);
  }
}

/// Invert a permutation in place over a data buffer: after the call,
/// `data[i]` holds the value that was at `data[P(i)]` (gather
/// semantics). Equivalent to `permute_in_place(data, p.inverse())`
/// without materializing the inverse.
template <class T>
void unpermute_in_place(std::span<T> data, const perm::Permutation& p) {
  HMM_CHECK(data.size() == p.size());
  std::vector<bool> visited(data.size(), false);
  for (std::uint64_t start = 0; start < data.size(); ++start) {
    if (visited[start] || p(start) == start) {
      visited[start] = true;
      continue;
    }
    // Follow the cycle in the forward direction, but shift values the
    // other way: data[pos] <- data[P(pos)].
    const T first = data[start];
    std::uint64_t pos = start;
    for (;;) {
      visited[pos] = true;
      const std::uint64_t next = p(pos);
      if (next == start) break;
      data[pos] = data[next];
      pos = next;
    }
    data[pos] = first;
  }
}

}  // namespace hmm::core
