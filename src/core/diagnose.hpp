#pragma once
/// \file diagnose.hpp
/// \brief One-call analysis of a permutation on a machine: everything
///        the paper's cost theory says about it, in one report.
///
/// Computes the distribution metrics that drive Lemma 4, the cycle
/// structure, plan supportability and shared-memory fit, the predicted
/// HMM time of every strategy, and the model's recommendation — the
/// analysis `OfflinePermuter`'s kAuto performs, exposed for inspection
/// and tooling (`examples/permutation_doctor`).

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/in_place.hpp"
#include "model/machine.hpp"
#include "perm/permutation.hpp"

namespace hmm::core {

/// Full diagnostic report for (P, machine).
struct Diagnosis {
  std::uint64_t n = 0;
  model::MachineParams machine;

  // Distribution (Section IV): the conventional algorithms' cost driver.
  std::uint64_t dist_forward = 0;      ///< d_w(P)   — D-designated's casual writes
  std::uint64_t dist_inverse = 0;      ///< d_w(P⁻¹) — S-designated's casual reads
  double dist_forward_ratio = 0;       ///< d_w(P)/n in [1/w, 1]
  double dist_inverse_ratio = 0;

  // Cycle structure (in-place applicability, identity detection).
  CycleStats cycles;
  bool is_identity = false;
  bool is_involution = false;

  // Scheduled-plan feasibility.
  bool plan_supported = false;         ///< power-of-two n with rows >= w
  std::uint64_t shared_bytes_needed_f32 = 0;
  std::uint64_t shared_bytes_needed_f64 = 0;
  bool fits_shared_f32 = false;
  bool fits_shared_f64 = false;

  // Predicted HMM running times (Lemma 4 / Theorem 9).
  std::uint64_t time_d_designated = 0;
  std::uint64_t time_s_designated = 0;
  std::uint64_t time_scheduled = 0;    ///< 0 when the plan is unsupported
  std::uint64_t lower_bound = 0;

  /// The model's pick: "scheduled", "s-designated" or "d-designated".
  std::string recommendation;
};

/// Run the full analysis (O(n)).
Diagnosis diagnose(const perm::Permutation& p, const model::MachineParams& machine);

/// Pretty-print the report.
void print_diagnosis(std::ostream& os, const Diagnosis& d);

}  // namespace hmm::core
