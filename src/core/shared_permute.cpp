#include "core/shared_permute.hpp"

#include <vector>

namespace hmm::core {

using model::AccessClass;
using model::Dir;

SharedPermutation::SharedPermutation(const perm::Permutation& p, std::uint32_t width,
                                     graph::ColoringAlgorithm algo)
    : width_(width) {
  const std::uint64_t n = p.size();
  HMM_CHECK_MSG(n <= (1ull << 16), "shared permutation indices must fit 16 bits");
  HMM_CHECK_MSG(n % width == 0, "size must be a multiple of the width");
  std::vector<std::uint16_t> g(n);
  for (std::uint64_t j = 0; j < n; ++j) g[j] = static_cast<std::uint16_t>(p(j));
  phat_.resize(n);
  q_.resize(n);
  build_row_schedule(g, width, {phat_.data(), n}, {q_.data(), n}, algo);
}

std::uint64_t SharedPermutation::sim_rounds(sim::HmmSim& sim) const {
  const std::uint64_t n = size();
  std::vector<std::uint64_t> addrs(n);
  std::uint64_t t = 0;
  // Read a[p̂(k)] (source buffer at shared offset 0).
  for (std::uint64_t k = 0; k < n; ++k) addrs[k] = phat_[k];
  t += sim.shared_round("cf-perm:read", addrs, n, Dir::kRead, AccessClass::kConflictFree);
  // Write b[q(k)] (destination buffer at shared offset n; n is a
  // multiple of w so bank(q) is preserved).
  for (std::uint64_t k = 0; k < n; ++k) addrs[k] = n + q_[k];
  t += sim.shared_round("cf-perm:write", addrs, n, Dir::kWrite, AccessClass::kConflictFree);
  return t;
}

std::uint64_t shared_conventional_sim_rounds(sim::HmmSim& sim, const perm::Permutation& p) {
  const std::uint64_t n = p.size();
  std::vector<std::uint64_t> addrs(n);
  std::uint64_t t = 0;
  for (std::uint64_t j = 0; j < n; ++j) addrs[j] = j;
  t += sim.shared_round("conv-perm:read", addrs, n, Dir::kRead, AccessClass::kConflictFree);
  for (std::uint64_t j = 0; j < n; ++j) addrs[j] = n + p(j);
  t += sim.shared_round("conv-perm:write", addrs, n, Dir::kWrite, AccessClass::kCasual);
  return t;
}

std::uint64_t bank_conflict_stages(const perm::Permutation& p, std::uint32_t width) {
  HMM_CHECK(p.size() % width == 0);
  std::uint64_t total = 0;
  std::vector<std::uint64_t> warp(width);
  for (std::uint64_t base = 0; base < p.size(); base += width) {
    for (std::uint32_t k = 0; k < width; ++k) warp[k] = p(base + k);
    total += model::dmm_stages(warp, width);
  }
  return total;
}

}  // namespace hmm::core
