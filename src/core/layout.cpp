#include "core/layout.hpp"

#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::core {

MatrixShape shape_for(std::uint64_t n, std::uint32_t width) {
  HMM_CHECK_MSG(util::is_pow2(n), "scheduled permutation requires a power-of-two size");
  const unsigned k = util::log2_exact(n);
  const unsigned wk = util::log2_exact(width);
  // cols gets the ceiling half of the bits so cols >= rows.
  const unsigned col_bits = (k + 1) / 2;
  const unsigned row_bits = k - col_bits;
  HMM_CHECK_MSG(row_bits >= wk,
                "array too small for the scheduled algorithm: need n >= width^2 "
                "(2*width^2 for odd log2 n)");
  return MatrixShape{.rows = 1ull << row_bits, .cols = 1ull << col_bits};
}

std::uint64_t row_pass_shared_bytes(std::uint64_t len, std::uint64_t elem_size) {
  return 2 * len * elem_size + 2 * len * sizeof(std::uint16_t);
}

std::uint64_t transpose_shared_bytes(std::uint32_t width, std::uint64_t elem_size) {
  return static_cast<std::uint64_t>(width) * width * elem_size;
}

}  // namespace hmm::core
