#include "core/conventional.hpp"

#include <vector>

namespace hmm::core {

using model::AccessClass;
using model::Dir;

namespace {

/// Fill `addrs[i] = base + i` (the coalesced identity stream).
void identity_stream(std::vector<std::uint64_t>& addrs, std::uint64_t base, std::uint64_t n) {
  addrs.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base + i;
}

}  // namespace

std::uint64_t d_designated_sim_rounds(sim::HmmSim& sim, const perm::Permutation& p,
                                      std::uint32_t words) {
  const std::uint64_t n = p.size();
  const std::uint64_t base_a = sim.alloc_global(n * words);
  const std::uint64_t base_b = sim.alloc_global(n * words);
  const std::uint64_t base_p = sim.alloc_global(n);

  std::vector<std::uint64_t> addrs;
  std::uint64_t t = 0;
  identity_stream(addrs, base_p, n);
  t += sim.global_round("read p", addrs, Dir::kRead, AccessClass::kCoalesced);
  identity_stream(addrs, base_a / words, n);
  t += sim.global_round("read a", addrs, Dir::kRead, AccessClass::kCoalesced, words);
  const auto map = p.data();
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base_b / words + map[i];
  t += sim.global_round("scatter b", addrs, Dir::kWrite, AccessClass::kCasual, words);
  return t;
}

std::uint64_t s_designated_sim_rounds(sim::HmmSim& sim, const perm::Permutation& pinv,
                                      std::uint32_t words) {
  const std::uint64_t n = pinv.size();
  const std::uint64_t base_a = sim.alloc_global(n * words);
  const std::uint64_t base_b = sim.alloc_global(n * words);
  const std::uint64_t base_pinv = sim.alloc_global(n);

  std::vector<std::uint64_t> addrs;
  std::uint64_t t = 0;
  identity_stream(addrs, base_pinv, n);
  t += sim.global_round("read pinv", addrs, Dir::kRead, AccessClass::kCoalesced);
  const auto inv = pinv.data();
  addrs.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base_a / words + inv[i];
  t += sim.global_round("gather a", addrs, Dir::kRead, AccessClass::kCasual, words);
  identity_stream(addrs, base_b / words, n);
  t += sim.global_round("write b", addrs, Dir::kWrite, AccessClass::kCoalesced, words);
  return t;
}

}  // namespace hmm::core
