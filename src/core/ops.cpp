#include "core/ops.hpp"

#include <string>
#include <vector>

namespace hmm::core {

using model::AccessClass;
using model::Dir;

std::uint64_t row_wise_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                  const RowScheduleSet& set, const RowPassBases& bases,
                                  std::uint32_t words) {
  const std::uint64_t rows = set.rows;
  const std::uint64_t cols = set.cols;
  const std::uint64_t n = rows * cols;
  std::vector<std::uint64_t> addrs(n);
  std::uint64_t t = 0;

  auto identity = [&](std::uint64_t base) {
    for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base + i;
  };

  // Step 1: s[j] <- a[row][j].
  identity(bases.in);
  t += sim.global_round(label + ":read in", addrs, Dir::kRead, AccessClass::kCoalesced,
                        words);
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint64_t j = 0; j < cols; ++j) addrs[row * cols + j] = j;
  }
  t += sim.shared_round(label + ":write s", addrs, cols, Dir::kWrite,
                        AccessClass::kConflictFree, words);

  // Step 2: load the schedule entries (registers x, y).
  identity(bases.phat);
  t += sim.global_round(label + ":read phat", addrs, Dir::kRead, AccessClass::kCoalesced);
  identity(bases.q);
  t += sim.global_round(label + ":read q", addrs, Dir::kRead, AccessClass::kCoalesced);

  // Step 3: d[q(k)] <- s[p̂(k)] — the conflict-free scatter.
  for (std::uint64_t row = 0; row < rows; ++row) {
    const auto phat = set.phat_row(row);
    for (std::uint64_t k = 0; k < cols; ++k) addrs[row * cols + k] = phat[k];
  }
  t += sim.shared_round(label + ":read s", addrs, cols, Dir::kRead,
                        AccessClass::kConflictFree, words);
  for (std::uint64_t row = 0; row < rows; ++row) {
    const auto q = set.q_row(row);
    for (std::uint64_t k = 0; k < cols; ++k) addrs[row * cols + k] = cols + q[k];
  }
  t += sim.shared_round(label + ":write d", addrs, cols, Dir::kWrite,
                        AccessClass::kConflictFree, words);

  // Step 4: b[row][j] <- d[j].
  for (std::uint64_t row = 0; row < rows; ++row) {
    for (std::uint64_t j = 0; j < cols; ++j) addrs[row * cols + j] = cols + j;
  }
  t += sim.shared_round(label + ":read d", addrs, cols, Dir::kRead,
                        AccessClass::kConflictFree, words);
  identity(bases.out);
  t += sim.global_round(label + ":write out", addrs, Dir::kWrite, AccessClass::kCoalesced,
                        words);
  return t;
}

std::uint64_t row_wise_sim_rounds(sim::HmmSim& sim, const RowScheduleSet& set,
                                  std::uint32_t words) {
  const std::uint64_t n = set.rows * set.cols;
  RowPassBases bases;
  bases.in = sim.alloc_global(n * words) / words;
  bases.out = sim.alloc_global(n * words) / words;
  bases.phat = sim.alloc_global(n);
  bases.q = sim.alloc_global(n);
  return row_wise_sim_rounds(sim, "row-wise", set, bases, words);
}

std::uint64_t row_wise_sim_rounds_capped(sim::HmmSim& sim, const std::string& label,
                                         const RowScheduleSet& set,
                                         const RowPassBases& bases, std::uint32_t words,
                                         std::uint64_t cap) {
  HMM_CHECK(cap % sim.params().width == 0);
  const std::uint64_t rows = set.rows;
  const std::uint64_t cols = set.cols;
  const std::uint64_t slice = std::min(cols, cap);
  const std::uint64_t waves = util::ceil_div(cols, slice);
  const std::uint64_t wave_threads = rows * slice;
  std::vector<std::uint64_t> addrs(wave_threads);
  std::uint64_t t = 0;

  // One full 8-round pass per wave; wave v serves columns
  // [v*slice, (v+1)*slice). Shared arrays span the whole row, so bank
  // properties are those of the original schedule warps (slice is a
  // multiple of w, so schedule warps never straddle waves).
  for (std::uint64_t v = 0; v < waves; ++v) {
    auto global_slice = [&](std::uint64_t base) {
      for (std::uint64_t r = 0; r < rows; ++r) {
        for (std::uint64_t k = 0; k < slice; ++k) {
          addrs[r * slice + k] = base + r * cols + v * slice + k;
        }
      }
    };
    auto wave_label = [&](const char* step) {
      return label + ":w" + std::to_string(v) + ":" + step;
    };

    global_slice(bases.in);
    t += sim.global_round(wave_label("read in"), addrs, Dir::kRead,
                          AccessClass::kCoalesced, words);
    for (std::uint64_t r = 0; r < rows; ++r) {
      for (std::uint64_t k = 0; k < slice; ++k) addrs[r * slice + k] = v * slice + k;
    }
    t += sim.shared_round(wave_label("write s"), addrs, slice, Dir::kWrite,
                          AccessClass::kConflictFree, words);
    global_slice(bases.phat);
    t += sim.global_round(wave_label("read phat"), addrs, Dir::kRead,
                          AccessClass::kCoalesced);
    global_slice(bases.q);
    t += sim.global_round(wave_label("read q"), addrs, Dir::kRead, AccessClass::kCoalesced);
    for (std::uint64_t r = 0; r < rows; ++r) {
      const auto phat = set.phat_row(r);
      for (std::uint64_t k = 0; k < slice; ++k) {
        addrs[r * slice + k] = phat[v * slice + k];
      }
    }
    t += sim.shared_round(wave_label("read s"), addrs, slice, Dir::kRead,
                          AccessClass::kConflictFree, words);
    for (std::uint64_t r = 0; r < rows; ++r) {
      const auto q = set.q_row(r);
      for (std::uint64_t k = 0; k < slice; ++k) {
        addrs[r * slice + k] = cols + q[v * slice + k];
      }
    }
    t += sim.shared_round(wave_label("write d"), addrs, slice, Dir::kWrite,
                          AccessClass::kConflictFree, words);
    for (std::uint64_t r = 0; r < rows; ++r) {
      for (std::uint64_t k = 0; k < slice; ++k) {
        addrs[r * slice + k] = cols + v * slice + k;
      }
    }
    t += sim.shared_round(wave_label("read d"), addrs, slice, Dir::kRead,
                          AccessClass::kConflictFree, words);
    global_slice(bases.out);
    t += sim.global_round(wave_label("write out"), addrs, Dir::kWrite,
                          AccessClass::kCoalesced, words);
  }
  return t;
}

std::uint64_t transpose_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                   std::uint64_t rows, std::uint64_t cols,
                                   std::uint64_t base_in, std::uint64_t base_out,
                                   std::uint32_t words) {
  const std::uint32_t w = sim.params().width;
  HMM_CHECK_MSG(rows % w == 0 && cols % w == 0,
                "transpose requires dimensions that are multiples of the width");
  const std::uint64_t n = rows * cols;
  const std::uint64_t tiles_r = rows / w;
  const std::uint64_t tiles_c = cols / w;
  std::vector<std::uint64_t> addrs(n);
  std::uint64_t t = 0;

  // Round 1: coalesced read of the input tile row-by-row.
  for (std::uint64_t tile = 0; tile < tiles_r * tiles_c; ++tile) {
    const std::uint64_t tr = tile / tiles_c;
    const std::uint64_t tc = tile % tiles_c;
    std::uint64_t tid = tile * w * w;
    for (std::uint32_t i = 0; i < w; ++i) {
      for (std::uint32_t j = 0; j < w; ++j) {
        addrs[tid++] = base_in + (tr * w + i) * cols + tc * w + j;
      }
    }
  }
  t += sim.global_round(label + ":read in", addrs, Dir::kRead, AccessClass::kCoalesced,
                        words);

  // Round 2: conflict-free write into the diagonal arrangement
  // s[i][(i+j) mod w] (Fig. 4).
  for (std::uint64_t tile = 0; tile < tiles_r * tiles_c; ++tile) {
    std::uint64_t tid = tile * w * w;
    for (std::uint32_t i = 0; i < w; ++i) {
      for (std::uint32_t j = 0; j < w; ++j) {
        addrs[tid++] = static_cast<std::uint64_t>(i) * w + ((i + j) & (w - 1));
      }
    }
  }
  t += sim.shared_round(label + ":write diag", addrs, static_cast<std::uint64_t>(w) * w,
                        Dir::kWrite, AccessClass::kConflictFree, words);

  // Round 3: conflict-free read along transposed coordinates —
  // thread (u, v) of the output tile reads s[v][(v+u) mod w] = a[v][u].
  for (std::uint64_t tile = 0; tile < tiles_r * tiles_c; ++tile) {
    std::uint64_t tid = tile * w * w;
    for (std::uint32_t u = 0; u < w; ++u) {
      for (std::uint32_t v = 0; v < w; ++v) {
        addrs[tid++] = static_cast<std::uint64_t>(v) * w + ((v + u) & (w - 1));
      }
    }
  }
  t += sim.shared_round(label + ":read diag", addrs, static_cast<std::uint64_t>(w) * w,
                        Dir::kRead, AccessClass::kConflictFree, words);

  // Round 4: coalesced write of the transposed tile.
  for (std::uint64_t tile = 0; tile < tiles_r * tiles_c; ++tile) {
    const std::uint64_t tr = tile / tiles_c;
    const std::uint64_t tc = tile % tiles_c;
    std::uint64_t tid = tile * w * w;
    for (std::uint32_t u = 0; u < w; ++u) {
      for (std::uint32_t v = 0; v < w; ++v) {
        addrs[tid++] = base_out + (tc * w + u) * rows + tr * w + v;
      }
    }
  }
  t += sim.global_round(label + ":write out", addrs, Dir::kWrite, AccessClass::kCoalesced,
                        words);
  return t;
}

std::uint64_t transpose_sim_rounds(sim::HmmSim& sim, std::uint64_t rows, std::uint64_t cols,
                                   std::uint32_t words) {
  const std::uint64_t n = rows * cols;
  const std::uint64_t base_in = sim.alloc_global(n * words) / words;
  const std::uint64_t base_out = sim.alloc_global(n * words) / words;
  return transpose_sim_rounds(sim, "transpose", rows, cols, base_in, base_out, words);
}

std::uint64_t column_wise_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                     const RowScheduleSet& set, std::uint64_t rows,
                                     std::uint64_t cols, std::uint32_t words) {
  HMM_CHECK(set.rows == cols && set.cols == rows);
  const std::uint64_t n = rows * cols;
  const std::uint64_t base_in = sim.alloc_global(n * words) / words;
  const std::uint64_t base_mid = sim.alloc_global(n * words) / words;
  const std::uint64_t base_out = sim.alloc_global(n * words) / words;
  RowPassBases bases;
  bases.in = base_mid;
  bases.out = base_in;  // ping-pong back into the first buffer
  bases.phat = sim.alloc_global(n);
  bases.q = sim.alloc_global(n);

  std::uint64_t t = 0;
  t += transpose_sim_rounds(sim, label + ":T1", rows, cols, base_in, base_mid, words);
  t += row_wise_sim_rounds(sim, label + ":rw", set, bases, words);
  t += transpose_sim_rounds(sim, label + ":T2", cols, rows, base_in, base_out, words);
  return t;
}

std::uint64_t column_wise_naive_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                           std::span<const std::uint16_t> h,
                                           std::uint64_t rows, std::uint64_t cols) {
  HMM_CHECK(h.size() == rows * cols);
  const std::uint64_t n = rows * cols;
  const std::uint64_t base_in = sim.alloc_global(n);
  const std::uint64_t base_out = sim.alloc_global(n);

  // Thread tid = c * rows + i walks column c: reads (i, c), writes
  // (h_c(i), c). Both strided by `cols` in memory — casual.
  std::vector<std::uint64_t> addrs(n);
  std::uint64_t t = 0;
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      addrs[c * rows + i] = base_in + i * cols + c;
    }
  }
  t += sim.global_round(label + ":strided read", addrs, model::Dir::kRead,
                        model::AccessClass::kCasual);
  for (std::uint64_t c = 0; c < cols; ++c) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      addrs[c * rows + i] = base_out + static_cast<std::uint64_t>(h[c * rows + i]) * cols + c;
    }
  }
  t += sim.global_round(label + ":strided write", addrs, model::Dir::kWrite,
                        model::AccessClass::kCasual);
  return t;
}

RowScheduleSet build_column_schedules(std::span<const std::uint16_t> h, std::uint64_t rows,
                                      std::uint64_t cols, std::uint32_t width,
                                      graph::ColoringAlgorithm algo) {
  HMM_CHECK(h.size() == rows * cols);
  // On the transposed view, column c becomes row c of length `rows`,
  // and the column permutation h_c is exactly its row permutation.
  return build_row_schedules(h, cols, rows, width, algo);
}

}  // namespace hmm::core
