#pragma once
/// \file block_permute.hpp
/// \brief Batched small permutations: many independent block-sized
///        permutations applied in one launch, each inside a DMM's
///        shared memory — the per-tile reorder pattern (e.g. the
///        bit-reversal of every row of a batch-of-FFTs, or per-page
///        record shuffles).
///
/// Each block stages its slice in shared memory and applies its own
/// conflict-free SharedPermutation schedule (the prior-work machinery
/// of shared_permute.hpp); globally everything is coalesced, so the
/// whole batch costs `2(n/w + l - 1) + 2 n/(dw)` — the theoretical
/// floor — no matter what the per-block permutations are.

#include <cstdint>
#include <span>
#include <vector>

#include "core/shared_permute.hpp"
#include "model/cost.hpp"
#include "perm/permutation.hpp"
#include "sim/hmm_sim.hpp"
#include "util/thread_pool.hpp"

namespace hmm::core {

class BlockPermuter {
 public:
  /// Compile one schedule per block. All permutations must share one
  /// size (the block length, a multiple of the width, <= 2^16).
  BlockPermuter(std::vector<perm::Permutation> per_block, std::uint32_t width,
                graph::ColoringAlgorithm algo = graph::ColoringAlgorithm::kAuto) {
    HMM_CHECK_MSG(!per_block.empty(), "need at least one block");
    block_n_ = per_block.front().size();
    for (const auto& p : per_block) {
      HMM_CHECK_MSG(p.size() == block_n_, "all blocks must share one size");
      schedules_.emplace_back(p, width, algo);
    }
    perms_ = std::move(per_block);
  }

  [[nodiscard]] std::uint64_t blocks() const noexcept { return schedules_.size(); }
  [[nodiscard]] std::uint64_t block_size() const noexcept { return block_n_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return blocks() * block_n_; }
  [[nodiscard]] const perm::Permutation& permutation(std::uint64_t b) const {
    return perms_[b];
  }

  /// Host execution: block b's slice is permuted by its own schedule.
  template <class T>
  void apply(util::ThreadPool& pool, std::span<const T> a, std::span<T> out) const {
    HMM_CHECK(a.size() == size() && out.size() == size());
    pool.parallel_for_chunks(0, blocks(), [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t b = lo; b < hi; ++b) {
        schedules_[b].apply<T>(a.subspan(b * block_n_, block_n_),
                               out.subspan(b * block_n_, block_n_));
      }
    });
  }

  /// Simulator execution: 6 rounds — coalesced load, conflict-free
  /// stage into shared `s`, conflict-free gather `s[p̂]` / scatter
  /// `d[q]`, conflict-free read-back, coalesced store. Returns time
  /// units; permutation-independent by construction.
  [[nodiscard]] std::uint64_t sim_rounds(sim::HmmSim& sim) const {
    const std::uint64_t n = size();
    const std::uint64_t base_in = sim.alloc_global(n);
    const std::uint64_t base_out = sim.alloc_global(n);
    std::vector<std::uint64_t> addrs(n);
    std::uint64_t t = 0;

    auto lane = [&] {
      for (std::uint64_t b = 0; b < blocks(); ++b) {
        for (std::uint64_t k = 0; k < block_n_; ++k) addrs[b * block_n_ + k] = k;
      }
    };

    for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base_in + i;
    t += sim.global_round("batch:read", addrs, model::Dir::kRead,
                          model::AccessClass::kCoalesced);
    lane();
    t += sim.shared_round("batch:stage s", addrs, block_n_, model::Dir::kWrite,
                          model::AccessClass::kConflictFree);
    for (std::uint64_t b = 0; b < blocks(); ++b) {
      const auto phat = schedules_[b].phat();
      for (std::uint64_t k = 0; k < block_n_; ++k) addrs[b * block_n_ + k] = phat[k];
    }
    t += sim.shared_round("batch:smem read", addrs, block_n_, model::Dir::kRead,
                          model::AccessClass::kConflictFree);
    for (std::uint64_t b = 0; b < blocks(); ++b) {
      const auto q = schedules_[b].q();
      for (std::uint64_t k = 0; k < block_n_; ++k) {
        addrs[b * block_n_ + k] = block_n_ + q[k];
      }
    }
    t += sim.shared_round("batch:smem write", addrs, block_n_, model::Dir::kWrite,
                          model::AccessClass::kConflictFree);
    lane();
    for (std::uint64_t i = 0; i < n; ++i) addrs[i] += block_n_;
    t += sim.shared_round("batch:read d", addrs, block_n_, model::Dir::kRead,
                          model::AccessClass::kConflictFree);
    for (std::uint64_t i = 0; i < n; ++i) addrs[i] = base_out + i;
    t += sim.global_round("batch:write", addrs, model::Dir::kWrite,
                          model::AccessClass::kCoalesced);
    return t;
  }

  /// The theoretical floor this batch achieves on the machine:
  /// 2 coalesced global + 4 conflict-free shared rounds.
  [[nodiscard]] std::uint64_t predicted_time_units(const model::MachineParams& p) const {
    return 2 * model::coalesced_round_time(size(), p) +
           4 * model::conflict_free_round_time(size(), p);
  }

 private:
  std::uint64_t block_n_ = 0;
  std::vector<perm::Permutation> perms_;
  std::vector<SharedPermutation> schedules_;
};

}  // namespace hmm::core
