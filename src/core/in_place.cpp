#include "core/in_place.hpp"

#include <algorithm>

namespace hmm::core {

CycleStats analyze_cycles(const perm::Permutation& p) {
  CycleStats stats;
  std::vector<bool> visited(p.size(), false);
  for (std::uint64_t start = 0; start < p.size(); ++start) {
    if (visited[start]) continue;
    std::uint64_t len = 0;
    std::uint64_t pos = start;
    do {
      visited[pos] = true;
      pos = p(pos);
      ++len;
    } while (pos != start);
    ++stats.cycles;
    if (len == 1) {
      ++stats.fixed_points;
    } else {
      stats.moved += len;
    }
    stats.longest = std::max(stats.longest, len);
  }
  return stats;
}

}  // namespace hmm::core
