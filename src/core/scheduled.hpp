#pragma once
/// \file scheduled.hpp
/// \brief Online phase of the scheduled permutation (Section VII):
///        execute a compiled ScheduledPlan as five kernels —
///        row-wise, transpose, row-wise, transpose, row-wise —
///        exactly the paper's five sequential kernel launches.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "cpu/kernels.hpp"
#include "sim/hmm_sim.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::core {

/// Execute the plan on the host backend. `scratch1`/`scratch2` are
/// caller-provided ping-pong buffers of size n (kept out of the timed
/// region by the benchmarks, like device buffers allocated once).
template <class T>
void scheduled_cpu(util::ThreadPool& pool, const ScheduledPlan& plan, std::span<const T> a,
                   std::span<T> b, std::span<T> scratch1, std::span<T> scratch2) {
  const std::uint64_t n = plan.size();
  HMM_CHECK(a.size() == n && b.size() == n && scratch1.size() == n && scratch2.size() == n);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  const std::uint64_t tile = plan.params().width;

  cpu::row_wise_pass<T>(pool, a, scratch1, r, m, plan.pass1().phat, plan.pass1().q);
  cpu::transpose_blocked<T>(pool, scratch1, scratch2, r, m, tile);
  cpu::row_wise_pass<T>(pool, scratch2, scratch1, m, r, plan.pass2().phat, plan.pass2().q);
  cpu::transpose_blocked<T>(pool, scratch1, scratch2, m, r, tile);
  cpu::row_wise_pass<T>(pool, scratch2, b, r, m, plan.pass3().phat, plan.pass3().q);
}

/// Memory-lean host variant: ping-pongs through the output buffer so a
/// single scratch array suffices (the 2-scratch overload predates the
/// observation that `b` can serve as one leg of the ping-pong).
/// `a` must not alias `b` or `scratch`.
template <class T>
void scheduled_cpu_lean(util::ThreadPool& pool, const ScheduledPlan& plan,
                        std::span<const T> a, std::span<T> b, std::span<T> scratch) {
  const std::uint64_t n = plan.size();
  HMM_CHECK(a.size() == n && b.size() == n && scratch.size() == n);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  const std::uint64_t tile = plan.params().width;

  cpu::row_wise_pass<T>(pool, a, b, r, m, plan.pass1().phat, plan.pass1().q);
  cpu::transpose_blocked<T>(pool, b, scratch, r, m, tile);
  cpu::row_wise_pass<T>(pool, scratch, b, m, r, plan.pass2().phat, plan.pass2().q);
  cpu::transpose_blocked<T>(pool, b, scratch, m, r, tile);
  cpu::row_wise_pass<T>(pool, scratch, b, r, m, plan.pass3().phat, plan.pass3().q);
}

/// Cooperative checkpoint between the five kernel launches: return
/// false to stop the execution (deadline blown, request cancelled).
/// The paper's algorithm is five *sequential* kernel launches, so the
/// gaps between them are the natural preemption points a serving layer
/// gets for free — a stopped execution leaves `b`/`scratch` partially
/// written, which the caller must treat as garbage.
using PhaseGate = std::function<bool()>;

/// Per-kernel timing callback: invoked once after each kernel launch
/// that ran, with the kernel index and its wall time in nanoseconds.
/// Indices 0..4 are the scheduled algorithm's five launches in order
/// (row pass 1, transpose 1, row pass 2, transpose 2, row pass 3);
/// `kConventionalKernel` marks the single kernel of a conventional
/// strategy. Core stays observability-agnostic: the callback carries a
/// neutral (index, ns) pair and the serving layer maps it to its own
/// phase taxonomy.
using KernelObserver = std::function<void(unsigned kernel, std::uint64_t ns)>;

/// Kernel index reported by the timed entry points for the single
/// kernel of a conventional (non-scheduled) strategy.
inline constexpr unsigned kConventionalKernel = 5;

/// `scheduled_cpu_lean` with a gate consulted before every kernel after
/// the first and an optional per-kernel timing observer. Returns true
/// iff all five kernels ran to completion; empty gate and observer
/// degenerate to the ungated, untimed variant (the Stopwatch reads are
/// skipped entirely when no observer is installed).
template <class T>
bool scheduled_cpu_lean_timed(util::ThreadPool& pool, const ScheduledPlan& plan,
                              std::span<const T> a, std::span<T> b, std::span<T> scratch,
                              const PhaseGate& gate, const KernelObserver& observer) {
  const std::uint64_t n = plan.size();
  HMM_CHECK(a.size() == n && b.size() == n && scratch.size() == n);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  const std::uint64_t tile = plan.params().width;

  util::Stopwatch clock;
  const auto observe = [&](unsigned kernel) {
    if (observer) {
      observer(kernel, static_cast<std::uint64_t>(clock.nanos()));
      clock.reset();
    }
  };

  cpu::row_wise_pass<T>(pool, a, b, r, m, plan.pass1().phat, plan.pass1().q);
  observe(0);
  if (gate && !gate()) return false;
  cpu::transpose_blocked<T>(pool, b, scratch, r, m, tile);
  observe(1);
  if (gate && !gate()) return false;
  cpu::row_wise_pass<T>(pool, scratch, b, m, r, plan.pass2().phat, plan.pass2().q);
  observe(2);
  if (gate && !gate()) return false;
  cpu::transpose_blocked<T>(pool, b, scratch, m, r, tile);
  observe(3);
  if (gate && !gate()) return false;
  cpu::row_wise_pass<T>(pool, scratch, b, r, m, plan.pass3().phat, plan.pass3().q);
  observe(4);
  return true;
}

/// `scheduled_cpu_lean` with a gate consulted before every kernel after
/// the first. Returns true iff all five kernels ran to completion; an
/// empty gate degenerates to the ungated variant.
template <class T>
bool scheduled_cpu_lean_gated(util::ThreadPool& pool, const ScheduledPlan& plan,
                              std::span<const T> a, std::span<T> b, std::span<T> scratch,
                              const PhaseGate& gate) {
  return scheduled_cpu_lean_timed<T>(pool, plan, a, b, scratch, gate, {});
}

/// One request ("lane") of a batched scheduled execution: distinct
/// (a, b, scratch) triples, one shared compiled plan. The per-lane
/// `gate` is consulted at every kernel boundary; a lane gated off has
/// `active` cleared and is excluded from the remaining kernels — its
/// b/scratch hold garbage, exactly like a gated single execution — and
/// the other lanes proceed unaffected.
template <class T>
struct BatchLane {
  std::span<const T> a;
  std::span<T> b;
  std::span<T> scratch;
  PhaseGate gate;      ///< empty = never stops
  bool active = true;  ///< in: lane participates; out: ran to completion
};

/// Batched online phase, the serving-side image of the paper's batching
/// lemma: many permutations along the same plan amortize to optimal
/// cost. All active lanes advance through each of the five kernels
/// *together* — five fork/join barriers per batch instead of per
/// request — and the plan's schedule arrays (p̂, q) are read once per
/// kernel, staying hot in cache across every lane. `observer` fires
/// once per kernel with the batch-wide span. Lanes report their outcome
/// through `active` (true = all five kernels ran for that lane).
template <class T>
void scheduled_cpu_lean_batched(util::ThreadPool& pool, const ScheduledPlan& plan,
                                std::span<BatchLane<T>> lanes,
                                const KernelObserver& observer = {}) {
  const std::uint64_t n = plan.size();
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  const std::uint64_t tile = plan.params().width;

  // Compact live-lane index list, rebuilt at every gate boundary so a
  // dropped lane costs the remaining kernels nothing.
  std::vector<std::size_t> live;
  live.reserve(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    if (!lanes[i].active) continue;
    HMM_CHECK(lanes[i].a.size() == n && lanes[i].b.size() == n &&
              lanes[i].scratch.size() == n);
    live.push_back(i);
  }
  if (live.empty()) return;

  enum class Leg { kA, kB, kScratch };
  std::vector<const T*> srcs;
  std::vector<T*> dsts;
  const auto gather_ptrs = [&](Leg src, Leg dst) {
    srcs.resize(live.size());
    dsts.resize(live.size());
    for (std::size_t l = 0; l < live.size(); ++l) {
      BatchLane<T>& lane = lanes[live[l]];
      srcs[l] = src == Leg::kA ? lane.a.data()
                               : (src == Leg::kB ? lane.b.data() : lane.scratch.data());
      dsts[l] = dst == Leg::kB ? lane.b.data() : lane.scratch.data();
    }
  };

  util::Stopwatch clock;
  const auto observe = [&](unsigned kernel) {
    if (observer) {
      observer(kernel, static_cast<std::uint64_t>(clock.nanos()));
      clock.reset();
    }
  };
  const auto gate_pass = [&]() -> bool {
    std::size_t kept = 0;
    for (std::size_t idx : live) {
      BatchLane<T>& lane = lanes[idx];
      if (lane.gate && !lane.gate()) {
        lane.active = false;
      } else {
        live[kept++] = idx;
      }
    }
    live.resize(kept);
    return !live.empty();
  };

  gather_ptrs(Leg::kA, Leg::kB);
  cpu::row_wise_pass_batched<T>(pool, srcs, dsts, r, m, plan.pass1().phat, plan.pass1().q);
  observe(0);
  if (!gate_pass()) return;
  gather_ptrs(Leg::kB, Leg::kScratch);
  cpu::transpose_blocked_batched<T>(pool, srcs, dsts, r, m, tile);
  observe(1);
  if (!gate_pass()) return;
  gather_ptrs(Leg::kScratch, Leg::kB);
  cpu::row_wise_pass_batched<T>(pool, srcs, dsts, m, r, plan.pass2().phat, plan.pass2().q);
  observe(2);
  if (!gate_pass()) return;
  gather_ptrs(Leg::kB, Leg::kScratch);
  cpu::transpose_blocked_batched<T>(pool, srcs, dsts, m, r, tile);
  observe(3);
  if (!gate_pass()) return;
  gather_ptrs(Leg::kScratch, Leg::kB);
  cpu::row_wise_pass_batched<T>(pool, srcs, dsts, r, m, plan.pass3().phat, plan.pass3().q);
  observe(4);
}

/// Host variant that applies the per-row permutations directly instead
/// of reading the (p̂, q) schedule arrays — one indirection per element
/// instead of two. Used by `bench_ablation_coloring`'s schedule-read
/// overhead comparison; the GPU-faithful `scheduled_cpu` is what the
/// paper's implementation does.
template <class T>
void scheduled_cpu_direct(util::ThreadPool& pool, const ScheduledPlan& plan,
                          std::span<const T> a, std::span<T> b, std::span<T> scratch1,
                          std::span<T> scratch2) {
  const std::uint64_t n = plan.size();
  HMM_CHECK(a.size() == n && b.size() == n && scratch1.size() == n && scratch2.size() == n);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;
  const std::uint64_t tile = plan.params().width;

  cpu::row_wise_pass_direct<T>(pool, a, scratch1, r, m, plan.direct1());
  cpu::transpose_blocked<T>(pool, scratch1, scratch2, r, m, tile);
  cpu::row_wise_pass_direct<T>(pool, scratch2, scratch1, m, r, plan.direct2());
  cpu::transpose_blocked<T>(pool, scratch1, scratch2, m, r, tile);
  cpu::row_wise_pass_direct<T>(pool, scratch2, b, r, m, plan.direct3());
}

/// Issue every memory-access round of the scheduled algorithm on the
/// simulator (16 coalesced global + 16 conflict-free shared rounds);
/// returns the elapsed time units. Addresses only — pair with
/// `scheduled_sim` for data movement. `words` is the data element
/// width in machine words (model::words_of<T>()).
std::uint64_t scheduled_sim_rounds(sim::HmmSim& sim, const ScheduledPlan& plan,
                                   std::uint32_t words = 1);

/// Execute the plan on the simulator backend: moves the data through
/// the same five passes (serially) and accounts the model time.
template <class T>
std::uint64_t scheduled_sim(sim::HmmSim& sim, const ScheduledPlan& plan, std::span<const T> a,
                            std::span<T> b) {
  const std::uint64_t n = plan.size();
  HMM_CHECK(a.size() == n && b.size() == n);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;

  std::vector<T> t1(n), t2(n);
  auto row_pass = [&](const RowScheduleSet& set, const T* in, T* out) {
    for (std::uint64_t row = 0; row < set.rows; ++row) {
      const auto phat = set.phat_row(row);
      const auto q = set.q_row(row);
      const std::uint64_t base = row * set.cols;
      for (std::uint64_t k = 0; k < set.cols; ++k) out[base + q[k]] = in[base + phat[k]];
    }
  };
  auto transpose_pass = [&](std::uint64_t rows, std::uint64_t cols, const T* in, T* out) {
    for (std::uint64_t i = 0; i < rows; ++i) {
      for (std::uint64_t j = 0; j < cols; ++j) out[j * rows + i] = in[i * cols + j];
    }
  };

  row_pass(plan.pass1(), a.data(), t1.data());
  transpose_pass(r, m, t1.data(), t2.data());
  row_pass(plan.pass2(), t2.data(), t1.data());
  transpose_pass(m, r, t1.data(), t2.data());
  row_pass(plan.pass3(), t2.data(), b.data());

  return scheduled_sim_rounds(sim, plan, model::words_of<T>());
}

}  // namespace hmm::core
