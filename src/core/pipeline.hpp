#pragma once
/// \file pipeline.hpp
/// \brief Multi-stage permutation pipelines and their fusion.
///
/// Many workloads apply a *sequence* of data-independent permutations
/// (FFT stage reorders, sorting-network rounds, repeated corner turns).
/// Because the scheduled algorithm's cost is permutation-independent
/// (Theorem 9), composing k stages into one permutation and compiling
/// a single plan is a guaranteed k-fold saving over executing the
/// stages one by one — the model makes fusion a theorem rather than a
/// heuristic. `PermutationPipeline` owns that decision: stages are
/// appended, `compile()` fuses maximal runs, and `execute()` runs the
/// fused plans back to back.
///
/// Fusion is still broken (a) where the caller inserts an explicit
/// barrier — meaning some computation happens between stages, so the
/// intermediate order must materialize — and (b) when a fused stage
/// group degenerates to the identity (it is then skipped entirely,
/// another win composition makes visible: e.g. two corner turns).

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "core/scheduled.hpp"
#include "model/cost.hpp"
#include "perm/permutation.hpp"

namespace hmm::core {

class PermutationPipeline {
 public:
  explicit PermutationPipeline(model::MachineParams machine) : machine_(machine) {
    machine_.validate();
  }

  /// Append a stage: the array is permuted by `p` (b[p(i)] = a[i]).
  PermutationPipeline& then(perm::Permutation p) {
    HMM_CHECK_MSG(stages_.empty() || stages_.back().size() == p.size(),
                  "all pipeline stages must share one size");
    HMM_CHECK_MSG(!compiled(), "pipeline already compiled");
    stages_.push_back(std::move(p));
    barriers_.push_back(false);
    return *this;
  }

  /// Insert a barrier after the most recent stage: the intermediate
  /// ordering must materialize (computation happens there), so fusion
  /// must not cross it.
  PermutationPipeline& barrier() {
    HMM_CHECK_MSG(!stages_.empty(), "barrier needs a preceding stage");
    HMM_CHECK_MSG(!compiled(), "pipeline already compiled");
    barriers_.back() = true;
    return *this;
  }

  [[nodiscard]] std::uint64_t stage_count() const noexcept { return stages_.size(); }
  [[nodiscard]] bool compiled() const noexcept { return !segments_.empty(); }

  /// Fuse maximal barrier-free runs and build one plan per non-identity
  /// fused segment.
  void compile() {
    HMM_CHECK_MSG(!stages_.empty(), "empty pipeline");
    HMM_CHECK_MSG(!compiled(), "pipeline already compiled");
    std::optional<perm::Permutation> fused;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
      fused = fused ? stages_[s].compose(*fused) : stages_[s];
      if (barriers_[s] || s + 1 == stages_.size()) {
        Segment seg;
        seg.fused_stages = fused_count_ + 1;
        if (!fused->is_identity()) {
          seg.plan.emplace(ScheduledPlan::build(*fused, machine_));
          seg.permutation.emplace(std::move(*fused));
        }
        segments_.push_back(std::move(seg));
        fused.reset();
        fused_count_ = 0;
      } else {
        ++fused_count_;
      }
    }
    fused_count_ = 0;
  }

  /// Number of compiled segments (plans actually executed, identity
  /// segments excluded from work but present in the list).
  [[nodiscard]] std::uint64_t segment_count() const noexcept { return segments_.size(); }
  [[nodiscard]] std::uint64_t active_segment_count() const {
    std::uint64_t k = 0;
    for (const auto& seg : segments_) k += seg.plan.has_value();
    return k;
  }

  /// Predicted HMM time: one scheduled execution per active segment —
  /// vs `stage_count()` executions unfused (the saving fusion buys).
  [[nodiscard]] std::uint64_t predicted_time_units() const {
    HMM_CHECK_MSG(compiled(), "compile() first");
    return active_segment_count() *
           model::scheduled_time(stages_.front().size(), machine_);
  }
  [[nodiscard]] std::uint64_t predicted_unfused_time_units() const {
    return stage_count() * model::scheduled_time(stages_.front().size(), machine_);
  }

  /// Execute on the host backend. `a` in, `b` out; scratch of size n.
  /// Safe aliasing inside the lean pipeline: its input is fully
  /// consumed by pass 1 before the scratch leg is first written, so two
  /// buffers ping-pong through any number of segments.
  template <class T>
  void execute(util::ThreadPool& pool, std::span<const T> a, std::span<T> b,
               std::span<T> scratch) const {
    HMM_CHECK_MSG(compiled(), "compile() first");
    const std::uint64_t n = stages_.front().size();
    HMM_CHECK(a.size() == n && b.size() == n && scratch.size() == n);
    // Start with the input in b (identity pipelines degenerate to copy).
    std::copy(a.begin(), a.end(), b.begin());
    std::span<T> cur = b;
    std::span<T> other = scratch;
    for (const auto& seg : segments_) {
      if (!seg.plan) continue;
      scheduled_cpu_lean<T>(pool, *seg.plan, {cur.data(), n}, other, cur);
      std::swap(cur, other);
    }
    if (cur.data() != b.data()) std::copy(cur.begin(), cur.end(), b.begin());
  }

  /// The fused permutation a segment applies (for tests/inspection).
  [[nodiscard]] const perm::Permutation* segment_permutation(std::uint64_t i) const {
    return segments_[i].permutation ? &*segments_[i].permutation : nullptr;
  }

 private:
  struct Segment {
    std::uint64_t fused_stages = 0;
    std::optional<ScheduledPlan> plan;
    std::optional<perm::Permutation> permutation;
  };

  model::MachineParams machine_;
  std::vector<perm::Permutation> stages_;
  std::vector<bool> barriers_;
  std::vector<Segment> segments_;
  std::uint64_t fused_count_ = 0;
};

}  // namespace hmm::core
