#pragma once
/// \file ops.hpp
/// \brief The paper's building-block operations as standalone public
///        API: matrix transpose (Section V), row-wise permutation and
///        column-wise permutation (Section VI) — each with a host
///        executor and a simulator round generator whose inventory
///        matches its Table I row.
///
/// The scheduled permutation (scheduled.hpp) is the composition
/// row-wise ∘ column-wise ∘ row-wise; exposing the pieces lets
/// downstream users run just the part they need (e.g. only a
/// conflict-free transpose) and lets the tests pin each Table I row
/// individually.

#include <cstdint>
#include <span>

#include "core/row_schedule.hpp"
#include "cpu/kernels.hpp"
#include "sim/hmm_sim.hpp"
#include "util/thread_pool.hpp"

namespace hmm::core {

/// Base addresses used by the simulator round generators. Callers who
/// just want timing use the allocating overloads; the scheduled
/// pipeline threads its own buffers through.
struct RowPassBases {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  std::uint64_t phat = 0;
  std::uint64_t q = 0;
};

/// Issue the 8 rounds of one row-wise permutation kernel (Table I row
/// "row-wise": 3 coalesced reads, 1 coalesced write, 2 conflict-free
/// reads, 2 conflict-free writes). Returns elapsed time units.
/// `words` is the data element width in machine words
/// (model::words_of<T>()); bases.in/out must be element addresses whose
/// word address (base*words) is group-aligned. The 16-bit schedule
/// arrays are modeled at words = 1.
std::uint64_t row_wise_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                  const RowScheduleSet& set, const RowPassBases& bases,
                                  std::uint32_t words = 1);

/// Allocating overload: lays out fresh global arrays and runs the rounds.
std::uint64_t row_wise_sim_rounds(sim::HmmSim& sim, const RowScheduleSet& set,
                                  std::uint32_t words = 1);

/// Block-capped variant (the paper's Section VIII note: CUDA blocks
/// hold at most 1024 threads; longer rows are served in cols/cap
/// sequential waves, each a full memory round). Operationally validates
/// `model::row_wise_time_capped`. `cap` must be a multiple of the
/// width; with cap >= cols this equals the uncapped rounds.
std::uint64_t row_wise_sim_rounds_capped(sim::HmmSim& sim, const std::string& label,
                                         const RowScheduleSet& set, const RowPassBases& bases,
                                         std::uint32_t words, std::uint64_t cap);

/// Issue the 4 rounds of the tiled transpose kernel (Table I row
/// "transpose": 1 coalesced read/write + 1 conflict-free read/write,
/// via the Fig. 4 diagonal arrangement). rows and cols must be
/// multiples of the machine width.
std::uint64_t transpose_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                   std::uint64_t rows, std::uint64_t cols, std::uint64_t base_in,
                                   std::uint64_t base_out, std::uint32_t words = 1);

/// Allocating overload.
std::uint64_t transpose_sim_rounds(sim::HmmSim& sim, std::uint64_t rows, std::uint64_t cols,
                                   std::uint32_t words = 1);

/// Column-wise permutation (Section VI): move each element within its
/// column by per-column permutations. `set` holds the schedules on the
/// TRANSPOSED view (cols rows of length rows — build with
/// `build_column_schedules`). Emits transpose + row-wise + transpose =
/// the Table I "column-wise" row (16 rounds). Returns time units.
std::uint64_t column_wise_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                     const RowScheduleSet& set, std::uint64_t rows,
                                     std::uint64_t cols, std::uint32_t words = 1);

/// Ablation baseline: column-wise permutation WITHOUT the transpose
/// detour — threads walk columns directly, so every global access
/// strides by `cols` and is casual (w address groups per warp). Two
/// rounds (read + write). Quantifies what Section V's conflict-free
/// transpose buys. Returns time units.
std::uint64_t column_wise_naive_sim_rounds(sim::HmmSim& sim, const std::string& label,
                                           std::span<const std::uint16_t> h,
                                           std::uint64_t rows, std::uint64_t cols);

/// Build schedules for a column-wise permutation of a rows x cols
/// matrix: `h[c * rows + i]` is the destination row of the element at
/// (i, c) — i.e. `b[h(i)][c] = a[i][c]`. The result is a schedule set
/// over the transposed (cols x rows) view.
RowScheduleSet build_column_schedules(std::span<const std::uint16_t> h, std::uint64_t rows,
                                      std::uint64_t cols, std::uint32_t width,
                                      graph::ColoringAlgorithm algo =
                                          graph::ColoringAlgorithm::kAuto);

/// Host column-wise permutation through the same three passes
/// (transpose, row-wise on the transposed matrix, transpose back).
template <class T>
void column_wise_cpu(util::ThreadPool& pool, std::span<const T> in, std::span<T> out,
                     std::uint64_t rows, std::uint64_t cols, const RowScheduleSet& set,
                     std::span<T> scratch, std::uint64_t tile = 32) {
  HMM_CHECK(set.rows == cols && set.cols == rows);
  HMM_CHECK(in.size() == rows * cols && out.size() == in.size() && scratch.size() == in.size());
  cpu::transpose_blocked<T>(pool, in, out, rows, cols, tile);
  cpu::row_wise_pass<T>(pool, out, scratch, cols, rows, set.phat, set.q);
  cpu::transpose_blocked<T>(pool, scratch, out, cols, rows, tile);
}

}  // namespace hmm::core
