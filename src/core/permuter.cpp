#include "core/permuter.hpp"

namespace hmm::core {

std::string_view to_string(Strategy s) noexcept {
  switch (s) {
    case Strategy::kAuto: return "auto";
    case Strategy::kScheduled: return "scheduled";
    case Strategy::kSDesignated: return "s-designated";
    case Strategy::kDDesignated: return "d-designated";
  }
  return "?";
}

}  // namespace hmm::core
