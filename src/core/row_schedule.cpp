#include "core/row_schedule.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::core {

void build_row_schedule(std::span<const std::uint16_t> g, std::uint32_t width,
                        std::span<std::uint16_t> phat, std::span<std::uint16_t> q,
                        graph::ColoringAlgorithm algo) {
  const std::uint64_t len = g.size();
  HMM_CHECK(phat.size() == len && q.size() == len);
  HMM_CHECK_MSG(len % width == 0 && len >= width, "row length must be a multiple of width");

  // Bank multigraph: edge per position j from source bank (j mod w) to
  // destination bank (g(j) mod w); regular of degree len/w.
  graph::BipartiteMultigraph bank_graph(width, width);
  bank_graph.reserve(len);
  for (std::uint64_t j = 0; j < len; ++j) {
    bank_graph.add_edge(static_cast<std::uint32_t>(j & (width - 1)),
                        static_cast<std::uint32_t>(g[j] & (width - 1)));
  }
  const graph::EdgeColoring coloring = graph::color_edges(bank_graph, algo);
  HMM_DCHECK(coloring.colors == len / width);

  // Color t's w edges form a perfect matching on banks: exactly one
  // position per source bank. Slot (t, k) of the schedule gets the
  // position whose source bank is k.
  for (std::uint64_t j = 0; j < len; ++j) {
    const std::uint32_t t = coloring.color[j];
    const std::uint64_t k = j & (width - 1);
    const std::uint64_t slot = static_cast<std::uint64_t>(t) * width + k;
    HMM_DCHECK(slot < len);
    phat[slot] = static_cast<std::uint16_t>(j);
    q[slot] = g[j];
  }
}

RowScheduleSet build_row_schedules(std::span<const std::uint16_t> g, std::uint64_t rows,
                                   std::uint64_t cols, std::uint32_t width,
                                   graph::ColoringAlgorithm algo) {
  HMM_CHECK(g.size() == rows * cols);
  RowScheduleSet set;
  set.rows = rows;
  set.cols = cols;
  set.phat.resize(rows * cols);
  set.q.resize(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    build_row_schedule(g.subspan(r * cols, cols), width,
                       {set.phat.data() + r * cols, cols}, {set.q.data() + r * cols, cols},
                       algo);
  }
  return set;
}

RowScheduleSet build_row_schedules(util::ThreadPool& pool, std::span<const std::uint16_t> g,
                                   std::uint64_t rows, std::uint64_t cols,
                                   std::uint32_t width, graph::ColoringAlgorithm algo) {
  HMM_CHECK(g.size() == rows * cols);
  RowScheduleSet set;
  set.rows = rows;
  set.cols = cols;
  set.phat.resize(rows * cols);
  set.q.resize(rows * cols);
  // Rows write disjoint output slices; the coloring itself is
  // deterministic, so the parallel build is bit-identical to the
  // serial one.
  pool.parallel_for(0, rows, [&](std::uint64_t r) {
    build_row_schedule(g.subspan(r * cols, cols), width,
                       {set.phat.data() + r * cols, cols}, {set.q.data() + r * cols, cols},
                       algo);
  });
  return set;
}

RowScheduleSet slice_rows(const RowScheduleSet& full, std::uint64_t row_begin,
                          std::uint64_t row_end) {
  HMM_CHECK_MSG(row_begin <= row_end && row_end <= full.rows,
                "slice_rows: band out of range");
  RowScheduleSet band;
  band.rows = row_end - row_begin;
  band.cols = full.cols;
  band.phat.resize(band.rows * band.cols);
  band.q.resize(band.rows * band.cols);
  const std::uint64_t offset = row_begin * full.cols;
  std::copy_n(full.phat.data() + offset, band.phat.size(), band.phat.data());
  std::copy_n(full.q.data() + offset, band.q.size(), band.q.data());
  return band;
}

bool row_schedule_valid(std::span<const std::uint16_t> g, std::span<const std::uint16_t> phat,
                        std::span<const std::uint16_t> q, std::uint32_t width) {
  const std::uint64_t len = g.size();
  if (phat.size() != len || q.size() != len || len % width != 0) return false;

  // p̂ must be a permutation of [0, len).
  std::vector<std::uint8_t> seen(len, 0);
  for (std::uint16_t v : phat) {
    if (v >= len || seen[v]) return false;
    seen[v] = 1;
  }
  // g(p̂(k)) == q(k) for every slot — i.e. g = q ∘ p̂⁻¹.
  for (std::uint64_t k = 0; k < len; ++k) {
    if (g[phat[k]] != q[k]) return false;
  }
  // Each schedule warp hits w distinct banks on both sides.
  for (std::uint64_t warp = 0; warp < len; warp += width) {
    std::uint64_t src_banks = 0, dst_banks = 0;
    for (std::uint32_t k = 0; k < width; ++k) {
      src_banks |= 1ull << (phat[warp + k] & (width - 1));
      dst_banks |= 1ull << (q[warp + k] & (width - 1));
    }
    if (std::popcount(src_banks) != static_cast<int>(width) ||
        std::popcount(dst_banks) != static_cast<int>(width)) {
      return false;
    }
  }
  return true;
}

}  // namespace hmm::core
