#pragma once
/// \file dispatch.hpp
/// \brief Runtime CPU-feature dispatch for the kernel tier.
///
/// The five kernel passes exist in up to three tiers: the scalar C++
/// loops (the differential-test oracle, always built), an AVX2 tier
/// (vpgatherdd reads, widened uint16 schedule loads, software prefetch
/// of upcoming schedule entries), and an AVX-512 tier (full
/// gather/scatter: vpgatherdd + vpscatterdd move 16 elements per step
/// with no scalar extraction). The paper's row schedules make the SIMD
/// tiers well-defined by construction: within a row, q is a
/// permutation, so the destination indices inside one scatter vector
/// are distinct — the same conflict-freedom the schedules guarantee
/// across memory banks holds across SIMD lanes (see DESIGN.md §2.1).
///
/// Selection happens once, at first kernel launch:
///   1. detect what the CPU supports (AVX2; AVX-512 F+BW+VL+DQ),
///   2. apply the `HMM_KERNEL_VARIANT` env override
///      (`scalar` | `avx2` | `avx512` | `auto`), clamped to what the
///      hardware can run (a forced `avx512` on an AVX2-only box warns
///      and degrades to `avx2`),
///   3. cache the result; every kernel launch is then one relaxed load.
///
/// `set_kernel_variant` re-aims the dispatcher at runtime for the
/// differential tests and the per-variant bench rows; it clamps the
/// same way and returns the variant actually installed.
///
/// Element types dispatch by width: 4- and 8-byte elements (the
/// uint32/uint64/float/double serving types — kernels only move bits,
/// so float rides the u32 path bit-identically) take the SIMD tiers;
/// every other width runs scalar.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace hmm::cpu {

/// Kernel tiers in ascending capability order (the dispatcher clamps
/// downward, so the order is meaningful).
enum class KernelVariant : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

[[nodiscard]] std::string_view to_string(KernelVariant v) noexcept;

/// What the running CPU supports (cpuid, detected once). `avx512`
/// requires the F+BW+VL+DQ subset the kernels use, not just AVX512F.
struct CpuFeatures {
  bool avx2 = false;
  bool avx512 = false;
};

[[nodiscard]] const CpuFeatures& cpu_features() noexcept;

/// The best variant this binary + CPU can run (ignores the env
/// override; what `auto` resolves to).
[[nodiscard]] KernelVariant best_kernel_variant() noexcept;

/// The active variant: resolved on first call (hardware cap, then the
/// `HMM_KERNEL_VARIANT` override), one relaxed atomic load after that.
[[nodiscard]] KernelVariant kernel_variant() noexcept;

/// Re-aim the dispatcher (tests, per-variant bench rows). Requests the
/// hardware or build cannot satisfy clamp down; returns the variant
/// actually installed. Not meant to race with in-flight kernels.
KernelVariant set_kernel_variant(KernelVariant v) noexcept;

namespace simd {

/// Serial sub-range kernels for one element width, type-erased to
/// `void*` (the kernels move bits; width is fixed per table). The
/// thread pool templates in kernels.hpp fan chunks out and call these
/// per chunk; any null member means "run the scalar loop instead"
/// (e.g. AVX2 has gathers but no scatter, so its conventional-scatter
/// slot stays null).
struct KernelOps {
  /// rows [r0, r1) of out[r][q[k]] = in[r][phat[k]].
  void (*row_pass)(const void* in, void* out, std::uint64_t cols,
                   const std::uint16_t* phat, const std::uint16_t* q,
                   std::uint64_t r0, std::uint64_t r1);
  /// Fused multi-lane row pass: same rows, `lanes` (src, dst) pairs
  /// sharing one schedule decode per index step.
  void (*row_pass_batched)(const void* const* srcs, void* const* dsts,
                           std::uint64_t lanes, std::uint64_t cols,
                           const std::uint16_t* phat, const std::uint16_t* q,
                           std::uint64_t r0, std::uint64_t r1);
  /// Tiles [t0, t1) of the blocked transpose (tile index decodes via
  /// `tile_cols`), column-gather reads + contiguous stores.
  void (*transpose_tiles)(const void* in, void* out, std::uint64_t rows,
                          std::uint64_t cols, std::uint64_t tile,
                          std::uint64_t tile_cols, std::uint64_t t0, std::uint64_t t1);
  /// Fused multi-lane blocked transpose over the same tile range.
  void (*transpose_tiles_batched)(const void* const* srcs, void* const* dsts,
                                  std::uint64_t lanes, std::uint64_t rows,
                                  std::uint64_t cols, std::uint64_t tile,
                                  std::uint64_t tile_cols, std::uint64_t t0,
                                  std::uint64_t t1);
  /// b[i] = a[idx[i]] for i in [lo, hi) (conventional S-designated).
  void (*gather)(const void* a, void* b, const std::uint32_t* idx,
                 std::uint64_t lo, std::uint64_t hi);
  /// b[idx[i]] = a[i] for i in [lo, hi) (conventional D-designated).
  void (*scatter)(const void* a, void* b, const std::uint32_t* idx,
                  std::uint64_t lo, std::uint64_t hi);
};

}  // namespace simd

/// The kernel-ops table for the active variant and element width, or
/// nullptr when that combination runs scalar (scalar variant active,
/// width not 4/8 bytes, or the SIMD TUs were not built for this
/// target). The x86 gather/scatter instructions take signed 32-bit
/// element indices, so callers must additionally keep any *global*
/// index space below 2^31 elements (row passes index within a row and
/// are unaffected).
[[nodiscard]] const simd::KernelOps* active_kernel_ops(std::size_t elem_size) noexcept;

}  // namespace hmm::cpu
