#pragma once
/// \file kernels.hpp
/// \brief Host (CPU) kernels standing in for the paper's CUDA kernels.
///
/// On a GPU, the conventional algorithm's weakness is non-coalesced
/// global traffic; on a CPU the same weakness appears as random
/// cacheline/TLB misses, while the scheduled algorithm's three passes
/// stream memory row-by-row (each row fits in L1/L2). These kernels
/// keep the exact pass structure of the paper's five sequential kernel
/// launches so the wall-clock benchmarks compare the same algorithms.
///
/// Each kernel body is two tiers: the scalar loop (always present, the
/// differential-test oracle) and, for 4-/8-byte elements, an explicit
/// SIMD path reached through `active_kernel_ops` (dispatch.hpp). The
/// split point is the parallel_for chunk: the pool still owns the
/// fork/join, and each chunk either calls the variant's serial
/// sub-range function or falls into the scalar loop. x86
/// gather/scatter instructions index with *signed 32-bit* element
/// offsets, so kernels whose index space is the whole array
/// (gather/scatter/transpose) take the SIMD path only below 2^31
/// elements; the row passes index within one row (cols ≤ 65536) and
/// are always eligible.

#include <cstdint>
#include <span>

#include "cpu/dispatch.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace hmm::cpu {

namespace detail {

/// Global-index-space cap for the SIMD tiers: vpgather/vpscatter take
/// signed 32-bit element indices.
inline constexpr std::uint64_t kSimdIndexLimit = std::uint64_t{1} << 31;

template <class T>
const void* const* erase_srcs(std::span<const T* const> s) {
  return reinterpret_cast<const void* const*>(s.data());
}

template <class T>
void* const* erase_dsts(std::span<T* const> s) {
  return reinterpret_cast<void* const*>(s.data());
}

}  // namespace detail

/// D-designated conventional permutation: b[p[i]] = a[i] (casual writes).
template <class T>
void scatter(util::ThreadPool& pool, std::span<const T> a, std::span<T> b,
             std::span<const std::uint32_t> p) {
  HMM_CHECK(a.size() == b.size() && a.size() == p.size());
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  const bool simd = ops != nullptr && ops->scatter != nullptr &&
                    a.size() < detail::kSimdIndexLimit;
  pool.parallel_for_chunks(0, a.size(), [&](std::uint64_t lo, std::uint64_t hi) {
    if (simd) {
      ops->scatter(a.data(), b.data(), p.data(), lo, hi);
      return;
    }
    for (std::uint64_t i = lo; i < hi; ++i) b[p[i]] = a[i];
  });
}

/// S-designated conventional permutation: b[i] = a[pinv[i]] (casual reads).
template <class T>
void gather(util::ThreadPool& pool, std::span<const T> a, std::span<T> b,
            std::span<const std::uint32_t> pinv) {
  HMM_CHECK(a.size() == b.size() && a.size() == pinv.size());
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  const bool simd = ops != nullptr && ops->gather != nullptr &&
                    a.size() < detail::kSimdIndexLimit;
  pool.parallel_for_chunks(0, a.size(), [&](std::uint64_t lo, std::uint64_t hi) {
    if (simd) {
      ops->gather(a.data(), b.data(), pinv.data(), lo, hi);
      return;
    }
    for (std::uint64_t i = lo; i < hi; ++i) b[i] = a[pinv[i]];
  });
}

/// One row-wise permutation pass over a rows x cols row-major matrix,
/// using the per-row conflict-free schedules `phat`, `q` (flattened
/// row-major, `cols` entries per row): out[r][q(k)] = in[r][phat(k)],
/// i.e. out[r][g(j)] = in[r][j] for the row permutation g = q ∘ phat^-1.
/// Within a row q is a permutation, so the SIMD tier's scatter vectors
/// carry pairwise-distinct destination indices (DESIGN.md §2.1).
template <class T>
void row_wise_pass(util::ThreadPool& pool, std::span<const T> in, std::span<T> out,
                   std::uint64_t rows, std::uint64_t cols,
                   std::span<const std::uint16_t> phat, std::span<const std::uint16_t> q) {
  HMM_CHECK(in.size() == rows * cols && out.size() == rows * cols);
  HMM_CHECK(phat.size() == rows * cols && q.size() == rows * cols);
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  pool.parallel_for_chunks(0, rows, [&](std::uint64_t r0, std::uint64_t r1) {
    if (ops != nullptr && ops->row_pass != nullptr) {
      ops->row_pass(in.data(), out.data(), cols, phat.data(), q.data(), r0, r1);
      return;
    }
    for (std::uint64_t r = r0; r < r1; ++r) {
      const T* src = in.data() + r * cols;
      T* dst = out.data() + r * cols;
      const std::uint16_t* ph = phat.data() + r * cols;
      const std::uint16_t* qq = q.data() + r * cols;
      for (std::uint64_t k = 0; k < cols; ++k) dst[qq[k]] = src[ph[k]];
    }
  });
}

/// Row-wise pass applying the row permutations directly (no schedule
/// arrays): out[r][g[r][j]] = in[r][j]. Used by the ablation bench to
/// measure the overhead of reading schedules. Deliberately scalar-only:
/// it is a baseline, not a serving path.
template <class T>
void row_wise_pass_direct(util::ThreadPool& pool, std::span<const T> in, std::span<T> out,
                          std::uint64_t rows, std::uint64_t cols,
                          std::span<const std::uint16_t> g) {
  HMM_CHECK(in.size() == rows * cols && out.size() == rows * cols && g.size() == rows * cols);
  pool.parallel_for_chunks(0, rows, [&](std::uint64_t r0, std::uint64_t r1) {
    for (std::uint64_t r = r0; r < r1; ++r) {
      const T* src = in.data() + r * cols;
      T* dst = out.data() + r * cols;
      const std::uint16_t* gr = g.data() + r * cols;
      for (std::uint64_t j = 0; j < cols; ++j) dst[gr[j]] = src[j];
    }
  });
}

/// Fused row-wise pass over `srcs.size()` independent (src, dst) matrix
/// pairs that share one (phat, q) schedule: the batched serving path.
/// One fork/join covers every pair, and within a row the lane loop is
/// innermost so each schedule entry (phat[k], q[k]) is read and decoded
/// ONCE for the whole batch instead of once per request — the
/// schedule-read amortization is the batching lemma's saving, and it is
/// why a fused sweep beats L sequential sweeps even on one core. The
/// per-row working set is L * 2 rows of T plus one row of each schedule
/// array, which stays L1-resident for the row sizes the plan produces.
/// The SIMD tier keeps the same structure one level up: the widened
/// index vectors are decoded once per step and reused by every lane.
template <class T>
void row_wise_pass_batched(util::ThreadPool& pool, std::span<const T* const> srcs,
                           std::span<T* const> dsts, std::uint64_t rows, std::uint64_t cols,
                           std::span<const std::uint16_t> phat,
                           std::span<const std::uint16_t> q) {
  HMM_CHECK(srcs.size() == dsts.size());
  HMM_CHECK(phat.size() == rows * cols && q.size() == rows * cols);
  const std::uint64_t lanes = srcs.size();
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  pool.parallel_for_chunks(0, rows, [&](std::uint64_t r0, std::uint64_t r1) {
    if (ops != nullptr && ops->row_pass_batched != nullptr) {
      ops->row_pass_batched(detail::erase_srcs(srcs), detail::erase_dsts(dsts), lanes,
                            cols, phat.data(), q.data(), r0, r1);
      return;
    }
    for (std::uint64_t r = r0; r < r1; ++r) {
      const std::uint16_t* ph = phat.data() + r * cols;
      const std::uint16_t* qq = q.data() + r * cols;
      const std::uint64_t rc = r * cols;
      // Quads of lanes: the inner loop has a fixed trip count (fully
      // unrolled, lane pointers pinned in registers), and each schedule
      // entry is read once per quad instead of once per lane.
      std::uint64_t l = 0;
      for (; l + 4 <= lanes; l += 4) {
        const T* s0 = srcs[l] + rc;
        const T* s1 = srcs[l + 1] + rc;
        const T* s2 = srcs[l + 2] + rc;
        const T* s3 = srcs[l + 3] + rc;
        T* d0 = dsts[l] + rc;
        T* d1 = dsts[l + 1] + rc;
        T* d2 = dsts[l + 2] + rc;
        T* d3 = dsts[l + 3] + rc;
        for (std::uint64_t k = 0; k < cols; ++k) {
          const std::uint64_t s = ph[k];
          const std::uint64_t d = qq[k];
          d0[d] = s0[s];
          d1[d] = s1[s];
          d2[d] = s2[s];
          d3[d] = s3[s];
        }
      }
      for (; l < lanes; ++l) {
        const T* src = srcs[l] + rc;
        T* dst = dsts[l] + rc;
        for (std::uint64_t k = 0; k < cols; ++k) dst[qq[k]] = src[ph[k]];
      }
    }
  });
}

/// Blocked matrix transpose: out (cols x rows) = in (rows x cols)^T.
/// `tile` plays the role of the paper's w x w shared-memory tile. The
/// SIMD tier reads each output row as a strided column gather and
/// stores it contiguously, so it needs the whole matrix under the
/// 32-bit index cap.
template <class T>
void transpose_blocked(util::ThreadPool& pool, std::span<const T> in, std::span<T> out,
                       std::uint64_t rows, std::uint64_t cols, std::uint64_t tile = 32) {
  HMM_CHECK(in.size() == rows * cols && out.size() == rows * cols);
  HMM_CHECK(tile > 0);
  const std::uint64_t tile_rows = (rows + tile - 1) / tile;
  const std::uint64_t tile_cols = (cols + tile - 1) / tile;
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  const bool simd = ops != nullptr && ops->transpose_tiles != nullptr &&
                    rows * cols < detail::kSimdIndexLimit;
  pool.parallel_for_chunks(0, tile_rows * tile_cols, [&](std::uint64_t t0, std::uint64_t t1) {
    if (simd) {
      ops->transpose_tiles(in.data(), out.data(), rows, cols, tile, tile_cols, t0, t1);
      return;
    }
    for (std::uint64_t t = t0; t < t1; ++t) {
      const std::uint64_t tr = (t / tile_cols) * tile;
      const std::uint64_t tc = (t % tile_cols) * tile;
      const std::uint64_t rmax = std::min(rows, tr + tile);
      const std::uint64_t cmax = std::min(cols, tc + tile);
      for (std::uint64_t i = tr; i < rmax; ++i) {
        for (std::uint64_t j = tc; j < cmax; ++j) {
          out[j * rows + i] = in[i * cols + j];
        }
      }
    }
  });
}

/// Fused blocked transpose over independent (src, dst) pairs of equal
/// shape: the batched counterpart of `transpose_blocked`, one fork/join
/// for the whole batch (unit index = (lane, tile), tiles contiguous
/// per lane).
template <class T>
void transpose_blocked_batched(util::ThreadPool& pool, std::span<const T* const> srcs,
                               std::span<T* const> dsts, std::uint64_t rows,
                               std::uint64_t cols, std::uint64_t tile = 16) {
  HMM_CHECK(srcs.size() == dsts.size());
  HMM_CHECK(tile > 0);
  const std::uint64_t tile_rows = (rows + tile - 1) / tile;
  const std::uint64_t tile_cols = (cols + tile - 1) / tile;
  const std::uint64_t tiles = tile_rows * tile_cols;
  const std::uint64_t lanes = srcs.size();
  const simd::KernelOps* ops = active_kernel_ops(sizeof(T));
  const bool simd = ops != nullptr && ops->transpose_tiles_batched != nullptr &&
                    rows * cols < detail::kSimdIndexLimit;
  // The default tile is half the single-matrix transpose's: four lanes'
  // in+out tiles must fit L1 together for the quad path below.
  pool.parallel_for_chunks(0, tiles, [&](std::uint64_t t0, std::uint64_t t1) {
    if (simd) {
      ops->transpose_tiles_batched(detail::erase_srcs(srcs), detail::erase_dsts(dsts),
                                   lanes, rows, cols, tile, tile_cols, t0, t1);
      return;
    }
    for (std::uint64_t t = t0; t < t1; ++t) {
      const std::uint64_t tr = (t / tile_cols) * tile;
      const std::uint64_t tc = (t % tile_cols) * tile;
      const std::uint64_t rmax = std::min(rows, tr + tile);
      const std::uint64_t cmax = std::min(cols, tc + tile);
      // Quads of lanes share every index computation; the inner lane
      // unroll keeps the four pointers in registers.
      std::uint64_t l = 0;
      for (; l + 4 <= lanes; l += 4) {
        const T* i0 = srcs[l];
        const T* i1 = srcs[l + 1];
        const T* i2 = srcs[l + 2];
        const T* i3 = srcs[l + 3];
        T* o0 = dsts[l];
        T* o1 = dsts[l + 1];
        T* o2 = dsts[l + 2];
        T* o3 = dsts[l + 3];
        for (std::uint64_t i = tr; i < rmax; ++i) {
          for (std::uint64_t j = tc; j < cmax; ++j) {
            const std::uint64_t from = i * cols + j;
            const std::uint64_t to = j * rows + i;
            o0[to] = i0[from];
            o1[to] = i1[from];
            o2[to] = i2[from];
            o3[to] = i3[from];
          }
        }
      }
      for (; l < lanes; ++l) {
        const T* in = srcs[l];
        T* out = dsts[l];
        for (std::uint64_t i = tr; i < rmax; ++i) {
          for (std::uint64_t j = tc; j < cmax; ++j) {
            out[j * rows + i] = in[i * cols + j];
          }
        }
      }
    }
  });
}

/// Naive (row-streaming read, strided write) transpose for the tile
/// ablation baseline. Deliberately scalar-only.
template <class T>
void transpose_naive(util::ThreadPool& pool, std::span<const T> in, std::span<T> out,
                     std::uint64_t rows, std::uint64_t cols) {
  HMM_CHECK(in.size() == rows * cols && out.size() == rows * cols);
  pool.parallel_for_chunks(0, rows, [&](std::uint64_t r0, std::uint64_t r1) {
    for (std::uint64_t i = r0; i < r1; ++i) {
      for (std::uint64_t j = 0; j < cols; ++j) out[j * rows + i] = in[i * cols + j];
    }
  });
}

}  // namespace hmm::cpu
