#include "cpu/dispatch.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hmm::cpu {

// Tables defined by the per-variant translation units (kernels_avx2.cpp
// and kernels_avx512.cpp, compiled with the matching -m flags). The
// build defines HMM_HAVE_*_KERNELS only when the TU is compiled in, so
// a non-x86 or old-compiler build degrades to scalar at compile time.
#if defined(HMM_HAVE_AVX2_KERNELS)
namespace avx2 {
extern const simd::KernelOps kOps4;
extern const simd::KernelOps kOps8;
}  // namespace avx2
#endif
#if defined(HMM_HAVE_AVX512_KERNELS)
namespace avx512 {
extern const simd::KernelOps kOps4;
extern const simd::KernelOps kOps8;
}  // namespace avx512
#endif

namespace {

CpuFeatures detect_features() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // __builtin_cpu_supports folds in the OS XSAVE state checks, so a
  // kernel that disabled AVX-512 reports unsupported here.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.avx512 = __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512dq") != 0;
#endif
#if !defined(HMM_HAVE_AVX2_KERNELS)
  f.avx2 = false;
#endif
#if !defined(HMM_HAVE_AVX512_KERNELS)
  f.avx512 = false;
#endif
  return f;
}

/// Clamp a requested variant to what the CPU + build can run.
KernelVariant clamp_supported(KernelVariant v) noexcept {
  const CpuFeatures& f = cpu_features();
  if (v == KernelVariant::kAvx512 && !f.avx512) v = KernelVariant::kAvx2;
  if (v == KernelVariant::kAvx2 && !f.avx2) v = KernelVariant::kScalar;
  return v;
}

/// First-use resolution: hardware cap, then the env override.
KernelVariant resolve_variant() noexcept {
  KernelVariant v = best_kernel_variant();
  const char* env = std::getenv("HMM_KERNEL_VARIANT");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    KernelVariant want = v;
    if (std::strcmp(env, "scalar") == 0) {
      want = KernelVariant::kScalar;
    } else if (std::strcmp(env, "avx2") == 0) {
      want = KernelVariant::kAvx2;
    } else if (std::strcmp(env, "avx512") == 0) {
      want = KernelVariant::kAvx512;
    } else {
      std::fprintf(stderr,
                   "hmm: HMM_KERNEL_VARIANT=%s not recognized "
                   "(scalar|avx2|avx512|auto); using %.*s\n",
                   env, static_cast<int>(to_string(v).size()), to_string(v).data());
      return v;
    }
    const KernelVariant got = clamp_supported(want);
    if (got != want) {
      std::fprintf(stderr,
                   "hmm: HMM_KERNEL_VARIANT=%s unsupported on this CPU/build; "
                   "degrading to %.*s\n",
                   env, static_cast<int>(to_string(got).size()), to_string(got).data());
    }
    v = got;
  }
  return v;
}

/// -1 = not yet resolved; otherwise the int value of the variant.
std::atomic<int> g_variant{-1};

}  // namespace

std::string_view to_string(KernelVariant v) noexcept {
  switch (v) {
    case KernelVariant::kScalar:
      return "scalar";
    case KernelVariant::kAvx2:
      return "avx2";
    case KernelVariant::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const CpuFeatures& cpu_features() noexcept {
  static const CpuFeatures features = detect_features();
  return features;
}

KernelVariant best_kernel_variant() noexcept {
  const CpuFeatures& f = cpu_features();
  if (f.avx512) return KernelVariant::kAvx512;
  if (f.avx2) return KernelVariant::kAvx2;
  return KernelVariant::kScalar;
}

KernelVariant kernel_variant() noexcept {
  int v = g_variant.load(std::memory_order_relaxed);
  if (v < 0) {
    // Resolution is deterministic, so a race just repeats the work.
    v = static_cast<int>(resolve_variant());
    g_variant.store(v, std::memory_order_relaxed);
  }
  return static_cast<KernelVariant>(v);
}

KernelVariant set_kernel_variant(KernelVariant v) noexcept {
  const KernelVariant got = clamp_supported(v);
  g_variant.store(static_cast<int>(got), std::memory_order_relaxed);
  return got;
}

const simd::KernelOps* active_kernel_ops(std::size_t elem_size) noexcept {
  const KernelVariant v = kernel_variant();
  if (v == KernelVariant::kScalar) return nullptr;
#if defined(HMM_HAVE_AVX512_KERNELS)
  if (v == KernelVariant::kAvx512) {
    if (elem_size == 4) return &avx512::kOps4;
    if (elem_size == 8) return &avx512::kOps8;
    return nullptr;
  }
#endif
#if defined(HMM_HAVE_AVX2_KERNELS)
  if (v == KernelVariant::kAvx2) {
    if (elem_size == 4) return &avx2::kOps4;
    if (elem_size == 8) return &avx2::kOps8;
    return nullptr;
  }
#endif
  (void)elem_size;
  return nullptr;
}

}  // namespace hmm::cpu
