/// \file kernels_avx2.cpp
/// \brief AVX2 tier of the kernel dispatch (compiled with -mavx2).
///
/// AVX2 has gathers (vpgatherdd/vpgatherqq) but no scatter, so the
/// shape of every kernel here is: widen eight uint16 schedule entries
/// to 32-bit lanes with vpmovzxwd, gather the source elements in one
/// instruction, then store through the destination indices with scalar
/// stores (the extraction is the price of the missing scatter — the
/// AVX-512 tier removes it). The conventional `scatter` slot is null
/// for the same reason: contiguous reads + indexed writes gain nothing
/// without a scatter instruction, so it stays on the scalar loop.
///
/// Software prefetch: the schedule arrays are the one stream the
/// hardware prefetcher cannot see past — each row starts a new stream
/// of (p̂, q) entries, and the gathers in between evict aggressively —
/// so each index step prefetches the entries `kPrefetchAhead` bytes
/// ahead of the cursor.

#include <immintrin.h>

#include <cstdint>

#include "cpu/dispatch.hpp"

namespace hmm::cpu::avx2 {
namespace {

/// Prefetch distance into the schedule arrays, in uint16 entries
/// (256 entries = 512 bytes = 8 cache lines ahead).
constexpr std::uint64_t kPrefetchAhead = 256;

inline void prefetch_schedules(const std::uint16_t* ph, const std::uint16_t* qq,
                               std::uint64_t k, std::uint64_t cols) {
  if (k + kPrefetchAhead < cols) {
    _mm_prefetch(reinterpret_cast<const char*>(ph + k + kPrefetchAhead), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(qq + k + kPrefetchAhead), _MM_HINT_T0);
  }
}

/// Eight uint16 schedule entries widened to eight 32-bit gather lanes.
inline __m256i load_idx8(const std::uint16_t* p) {
  return _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

/// Four uint16 schedule entries widened to four 32-bit gather lanes.
inline __m128i load_idx4(const std::uint16_t* p) {
  return _mm_cvtepu16_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}

// ---- row-wise pass ---------------------------------------------------

void row_pass_u32(const void* in, void* out, std::uint64_t cols,
                  const std::uint16_t* phat, const std::uint16_t* q,
                  std::uint64_t r0, std::uint64_t r1) {
  const auto* in_base = static_cast<const std::uint32_t*>(in);
  auto* out_base = static_cast<std::uint32_t*>(out);
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint32_t* src = in_base + r * cols;
    std::uint32_t* dst = out_base + r * cols;
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    std::uint64_t k = 0;
    for (; k + 8 <= cols; k += 8) {
      prefetch_schedules(ph, qq, k, cols);
      const __m256i v =
          _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), load_idx8(ph + k), 4);
      alignas(32) std::uint32_t vals[8];
      _mm256_store_si256(reinterpret_cast<__m256i*>(vals), v);
      dst[qq[k + 0]] = vals[0];
      dst[qq[k + 1]] = vals[1];
      dst[qq[k + 2]] = vals[2];
      dst[qq[k + 3]] = vals[3];
      dst[qq[k + 4]] = vals[4];
      dst[qq[k + 5]] = vals[5];
      dst[qq[k + 6]] = vals[6];
      dst[qq[k + 7]] = vals[7];
    }
    for (; k < cols; ++k) dst[qq[k]] = src[ph[k]];
  }
}

void row_pass_u64(const void* in, void* out, std::uint64_t cols,
                  const std::uint16_t* phat, const std::uint16_t* q,
                  std::uint64_t r0, std::uint64_t r1) {
  const auto* in_base = static_cast<const std::uint64_t*>(in);
  auto* out_base = static_cast<std::uint64_t*>(out);
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint64_t* src = in_base + r * cols;
    std::uint64_t* dst = out_base + r * cols;
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    std::uint64_t k = 0;
    for (; k + 4 <= cols; k += 4) {
      prefetch_schedules(ph, qq, k, cols);
      const __m256i v = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(src), load_idx4(ph + k), 8);
      alignas(32) std::uint64_t vals[4];
      _mm256_store_si256(reinterpret_cast<__m256i*>(vals), v);
      dst[qq[k + 0]] = vals[0];
      dst[qq[k + 1]] = vals[1];
      dst[qq[k + 2]] = vals[2];
      dst[qq[k + 3]] = vals[3];
    }
    for (; k < cols; ++k) dst[qq[k]] = src[ph[k]];
  }
}

// ---- batched row-wise pass -------------------------------------------
//
// One schedule decode (the widened index vector + the q entries) is
// shared by every lane of the step — the SIMD image of the batching
// lemma's schedule-read amortization.

void row_pass_batched_u32(const void* const* srcs, void* const* dsts,
                          std::uint64_t lanes, std::uint64_t cols,
                          const std::uint16_t* phat, const std::uint16_t* q,
                          std::uint64_t r0, std::uint64_t r1) {
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    const std::uint64_t rc = r * cols;
    std::uint64_t k = 0;
    for (; k + 8 <= cols; k += 8) {
      prefetch_schedules(ph, qq, k, cols);
      const __m256i idx = load_idx8(ph + k);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint32_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint32_t*>(dsts[l]) + rc;
        const __m256i v =
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), idx, 4);
        alignas(32) std::uint32_t vals[8];
        _mm256_store_si256(reinterpret_cast<__m256i*>(vals), v);
        dst[qq[k + 0]] = vals[0];
        dst[qq[k + 1]] = vals[1];
        dst[qq[k + 2]] = vals[2];
        dst[qq[k + 3]] = vals[3];
        dst[qq[k + 4]] = vals[4];
        dst[qq[k + 5]] = vals[5];
        dst[qq[k + 6]] = vals[6];
        dst[qq[k + 7]] = vals[7];
      }
    }
    for (; k < cols; ++k) {
      const std::uint64_t s = ph[k];
      const std::uint64_t d = qq[k];
      for (std::uint64_t l = 0; l < lanes; ++l) {
        static_cast<std::uint32_t*>(dsts[l])[rc + d] =
            static_cast<const std::uint32_t*>(srcs[l])[rc + s];
      }
    }
  }
}

void row_pass_batched_u64(const void* const* srcs, void* const* dsts,
                          std::uint64_t lanes, std::uint64_t cols,
                          const std::uint16_t* phat, const std::uint16_t* q,
                          std::uint64_t r0, std::uint64_t r1) {
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    const std::uint64_t rc = r * cols;
    std::uint64_t k = 0;
    for (; k + 4 <= cols; k += 4) {
      prefetch_schedules(ph, qq, k, cols);
      const __m128i idx = load_idx4(ph + k);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint64_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint64_t*>(dsts[l]) + rc;
        const __m256i v =
            _mm256_i32gather_epi64(reinterpret_cast<const long long*>(src), idx, 8);
        alignas(32) std::uint64_t vals[4];
        _mm256_store_si256(reinterpret_cast<__m256i*>(vals), v);
        dst[qq[k + 0]] = vals[0];
        dst[qq[k + 1]] = vals[1];
        dst[qq[k + 2]] = vals[2];
        dst[qq[k + 3]] = vals[3];
      }
    }
    for (; k < cols; ++k) {
      const std::uint64_t s = ph[k];
      const std::uint64_t d = qq[k];
      for (std::uint64_t l = 0; l < lanes; ++l) {
        static_cast<std::uint64_t*>(dsts[l])[rc + d] =
            static_cast<const std::uint64_t*>(srcs[l])[rc + s];
      }
    }
  }
}

// ---- blocked transpose -----------------------------------------------
//
// Column-gather transpose: output row j of the tile is column j of the
// input, i.e. a strided gather with index vector {0, cols, 2*cols, ...}
// — then one contiguous store. The caller guarantees rows*cols < 2^31
// so the 32-bit element indices cannot wrap.

void transpose_tiles_u32(const void* in, void* out, std::uint64_t rows,
                         std::uint64_t cols, std::uint64_t tile,
                         std::uint64_t tile_cols, std::uint64_t t0, std::uint64_t t1) {
  const auto* in_base = static_cast<const std::uint32_t*>(in);
  auto* out_base = static_cast<std::uint32_t*>(out);
  const __m256i stride = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint32_t* dst = out_base + j * rows;
      std::uint64_t i = tr;
      for (; i + 8 <= rmax; i += 8) {
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        const __m256i v =
            _mm256_i32gather_epi32(reinterpret_cast<const int*>(in_base), idx, 4);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      for (; i < rmax; ++i) dst[i] = in_base[i * cols + j];
    }
  }
}

void transpose_tiles_u64(const void* in, void* out, std::uint64_t rows,
                         std::uint64_t cols, std::uint64_t tile,
                         std::uint64_t tile_cols, std::uint64_t t0, std::uint64_t t1) {
  const auto* in_base = static_cast<const std::uint64_t*>(in);
  auto* out_base = static_cast<std::uint64_t*>(out);
  const __m128i stride = _mm_mullo_epi32(_mm_setr_epi32(0, 1, 2, 3),
                                         _mm_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t* dst = out_base + j * rows;
      std::uint64_t i = tr;
      for (; i + 4 <= rmax; i += 4) {
        const __m128i idx =
            _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i * cols + j)), stride);
        const __m256i v = _mm256_i32gather_epi64(
            reinterpret_cast<const long long*>(in_base), idx, 8);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
      }
      for (; i < rmax; ++i) dst[i] = in_base[i * cols + j];
    }
  }
}

void transpose_tiles_batched_u32(const void* const* srcs, void* const* dsts,
                                 std::uint64_t lanes, std::uint64_t rows,
                                 std::uint64_t cols, std::uint64_t tile,
                                 std::uint64_t tile_cols, std::uint64_t t0,
                                 std::uint64_t t1) {
  const __m256i stride = _mm256_mullo_epi32(
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7),
      _mm256_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t i = tr;
      for (; i + 8 <= rmax; i += 8) {
        // One index vector serves every lane of the step.
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint32_t*>(srcs[l]);
          auto* dst = static_cast<std::uint32_t*>(dsts[l]) + j * rows;
          const __m256i v =
              _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), idx, 4);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
        }
      }
      for (; i < rmax; ++i) {
        for (std::uint64_t l = 0; l < lanes; ++l) {
          static_cast<std::uint32_t*>(dsts[l])[j * rows + i] =
              static_cast<const std::uint32_t*>(srcs[l])[i * cols + j];
        }
      }
    }
  }
}

void transpose_tiles_batched_u64(const void* const* srcs, void* const* dsts,
                                 std::uint64_t lanes, std::uint64_t rows,
                                 std::uint64_t cols, std::uint64_t tile,
                                 std::uint64_t tile_cols, std::uint64_t t0,
                                 std::uint64_t t1) {
  const __m128i stride = _mm_mullo_epi32(_mm_setr_epi32(0, 1, 2, 3),
                                         _mm_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t i = tr;
      for (; i + 4 <= rmax; i += 4) {
        const __m128i idx =
            _mm_add_epi32(_mm_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint64_t*>(srcs[l]);
          auto* dst = static_cast<std::uint64_t*>(dsts[l]) + j * rows;
          const __m256i v = _mm256_i32gather_epi64(
              reinterpret_cast<const long long*>(src), idx, 8);
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
        }
      }
      for (; i < rmax; ++i) {
        for (std::uint64_t l = 0; l < lanes; ++l) {
          static_cast<std::uint64_t*>(dsts[l])[j * rows + i] =
              static_cast<const std::uint64_t*>(srcs[l])[i * cols + j];
        }
      }
    }
  }
}

// ---- conventional gather ---------------------------------------------

void gather_u32(const void* a, void* b, const std::uint32_t* idx,
                std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint32_t*>(a);
  auto* dst = static_cast<std::uint32_t*>(b);
  std::uint64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i vi =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m256i v = _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), vi, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < hi; ++i) dst[i] = src[idx[i]];
}

void gather_u64(const void* a, void* b, const std::uint32_t* idx,
                std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint64_t*>(a);
  auto* dst = static_cast<std::uint64_t*>(b);
  std::uint64_t i = lo;
  for (; i + 4 <= hi; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256i v =
        _mm256_i32gather_epi64(reinterpret_cast<const long long*>(src), vi, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
  for (; i < hi; ++i) dst[i] = src[idx[i]];
}

}  // namespace

// The AVX2 tables: scatter stays null (no scatter instruction below
// AVX-512), which routes the conventional D-designated kernel to the
// scalar loop.
extern const simd::KernelOps kOps4 = {
    row_pass_u32,          row_pass_batched_u32, transpose_tiles_u32,
    transpose_tiles_batched_u32, gather_u32,     nullptr,
};
extern const simd::KernelOps kOps8 = {
    row_pass_u64,          row_pass_batched_u64, transpose_tiles_u64,
    transpose_tiles_batched_u64, gather_u64,     nullptr,
};

}  // namespace hmm::cpu::avx2
