/// \file kernels_avx512.cpp
/// \brief AVX-512 tier of the kernel dispatch (compiled with
/// -mavx512f -mavx512bw -mavx512vl -mavx512dq).
///
/// With vpscatter available, every kernel becomes a straight-line
/// gather→scatter pipeline: widen sixteen uint16 schedule entries to
/// 32-bit lanes, vpgatherdd the source elements, vpscatterdd them to
/// the destination indices — no scalar extraction anywhere in the main
/// loop. The scatter is well-defined because q is a permutation within
/// each row: the destination indices inside one scatter vector are
/// pairwise distinct, the SIMD-lane image of the schedules'
/// bank-conflict-freedom (DESIGN.md §2.1). The conventional `scatter`
/// slot (absent in the AVX2 tier) is populated here for the same
/// reason: p is a global permutation, so indices are globally unique.
///
/// Masked tails: the row passes and conventional kernels finish
/// sub-vector remainders with masked gathers/scatters instead of
/// scalar loops — the same code path as the body, just with the top
/// lanes switched off.

#include <immintrin.h>

#include <cstdint>

#include "cpu/dispatch.hpp"

namespace hmm::cpu::avx512 {
namespace {

/// Prefetch distance into the schedule arrays, in uint16 entries
/// (256 entries = 512 bytes = 8 cache lines ahead).
constexpr std::uint64_t kPrefetchAhead = 256;

inline void prefetch_schedules(const std::uint16_t* ph, const std::uint16_t* qq,
                               std::uint64_t k, std::uint64_t cols) {
  if (k + kPrefetchAhead < cols) {
    _mm_prefetch(reinterpret_cast<const char*>(ph + k + kPrefetchAhead), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(qq + k + kPrefetchAhead), _MM_HINT_T0);
  }
}

/// Sixteen uint16 schedule entries widened to sixteen 32-bit lanes.
inline __m512i load_idx16(const std::uint16_t* p) {
  return _mm512_cvtepu16_epi32(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
}

/// Masked variant of load_idx16 for the tail (inactive lanes zero).
inline __m512i load_idx16_masked(const std::uint16_t* p, __mmask16 m) {
  return _mm512_cvtepu16_epi32(_mm256_maskz_loadu_epi16(m, p));
}

/// Eight uint16 schedule entries widened to eight 32-bit lanes.
inline __m256i load_idx8(const std::uint16_t* p) {
  return _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

inline __m256i load_idx8_masked(const std::uint16_t* p, __mmask8 m) {
  return _mm256_cvtepu16_epi32(_mm_maskz_loadu_epi16(m, p));
}

// ---- row-wise pass ---------------------------------------------------

void row_pass_u32(const void* in, void* out, std::uint64_t cols,
                  const std::uint16_t* phat, const std::uint16_t* q,
                  std::uint64_t r0, std::uint64_t r1) {
  const auto* in_base = static_cast<const std::uint32_t*>(in);
  auto* out_base = static_cast<std::uint32_t*>(out);
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint32_t* src = in_base + r * cols;
    std::uint32_t* dst = out_base + r * cols;
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    std::uint64_t k = 0;
    for (; k + 16 <= cols; k += 16) {
      prefetch_schedules(ph, qq, k, cols);
      const __m512i v = _mm512_i32gather_epi32(load_idx16(ph + k), src, 4);
      _mm512_i32scatter_epi32(dst, load_idx16(qq + k), v, 4);
    }
    if (k < cols) {
      const __mmask16 m = static_cast<__mmask16>((1u << (cols - k)) - 1u);
      const __m512i v = _mm512_mask_i32gather_epi32(
          _mm512_setzero_si512(), m, load_idx16_masked(ph + k, m), src, 4);
      _mm512_mask_i32scatter_epi32(dst, m, load_idx16_masked(qq + k, m), v, 4);
    }
  }
}

void row_pass_u64(const void* in, void* out, std::uint64_t cols,
                  const std::uint16_t* phat, const std::uint16_t* q,
                  std::uint64_t r0, std::uint64_t r1) {
  const auto* in_base = static_cast<const std::uint64_t*>(in);
  auto* out_base = static_cast<std::uint64_t*>(out);
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint64_t* src = in_base + r * cols;
    std::uint64_t* dst = out_base + r * cols;
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    std::uint64_t k = 0;
    for (; k + 8 <= cols; k += 8) {
      prefetch_schedules(ph, qq, k, cols);
      const __m512i v = _mm512_i32gather_epi64(load_idx8(ph + k), src, 8);
      _mm512_i32scatter_epi64(dst, load_idx8(qq + k), v, 8);
    }
    if (k < cols) {
      const __mmask8 m = static_cast<__mmask8>((1u << (cols - k)) - 1u);
      const __m512i v = _mm512_mask_i32gather_epi64(
          _mm512_setzero_si512(), m, load_idx8_masked(ph + k, m), src, 8);
      _mm512_mask_i32scatter_epi64(dst, m, load_idx8_masked(qq + k, m), v, 8);
    }
  }
}

// ---- batched row-wise pass -------------------------------------------
//
// The widened (p̂, q) index vectors are decoded once per step and
// reused by every lane — the SIMD image of the batching lemma's
// schedule-read amortization.

void row_pass_batched_u32(const void* const* srcs, void* const* dsts,
                          std::uint64_t lanes, std::uint64_t cols,
                          const std::uint16_t* phat, const std::uint16_t* q,
                          std::uint64_t r0, std::uint64_t r1) {
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    const std::uint64_t rc = r * cols;
    std::uint64_t k = 0;
    for (; k + 16 <= cols; k += 16) {
      prefetch_schedules(ph, qq, k, cols);
      const __m512i gi = load_idx16(ph + k);
      const __m512i si = load_idx16(qq + k);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint32_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint32_t*>(dsts[l]) + rc;
        _mm512_i32scatter_epi32(dst, si, _mm512_i32gather_epi32(gi, src, 4), 4);
      }
    }
    if (k < cols) {
      const __mmask16 m = static_cast<__mmask16>((1u << (cols - k)) - 1u);
      const __m512i gi = load_idx16_masked(ph + k, m);
      const __m512i si = load_idx16_masked(qq + k, m);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint32_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint32_t*>(dsts[l]) + rc;
        const __m512i v =
            _mm512_mask_i32gather_epi32(_mm512_setzero_si512(), m, gi, src, 4);
        _mm512_mask_i32scatter_epi32(dst, m, si, v, 4);
      }
    }
  }
}

void row_pass_batched_u64(const void* const* srcs, void* const* dsts,
                          std::uint64_t lanes, std::uint64_t cols,
                          const std::uint16_t* phat, const std::uint16_t* q,
                          std::uint64_t r0, std::uint64_t r1) {
  for (std::uint64_t r = r0; r < r1; ++r) {
    const std::uint16_t* ph = phat + r * cols;
    const std::uint16_t* qq = q + r * cols;
    const std::uint64_t rc = r * cols;
    std::uint64_t k = 0;
    for (; k + 8 <= cols; k += 8) {
      prefetch_schedules(ph, qq, k, cols);
      const __m256i gi = load_idx8(ph + k);
      const __m256i si = load_idx8(qq + k);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint64_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint64_t*>(dsts[l]) + rc;
        _mm512_i32scatter_epi64(dst, si, _mm512_i32gather_epi64(gi, src, 8), 8);
      }
    }
    if (k < cols) {
      const __mmask8 m = static_cast<__mmask8>((1u << (cols - k)) - 1u);
      const __m256i gi = load_idx8_masked(ph + k, m);
      const __m256i si = load_idx8_masked(qq + k, m);
      for (std::uint64_t l = 0; l < lanes; ++l) {
        const auto* src = static_cast<const std::uint64_t*>(srcs[l]) + rc;
        auto* dst = static_cast<std::uint64_t*>(dsts[l]) + rc;
        const __m512i v =
            _mm512_mask_i32gather_epi64(_mm512_setzero_si512(), m, gi, src, 8);
        _mm512_mask_i32scatter_epi64(dst, m, si, v, 8);
      }
    }
  }
}

// ---- blocked transpose -----------------------------------------------
//
// Column-gather transpose: output row j of the tile is column j of the
// input — a strided gather with index vector {0, cols, 2*cols, ...},
// then one contiguous store. The caller guarantees rows*cols < 2^31 so
// the 32-bit element indices cannot wrap.

void transpose_tiles_u32(const void* in, void* out, std::uint64_t rows,
                         std::uint64_t cols, std::uint64_t tile,
                         std::uint64_t tile_cols, std::uint64_t t0, std::uint64_t t1) {
  const auto* in_base = static_cast<const std::uint32_t*>(in);
  auto* out_base = static_cast<std::uint32_t*>(out);
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                         13, 14, 15);
  const __m512i stride =
      _mm512_mullo_epi32(iota, _mm512_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint32_t* dst = out_base + j * rows;
      std::uint64_t i = tr;
      for (; i + 16 <= rmax; i += 16) {
        const __m512i idx =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(i * cols + j)), stride);
        _mm512_storeu_si512(dst + i, _mm512_i32gather_epi32(idx, in_base, 4));
      }
      if (i < rmax) {
        const __mmask16 m = static_cast<__mmask16>((1u << (rmax - i)) - 1u);
        const __m512i idx =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(i * cols + j)), stride);
        const __m512i v =
            _mm512_mask_i32gather_epi32(_mm512_setzero_si512(), m, idx, in_base, 4);
        _mm512_mask_storeu_epi32(dst + i, m, v);
      }
    }
  }
}

void transpose_tiles_u64(const void* in, void* out, std::uint64_t rows,
                         std::uint64_t cols, std::uint64_t tile,
                         std::uint64_t tile_cols, std::uint64_t t0, std::uint64_t t1) {
  const auto* in_base = static_cast<const std::uint64_t*>(in);
  auto* out_base = static_cast<std::uint64_t*>(out);
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i stride =
      _mm256_mullo_epi32(iota, _mm256_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t* dst = out_base + j * rows;
      std::uint64_t i = tr;
      for (; i + 8 <= rmax; i += 8) {
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        _mm512_storeu_si512(dst + i, _mm512_i32gather_epi64(idx, in_base, 8));
      }
      if (i < rmax) {
        const __mmask8 m = static_cast<__mmask8>((1u << (rmax - i)) - 1u);
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        const __m512i v =
            _mm512_mask_i32gather_epi64(_mm512_setzero_si512(), m, idx, in_base, 8);
        _mm512_mask_storeu_epi64(dst + i, m, v);
      }
    }
  }
}

void transpose_tiles_batched_u32(const void* const* srcs, void* const* dsts,
                                 std::uint64_t lanes, std::uint64_t rows,
                                 std::uint64_t cols, std::uint64_t tile,
                                 std::uint64_t tile_cols, std::uint64_t t0,
                                 std::uint64_t t1) {
  const __m512i iota = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                         13, 14, 15);
  const __m512i stride =
      _mm512_mullo_epi32(iota, _mm512_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t i = tr;
      for (; i + 16 <= rmax; i += 16) {
        // One index vector serves every lane of the step.
        const __m512i idx =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint32_t*>(srcs[l]);
          auto* dst = static_cast<std::uint32_t*>(dsts[l]) + j * rows;
          _mm512_storeu_si512(dst + i, _mm512_i32gather_epi32(idx, src, 4));
        }
      }
      if (i < rmax) {
        const __mmask16 m = static_cast<__mmask16>((1u << (rmax - i)) - 1u);
        const __m512i idx =
            _mm512_add_epi32(_mm512_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint32_t*>(srcs[l]);
          auto* dst = static_cast<std::uint32_t*>(dsts[l]) + j * rows;
          const __m512i v =
              _mm512_mask_i32gather_epi32(_mm512_setzero_si512(), m, idx, src, 4);
          _mm512_mask_storeu_epi32(dst + i, m, v);
        }
      }
    }
  }
}

void transpose_tiles_batched_u64(const void* const* srcs, void* const* dsts,
                                 std::uint64_t lanes, std::uint64_t rows,
                                 std::uint64_t cols, std::uint64_t tile,
                                 std::uint64_t tile_cols, std::uint64_t t0,
                                 std::uint64_t t1) {
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256i stride =
      _mm256_mullo_epi32(iota, _mm256_set1_epi32(static_cast<int>(cols)));
  for (std::uint64_t t = t0; t < t1; ++t) {
    const std::uint64_t tr = (t / tile_cols) * tile;
    const std::uint64_t tc = (t % tile_cols) * tile;
    const std::uint64_t rmax = rows < tr + tile ? rows : tr + tile;
    const std::uint64_t cmax = cols < tc + tile ? cols : tc + tile;
    for (std::uint64_t j = tc; j < cmax; ++j) {
      std::uint64_t i = tr;
      for (; i + 8 <= rmax; i += 8) {
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint64_t*>(srcs[l]);
          auto* dst = static_cast<std::uint64_t*>(dsts[l]) + j * rows;
          _mm512_storeu_si512(dst + i, _mm512_i32gather_epi64(idx, src, 8));
        }
      }
      if (i < rmax) {
        const __mmask8 m = static_cast<__mmask8>((1u << (rmax - i)) - 1u);
        const __m256i idx =
            _mm256_add_epi32(_mm256_set1_epi32(static_cast<int>(i * cols + j)), stride);
        for (std::uint64_t l = 0; l < lanes; ++l) {
          const auto* src = static_cast<const std::uint64_t*>(srcs[l]);
          auto* dst = static_cast<std::uint64_t*>(dsts[l]) + j * rows;
          const __m512i v =
              _mm512_mask_i32gather_epi64(_mm512_setzero_si512(), m, idx, src, 8);
          _mm512_mask_storeu_epi64(dst + i, m, v);
        }
      }
    }
  }
}

// ---- conventional gather / scatter -----------------------------------

void gather_u32(const void* a, void* b, const std::uint32_t* idx,
                std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint32_t*>(a);
  auto* dst = static_cast<std::uint32_t*>(b);
  std::uint64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m512i vi = _mm512_loadu_si512(idx + i);
    _mm512_storeu_si512(dst + i, _mm512_i32gather_epi32(vi, src, 4));
  }
  if (i < hi) {
    const __mmask16 m = static_cast<__mmask16>((1u << (hi - i)) - 1u);
    const __m512i vi = _mm512_maskz_loadu_epi32(m, idx + i);
    const __m512i v =
        _mm512_mask_i32gather_epi32(_mm512_setzero_si512(), m, vi, src, 4);
    _mm512_mask_storeu_epi32(dst + i, m, v);
  }
}

void gather_u64(const void* a, void* b, const std::uint32_t* idx,
                std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint64_t*>(a);
  auto* dst = static_cast<std::uint64_t*>(b);
  std::uint64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    _mm512_storeu_si512(dst + i, _mm512_i32gather_epi64(vi, src, 8));
  }
  if (i < hi) {
    const __mmask8 m = static_cast<__mmask8>((1u << (hi - i)) - 1u);
    const __m256i vi = _mm256_maskz_loadu_epi32(m, idx + i);
    const __m512i v =
        _mm512_mask_i32gather_epi64(_mm512_setzero_si512(), m, vi, src, 8);
    _mm512_mask_storeu_epi64(dst + i, m, v);
  }
}

void scatter_u32(const void* a, void* b, const std::uint32_t* idx,
                 std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint32_t*>(a);
  auto* dst = static_cast<std::uint32_t*>(b);
  std::uint64_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m512i vi = _mm512_loadu_si512(idx + i);
    const __m512i v = _mm512_loadu_si512(src + i);
    _mm512_i32scatter_epi32(dst, vi, v, 4);
  }
  if (i < hi) {
    const __mmask16 m = static_cast<__mmask16>((1u << (hi - i)) - 1u);
    const __m512i vi = _mm512_maskz_loadu_epi32(m, idx + i);
    const __m512i v = _mm512_maskz_loadu_epi32(m, src + i);
    _mm512_mask_i32scatter_epi32(dst, m, vi, v, 4);
  }
}

void scatter_u64(const void* a, void* b, const std::uint32_t* idx,
                 std::uint64_t lo, std::uint64_t hi) {
  const auto* src = static_cast<const std::uint64_t*>(a);
  auto* dst = static_cast<std::uint64_t*>(b);
  std::uint64_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m512i v = _mm512_loadu_si512(src + i);
    _mm512_i32scatter_epi64(dst, vi, v, 8);
  }
  if (i < hi) {
    const __mmask8 m = static_cast<__mmask8>((1u << (hi - i)) - 1u);
    const __m256i vi = _mm256_maskz_loadu_epi32(m, idx + i);
    const __m512i v = _mm512_maskz_loadu_epi64(m, src + i);
    _mm512_mask_i32scatter_epi64(dst, m, vi, v, 8);
  }
}

}  // namespace

extern const simd::KernelOps kOps4 = {
    row_pass_u32,          row_pass_batched_u32, transpose_tiles_u32,
    transpose_tiles_batched_u32, gather_u32,     scatter_u32,
};
extern const simd::KernelOps kOps8 = {
    row_pass_u64,          row_pass_batched_u64, transpose_tiles_u64,
    transpose_tiles_batched_u64, gather_u64,     scatter_u64,
};

}  // namespace hmm::cpu::avx512
