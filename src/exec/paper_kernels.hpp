#pragma once
/// \file paper_kernels.hpp
/// \brief The paper's algorithms re-expressed as exec:: kernels —
///        structured like the CUDA kernels in Section VIII, but
///        running on the simulator. Tests pin these, time unit for
///        time unit, against the hand-rolled executors in core/.

#include <cstdint>

#include "core/plan.hpp"
#include "exec/kernel.hpp"
#include "perm/permutation.hpp"

namespace hmm::exec {

/// D-designated conventional permutation: `b[p[i]] = a[i]`. One kernel,
/// three rounds (2 coalesced reads + 1 casual write). Returns time units.
template <class T>
std::uint64_t d_designated_exec(Machine& m, GlobalArray<T> a, GlobalArray<T> b,
                                GlobalArray<std::uint32_t> p, std::uint64_t block_size) {
  struct Regs {
    std::uint32_t target = 0;
    T value{};
  };
  Kernel<Regs> k("d-designated");
  auto gid = [](const ThreadCtx& ctx, const Regs&) { return ctx.global_id(); };
  k.template read_global<std::uint32_t>(
       p, gid, [](Regs& r, std::uint32_t t) { r.target = t; },
       model::AccessClass::kCoalesced, "read p")
      .template read_global<T>(
          a, gid, [](Regs& r, T v) { r.value = v; }, model::AccessClass::kCoalesced,
          "read a")
      .template write_global<T>(
          b, [](const ThreadCtx&, const Regs& r) { return r.target; },
          [](const ThreadCtx&, const Regs& r) { return r.value; },
          model::AccessClass::kCasual, "scatter b");
  return m.launch(LaunchConfig{a.size / block_size, block_size}, k);
}

/// S-designated conventional permutation: `b[i] = a[pinv[i]]`.
template <class T>
std::uint64_t s_designated_exec(Machine& m, GlobalArray<T> a, GlobalArray<T> b,
                                GlobalArray<std::uint32_t> pinv, std::uint64_t block_size) {
  struct Regs {
    std::uint32_t source = 0;
    T value{};
  };
  Kernel<Regs> k("s-designated");
  auto gid = [](const ThreadCtx& ctx, const Regs&) { return ctx.global_id(); };
  k.template read_global<std::uint32_t>(
       pinv, gid, [](Regs& r, std::uint32_t s) { r.source = s; },
       model::AccessClass::kCoalesced, "read pinv")
      .template read_global<T>(
          a, [](const ThreadCtx&, const Regs& r) { return static_cast<std::uint64_t>(r.source); },
          [](Regs& r, T v) { r.value = v; }, model::AccessClass::kCasual, "gather a")
      .template write_global<T>(
          b, gid, [](const ThreadCtx&, const Regs& r) { return r.value; },
          model::AccessClass::kCoalesced, "write b");
  return m.launch(LaunchConfig{a.size / block_size, block_size}, k);
}

/// Row-wise permutation kernel (Section VI): one block per row of
/// length `cols`; schedule arrays p̂ and q as 16-bit global arrays.
template <class T>
std::uint64_t row_wise_exec(Machine& m, GlobalArray<T> in, GlobalArray<T> out,
                            GlobalArray<std::uint16_t> phat, GlobalArray<std::uint16_t> q,
                            std::uint64_t rows, std::uint64_t cols) {
  struct Regs {
    T x{};
    std::uint16_t ph = 0;
    std::uint16_t qq = 0;
  };
  Kernel<Regs> k("row-wise");
  auto s = k.template shared_alloc<T>(cols);
  auto d = k.template shared_alloc<T>(cols);
  auto rowmajor = [cols](const ThreadCtx& ctx, const Regs&) {
    return ctx.block * cols + ctx.thread;
  };
  auto lane = [](const ThreadCtx& ctx, const Regs&) { return ctx.thread; };

  // Step 1: s[j] <- a[row][j].
  k.template read_global<T>(in, rowmajor, [](Regs& r, T v) { r.x = v; },
                            model::AccessClass::kCoalesced, "read in")
      .template write_shared<T>(s, lane,
                                [](const ThreadCtx&, const Regs& r) { return r.x; },
                                model::AccessClass::kConflictFree, "write s")
      // Step 2: registers x <- p̂(k), y <- q(k).
      .template read_global<std::uint16_t>(phat, rowmajor,
                                           [](Regs& r, std::uint16_t v) { r.ph = v; },
                                           model::AccessClass::kCoalesced, "read phat")
      .template read_global<std::uint16_t>(q, rowmajor,
                                           [](Regs& r, std::uint16_t v) { r.qq = v; },
                                           model::AccessClass::kCoalesced, "read q")
      // Step 3: d[q(k)] <- s[p̂(k)], both conflict-free by construction.
      .template read_shared<T>(
          s, [](const ThreadCtx&, const Regs& r) { return static_cast<std::uint64_t>(r.ph); },
          [](Regs& r, T v) { r.x = v; }, model::AccessClass::kConflictFree, "read s")
      .template write_shared<T>(
          d, [](const ThreadCtx&, const Regs& r) { return static_cast<std::uint64_t>(r.qq); },
          [](const ThreadCtx&, const Regs& r) { return r.x; },
          model::AccessClass::kConflictFree, "write d")
      // Step 4: b[row][j] <- d[j].
      .template read_shared<T>(d, lane, [](Regs& r, T v) { r.x = v; },
                               model::AccessClass::kConflictFree, "read d")
      .template write_global<T>(out, rowmajor,
                                [](const ThreadCtx&, const Regs& r) { return r.x; },
                                model::AccessClass::kCoalesced, "write out");
  return m.launch(LaunchConfig{rows, cols}, k);
}

/// Tiled transpose kernel (Section V): one block per w x w tile, data
/// staged through the Fig. 4 diagonal arrangement.
template <class T>
std::uint64_t transpose_exec(Machine& m, GlobalArray<T> in, GlobalArray<T> out,
                             std::uint64_t rows, std::uint64_t cols) {
  const std::uint64_t w = m.params().width;
  HMM_CHECK(rows % w == 0 && cols % w == 0);
  const std::uint64_t tiles_c = cols / w;

  struct Regs {
    T v{};
  };
  Kernel<Regs> k("transpose");
  auto tile = k.template shared_alloc<T>(w * w);

  k.template read_global<T>(
       in,
       [w, cols, tiles_c](const ThreadCtx& ctx, const Regs&) {
         const std::uint64_t tr = ctx.block / tiles_c, tc = ctx.block % tiles_c;
         const std::uint64_t i = ctx.thread / w, j = ctx.thread % w;
         return (tr * w + i) * cols + tc * w + j;
       },
       [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced, "read in")
      .template write_shared<T>(
          tile,
          [w](const ThreadCtx& ctx, const Regs&) {
            const std::uint64_t i = ctx.thread / w, j = ctx.thread % w;
            return i * w + ((i + j) & (w - 1));
          },
          [](const ThreadCtx&, const Regs& r) { return r.v; },
          model::AccessClass::kConflictFree, "write diag")
      .template read_shared<T>(
          tile,
          [w](const ThreadCtx& ctx, const Regs&) {
            const std::uint64_t u = ctx.thread / w, v = ctx.thread % w;
            return v * w + ((v + u) & (w - 1));
          },
          [](Regs& r, T v) { r.v = v; }, model::AccessClass::kConflictFree, "read diag")
      .template write_global<T>(
          out,
          [w, rows, tiles_c](const ThreadCtx& ctx, const Regs&) {
            const std::uint64_t tr = ctx.block / tiles_c, tc = ctx.block % tiles_c;
            const std::uint64_t u = ctx.thread / w, v = ctx.thread % w;
            return (tc * w + u) * rows + tr * w + v;
          },
          [](const ThreadCtx&, const Regs& r) { return r.v; },
          model::AccessClass::kCoalesced, "write out");
  return m.launch(LaunchConfig{(rows / w) * tiles_c, w * w}, k);
}

/// The scheduled permutation as five sequential kernel launches
/// (Section VIII's implementation structure). Uploads the plan's
/// schedule arrays, runs row-wise / transpose / row-wise / transpose /
/// row-wise, and leaves the result in `b`. Returns total time units.
template <class T>
std::uint64_t scheduled_exec(Machine& m, GlobalArray<T> a, GlobalArray<T> b,
                             const core::ScheduledPlan& plan) {
  const std::uint64_t n = plan.size();
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t c = plan.shape().cols;
  HMM_CHECK(a.size == n && b.size == n);

  auto t1 = m.alloc_global<T>(n);
  auto t2 = m.alloc_global<T>(n);
  auto up = [&m](const util::aligned_vector<std::uint16_t>& v) {
    return m.alloc_global<std::uint16_t>(std::span<const std::uint16_t>{v.data(), v.size()});
  };
  auto ph1 = up(plan.pass1().phat), q1 = up(plan.pass1().q);
  auto ph2 = up(plan.pass2().phat), q2 = up(plan.pass2().q);
  auto ph3 = up(plan.pass3().phat), q3 = up(plan.pass3().q);

  std::uint64_t t = 0;
  t += row_wise_exec<T>(m, a, t1, ph1, q1, r, c);
  t += transpose_exec<T>(m, t1, t2, r, c);
  t += row_wise_exec<T>(m, t2, t1, ph2, q2, c, r);
  t += transpose_exec<T>(m, t1, t2, c, r);
  t += row_wise_exec<T>(m, t2, b, ph3, q3, r, c);
  return t;
}

}  // namespace hmm::exec
