#pragma once
/// \file algorithms.hpp
/// \brief Classic data-parallel algorithms written against the exec::
///        kernel DSL — the library's proof that the substrate supports
///        more than permutation. `inclusive_scan` follows the
///        memory-machine prefix-sums line of work the paper cites (its
///        ref [12], same authors), `reduce_sum` is the standard
///        two-level GPU reduction; both run with fully coalesced global
///        rounds and conflict-free shared rounds, which the simulator
///        verifies.

#include <cstdint>

#include "exec/kernel.hpp"

namespace hmm::exec {

/// Result of an algorithm run on the machine.
template <class T>
struct AlgoResult {
  T value{};                     ///< scalar result (reduce)
  std::uint64_t time_units = 0;  ///< total model time of all launches
};

/// Two-level tree reduction under any associative, commutative `op`
/// with identity `init`: kernel 1 reduces each block in shared memory
/// (conflict-free halving tree), kernel 2 (a single block) reduces the
/// per-block partials. Requires n a multiple of the block size and
/// blocks <= block size.
template <class T, class Op = std::plus<T>>
AlgoResult<T> reduce(Machine& m, GlobalArray<T> data, std::uint64_t block_size, Op op = {},
                     T init = T{}) {
  const std::uint64_t n = data.size;
  HMM_CHECK(n % block_size == 0);
  const std::uint64_t blocks = n / block_size;
  HMM_CHECK_MSG(blocks <= block_size,
                "second-level reduction must fit one block (raise block_size)");

  auto partials = m.alloc_global<T>(blocks);
  std::uint64_t t = 0;

  struct Regs {
    T v{};
  };

  // Level 1: one block per slice; shared-memory halving tree.
  {
    Kernel<Regs> k("reduce1");
    auto s = k.template shared_alloc<T>(block_size);
    k.template read_global<T>(
        data, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
        [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced, "load");
    k.template write_shared<T>(
        s, [](const ThreadCtx& c, const Regs&) { return c.thread; },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kConflictFree, "stage");
    for (std::uint64_t stride = block_size / 2; stride >= 1; stride /= 2) {
      // Active threads t < stride read s[t + stride], add, write s[t].
      k.template read_shared<T>(
          s,
          [stride](const ThreadCtx& c, const Regs&) {
            return c.thread < stride ? c.thread + stride : model::kNoAccess;
          },
          [op](Regs& r, T v) { r.v = op(r.v, v); }, model::AccessClass::kConflictFree,
          "tree read");
      k.template write_shared<T>(
          s,
          [stride](const ThreadCtx& c, const Regs&) {
            return c.thread < stride ? c.thread : model::kNoAccess;
          },
          [](const ThreadCtx&, const Regs& r) { return r.v; },
          model::AccessClass::kConflictFree, "tree write");
      if (stride == 1) break;
    }
    k.template write_global<T>(
        partials,
        [](const ThreadCtx& c, const Regs&) {
          return c.thread == 0 ? c.block : model::kNoAccess;
        },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kCasual, "partials");
    t += m.launch(LaunchConfig{blocks, block_size}, k);
  }

  // Level 2: single block reduces the partials the same way.
  {
    const std::uint64_t width = m.params().width;
    const std::uint64_t block2 = std::max<std::uint64_t>(width, blocks);
    Kernel<Regs> k("reduce2");
    auto s = k.template shared_alloc<T>(block2);
    k.template read_global<T>(
        partials,
        [blocks](const ThreadCtx& c, const Regs&) {
          return c.thread < blocks ? c.thread : model::kNoAccess;
        },
        [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced, "load");
    k.compute([blocks, init](const ThreadCtx& c, Regs& r) {
      if (c.thread >= blocks) r.v = init;
    });
    k.template write_shared<T>(
        s, [](const ThreadCtx& c, const Regs&) { return c.thread; },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kConflictFree, "stage");
    for (std::uint64_t stride = block2 / 2; stride >= 1; stride /= 2) {
      k.template read_shared<T>(
          s,
          [stride](const ThreadCtx& c, const Regs&) {
            return c.thread < stride ? c.thread + stride : model::kNoAccess;
          },
          [op](Regs& r, T v) { r.v = op(r.v, v); }, model::AccessClass::kConflictFree,
          "tree read");
      k.template write_shared<T>(
          s,
          [stride](const ThreadCtx& c, const Regs&) {
            return c.thread < stride ? c.thread : model::kNoAccess;
          },
          [](const ThreadCtx&, const Regs& r) { return r.v; },
          model::AccessClass::kConflictFree, "tree write");
      if (stride == 1) break;
    }
    k.template write_global<T>(
        partials,
        [](const ThreadCtx& c, const Regs&) {
          return c.thread == 0 ? 0 : model::kNoAccess;
        },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kCasual, "total");
    t += m.launch(LaunchConfig{1, block2}, k);
  }

  AlgoResult<T> result;
  result.time_units = t;
  std::vector<T> host(partials.size);
  m.read_back(partials, std::span<T>{host.data(), host.size()});
  result.value = host[0];
  return result;
}

/// The sum reduction (the common case).
template <class T>
AlgoResult<T> reduce_sum(Machine& m, GlobalArray<T> data, std::uint64_t block_size) {
  return reduce<T>(m, data, block_size);
}

/// Kogge–Stone inclusive scan (prefix "sums" under any associative
/// `op`), the memory-machine prefix-sums algorithm shape of the
/// paper's ref [12]: log2(n) rounds, each a coalesced shifted read +
/// coalesced write, ping-ponging between two buffers. Returns the
/// output array handle and the model time.
template <class T, class Op = std::plus<T>>
std::pair<GlobalArray<T>, std::uint64_t> inclusive_scan(Machine& m, GlobalArray<T> input,
                                                        std::uint64_t block_size, Op op = {}) {
  const std::uint64_t n = input.size;
  HMM_CHECK(n % block_size == 0);

  GlobalArray<T> bufs[2] = {m.alloc_global<T>(n), m.alloc_global<T>(n)};
  std::uint64_t t = 0;

  struct Regs {
    T v{};
  };

  // Copy input into buffer 0 (one coalesced read+write kernel).
  {
    Kernel<Regs> k("scan-init");
    k.template read_global<T>(
        input, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
        [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced, "load");
    k.template write_global<T>(
        bufs[0], [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kCoalesced, "store");
    t += m.launch(LaunchConfig{n / block_size, block_size}, k);
  }

  int cur = 0;
  for (std::uint64_t dist = 1; dist < n; dist <<= 1) {
    Kernel<Regs> k("scan-d" + std::to_string(dist));
    k.template read_global<T>(
        bufs[cur], [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
        [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCoalesced, "read self");
    // Shifted read: i - dist for i >= dist; the shifted warp touches at
    // most 2 groups — declared casual, observed near-coalesced.
    k.template read_global<T>(
        bufs[cur],
        [dist](const ThreadCtx& c, const Regs&) {
          const std::uint64_t i = c.global_id();
          return i >= dist ? i - dist : model::kNoAccess;
        },
        [op](Regs& r, T v) { r.v = op(r.v, v); }, model::AccessClass::kCasual,
        "read shifted");
    k.template write_global<T>(
        bufs[1 - cur], [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
        [](const ThreadCtx&, const Regs& r) { return r.v; },
        model::AccessClass::kCoalesced, "write");
    t += m.launch(LaunchConfig{n / block_size, block_size}, k);
    cur = 1 - cur;
  }
  return {bufs[cur], t};
}

/// Exclusive scan: out[0] = init, out[i] = fold of input[0..i) under
/// `op`. One shifted-copy kernel on top of the inclusive scan.
template <class T, class Op = std::plus<T>>
std::pair<GlobalArray<T>, std::uint64_t> exclusive_scan(Machine& m, GlobalArray<T> input,
                                                        std::uint64_t block_size, Op op = {},
                                                        T init = T{}) {
  auto [inc, t] = inclusive_scan<T, Op>(m, input, block_size, op);
  auto out = m.alloc_global<T>(input.size);
  struct Regs {
    T v{};
  };
  Kernel<Regs> k("scan-shift");
  k.template read_global<T>(
       inc,
       [](const ThreadCtx& c, const Regs&) {
         const std::uint64_t i = c.global_id();
         return i >= 1 ? i - 1 : model::kNoAccess;
       },
       [](Regs& r, T v) { r.v = v; }, model::AccessClass::kCasual, "read shifted")
      .compute([init, op](const ThreadCtx& c, Regs& r) {
        // Fold the seed in front (std::exclusive_scan semantics).
        r.v = c.global_id() == 0 ? init : op(init, r.v);
      })
      .template write_global<T>(
          out, [](const ThreadCtx& c, const Regs&) { return c.global_id(); },
          [](const ThreadCtx&, const Regs& r) { return r.v; },
          model::AccessClass::kCoalesced, "store");
  t += m.launch(LaunchConfig{input.size / block_size, block_size}, k);
  return {out, t};
}

}  // namespace hmm::exec
