#pragma once
/// \file machine.hpp
/// \brief `exec::Machine` — a CUDA-like execution layer over the HMM
///        simulator. Algorithms are written as kernels (kernel.hpp):
///        a grid of blocks of threads whose memory steps are replayed
///        round-synchronously, moving real data through typed global
///        arrays and per-block shared memory while the simulator
///        accounts the exact model time of every round.
///
/// This is the "write your own HMM algorithm" substrate: the paper's
/// five kernels are re-expressed in it (paper_kernels.hpp) and the
/// tests pin them, round for round and time unit for time unit, to the
/// hand-rolled executors in core/.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "model/machine.hpp"
#include "sim/hmm_sim.hpp"
#include "util/check.hpp"

namespace hmm::exec {

/// Handle to a typed array in the machine's global memory.
template <class U>
struct GlobalArray {
  std::uint32_t id = ~0u;
  std::uint64_t base = 0;  ///< element address of element 0 (group-aligned)
  std::uint64_t size = 0;
};

/// Grid geometry of a launch.
struct LaunchConfig {
  std::uint64_t blocks = 1;
  std::uint64_t threads_per_block = 1;
  [[nodiscard]] std::uint64_t total_threads() const noexcept {
    return blocks * threads_per_block;
  }
};

/// Per-thread coordinates, passed to every address/compute functor.
struct ThreadCtx {
  std::uint64_t block = 0;
  std::uint64_t thread = 0;       ///< index within the block
  std::uint64_t block_dim = 0;    ///< threads per block
  [[nodiscard]] std::uint64_t global_id() const noexcept {
    return block * block_dim + thread;
  }
};

template <class Regs>
class Kernel;

/// The machine: owns global-memory buffers (real data) and the
/// simulator (model time). One Machine per experiment.
class Machine {
 public:
  explicit Machine(model::MachineParams params) : sim_(params) {}

  [[nodiscard]] sim::HmmSim& sim() noexcept { return sim_; }
  [[nodiscard]] const sim::HmmSim& sim() const noexcept { return sim_; }
  [[nodiscard]] const model::MachineParams& params() const noexcept { return sim_.params(); }

  /// Allocate an uninitialized (zeroed) global array of n elements.
  template <class U>
  GlobalArray<U> alloc_global(std::uint64_t n) {
    GlobalArray<U> arr;
    arr.id = static_cast<std::uint32_t>(buffers_.size());
    arr.base = sim_.alloc_global(n);
    arr.size = n;
    buffers_.push_back(Buffer{std::vector<std::byte>(n * sizeof(U)), sizeof(U)});
    return arr;
  }

  /// Allocate and initialize from host data (the cudaMemcpy H2D analogue;
  /// not charged — the paper's accounting starts with data resident).
  template <class U>
  GlobalArray<U> alloc_global(std::span<const U> init) {
    GlobalArray<U> arr = alloc_global<U>(init.size());
    std::memcpy(buffers_[arr.id].bytes.data(), init.data(), init.size_bytes());
    return arr;
  }

  /// Copy an array's contents back to the host (D2H analogue).
  template <class U>
  void read_back(const GlobalArray<U>& arr, std::span<U> out) const {
    HMM_CHECK(out.size() == arr.size);
    HMM_CHECK(arr.id < buffers_.size() && buffers_[arr.id].elem_size == sizeof(U));
    std::memcpy(out.data(), buffers_[arr.id].bytes.data(), out.size_bytes());
  }

  /// Element access used by the kernel replay (bounds-checked).
  template <class U>
  [[nodiscard]] U load(const GlobalArray<U>& arr, std::uint64_t index) const {
    HMM_DCHECK(arr.id < buffers_.size() && index < arr.size);
    U v;
    std::memcpy(&v, buffers_[arr.id].bytes.data() + index * sizeof(U), sizeof(U));
    return v;
  }

  template <class U>
  void store(const GlobalArray<U>& arr, std::uint64_t index, U value) {
    HMM_DCHECK(arr.id < buffers_.size() && index < arr.size);
    std::memcpy(buffers_[arr.id].bytes.data() + index * sizeof(U), &value, sizeof(U));
  }

  /// Run a kernel over the grid: each recorded step becomes one memory
  /// round (or a free compute step), executed for every thread before
  /// the next begins — the model's round-synchronous semantics.
  /// Returns the time units the launch took.
  template <class Regs>
  std::uint64_t launch(const LaunchConfig& cfg, const Kernel<Regs>& kernel);

 private:
  struct Buffer {
    std::vector<std::byte> bytes;
    std::size_t elem_size;
  };
  sim::HmmSim sim_;
  std::vector<Buffer> buffers_;
};

}  // namespace hmm::exec
