#pragma once
/// \file kernel.hpp
/// \brief Kernel description DSL for exec::Machine.
///
/// A `Kernel<Regs>` is a straight-line sequence of *steps*; `Regs` is
/// the user-defined per-thread register file. Memory steps carry an
/// address functor `(ThreadCtx, Regs) -> element index` (or
/// `kNoAccess`) and a data functor (a sink for reads, a source for
/// writes); each becomes exactly one memory-access round. `compute`
/// steps are register-only and free (matching the paper's pure
/// memory-cost accounting). Shared arrays are allocated per kernel via
/// `shared_alloc<U>` and live in each block's shared memory; within a
/// launch all shared arrays must share one element size (bank indices
/// are element-granular, like the model's).
///
/// Example — the conventional D-designated permutation:
/// \code
///   struct Regs { std::uint32_t t; float v; };
///   Kernel<Regs> k;
///   k.read_global(p,  idx_fn,  [](Regs& r, std::uint32_t t) { r.t = t; })
///    .read_global(a,  idx_fn,  [](Regs& r, float v) { r.v = v; })
///    .write_global(b, [](const ThreadCtx&, const Regs& r) { return r.t; },
///                     [](const ThreadCtx&, const Regs& r) { return r.v; },
///                     model::AccessClass::kCasual);
///   machine.launch({n / 1024, 1024}, k);
/// \endcode

#include <functional>
#include <string>
#include <vector>

#include "exec/machine.hpp"
#include "model/access.hpp"

namespace hmm::exec {

/// Handle to a per-block shared array (element offset within the
/// block's shared space).
template <class U>
struct SharedArray {
  std::uint64_t offset = 0;  ///< in elements, width-aligned
  std::uint64_t size = 0;
};

template <class Regs>
class Kernel {
 public:
  /// Address functor: element index to access, or model::kNoAccess.
  using AddrFn = std::function<std::uint64_t(const ThreadCtx&, const Regs&)>;

  /// Per-block shared memory image for one launch.
  struct SharedMem {
    std::vector<std::byte> bytes;
    std::uint64_t per_block_elems = 0;
    std::uint64_t elem_size = 0;

    template <class U>
    [[nodiscard]] U load(std::uint64_t block, std::uint64_t elem) const {
      HMM_DCHECK(sizeof(U) == elem_size && elem < per_block_elems);
      U v;
      std::memcpy(&v, bytes.data() + (block * per_block_elems + elem) * elem_size,
                  sizeof(U));
      return v;
    }
    template <class U>
    void store(std::uint64_t block, std::uint64_t elem, U v) {
      HMM_DCHECK(sizeof(U) == elem_size && elem < per_block_elems);
      std::memcpy(bytes.data() + (block * per_block_elems + elem) * elem_size, &v,
                  sizeof(U));
    }
  };

  using Step = std::function<void(Machine&, const LaunchConfig&, std::vector<Regs>&,
                                  SharedMem&, std::uint64_t&)>;

  /// Name the kernel (prefixes every round label in the sim stats).
  explicit Kernel(std::string name = "kernel") : name_(std::move(name)) {}

  /// Allocate a shared array of n elements of U per block. All shared
  /// arrays of one kernel must have the same sizeof(U). Offsets are
  /// rounded up to a multiple of 64 elements so bank phase is preserved
  /// for any machine width up to 64.
  template <class U>
  SharedArray<U> shared_alloc(std::uint64_t n) {
    HMM_CHECK_MSG(shared_elem_size_ == 0 || shared_elem_size_ == sizeof(U),
                  "all shared arrays in a kernel must share one element size");
    shared_elem_size_ = sizeof(U);
    SharedArray<U> arr{shared_elems_, n};
    shared_elems_ += util::ceil_div(n, 64) * 64;
    return arr;
  }

  [[nodiscard]] std::uint64_t shared_elems() const noexcept { return shared_elems_; }
  [[nodiscard]] std::uint64_t shared_elem_size() const noexcept { return shared_elem_size_; }
  [[nodiscard]] std::uint64_t shared_bytes_per_block() const noexcept {
    return shared_elems_ * shared_elem_size_;
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<Step>& steps() const noexcept { return steps_; }

  /// One coalesced/casual global read round: `sink(regs, value)` runs
  /// for every participating thread after the round completes.
  template <class U>
  Kernel& read_global(GlobalArray<U> arr, AddrFn addr, std::function<void(Regs&, U)> sink,
                      model::AccessClass declared = model::AccessClass::kCoalesced,
                      std::string label = "read") {
    steps_.push_back(make_global_step<U>(arr, std::move(addr), std::move(sink), nullptr,
                                         model::Dir::kRead, declared, std::move(label)));
    return *this;
  }

  /// One global write round: `src(ctx, regs)` supplies each value.
  template <class U>
  Kernel& write_global(GlobalArray<U> arr, AddrFn addr,
                       std::function<U(const ThreadCtx&, const Regs&)> src,
                       model::AccessClass declared = model::AccessClass::kCoalesced,
                       std::string label = "write") {
    steps_.push_back(make_global_step<U>(arr, std::move(addr), nullptr, std::move(src),
                                         model::Dir::kWrite, declared, std::move(label)));
    return *this;
  }

  /// One shared read round (per-block address space).
  template <class U>
  Kernel& read_shared(SharedArray<U> arr, AddrFn addr, std::function<void(Regs&, U)> sink,
                      model::AccessClass declared = model::AccessClass::kConflictFree,
                      std::string label = "smem read") {
    steps_.push_back(make_shared_step<U>(arr, std::move(addr), std::move(sink), nullptr,
                                         model::Dir::kRead, declared, std::move(label)));
    return *this;
  }

  /// One shared write round.
  template <class U>
  Kernel& write_shared(SharedArray<U> arr, AddrFn addr,
                       std::function<U(const ThreadCtx&, const Regs&)> src,
                       model::AccessClass declared = model::AccessClass::kConflictFree,
                       std::string label = "smem write") {
    steps_.push_back(make_shared_step<U>(arr, std::move(addr), nullptr, std::move(src),
                                         model::Dir::kWrite, declared, std::move(label)));
    return *this;
  }

  /// Register-only step; free in the model.
  Kernel& compute(std::function<void(const ThreadCtx&, Regs&)> fn) {
    steps_.push_back([fn = std::move(fn)](Machine&, const LaunchConfig& cfg,
                                          std::vector<Regs>& regs, SharedMem&,
                                          std::uint64_t&) {
      for (std::uint64_t b = 0; b < cfg.blocks; ++b) {
        for (std::uint64_t t = 0; t < cfg.threads_per_block; ++t) {
          const ThreadCtx ctx{b, t, cfg.threads_per_block};
          fn(ctx, regs[ctx.global_id()]);
        }
      }
    });
    return *this;
  }

 private:
  template <class U>
  Step make_global_step(GlobalArray<U> arr, AddrFn addr, std::function<void(Regs&, U)> sink,
                        std::function<U(const ThreadCtx&, const Regs&)> src, model::Dir dir,
                        model::AccessClass declared, std::string label) {
    label = name_ + ":" + label;
    return [=](Machine& m, const LaunchConfig& cfg, std::vector<Regs>& regs,
                     SharedMem&, std::uint64_t& elapsed) {
      const std::uint64_t total = cfg.total_threads();
      std::vector<std::uint64_t> addrs(total);
      std::vector<std::uint64_t> local(total);
      for (std::uint64_t b = 0; b < cfg.blocks; ++b) {
        for (std::uint64_t t = 0; t < cfg.threads_per_block; ++t) {
          const ThreadCtx ctx{b, t, cfg.threads_per_block};
          const std::uint64_t tid = ctx.global_id();
          const std::uint64_t a = addr(ctx, regs[tid]);
          local[tid] = a;
          if (a == model::kNoAccess) {
            addrs[tid] = model::kNoAccess;
          } else {
            HMM_DCHECK(a < arr.size);
            addrs[tid] = arr.base + a;
          }
        }
      }
      // Writes hit memory "during" the round; reads deliver afterwards.
      if (dir == model::Dir::kWrite) {
        for (std::uint64_t b = 0; b < cfg.blocks; ++b) {
          for (std::uint64_t t = 0; t < cfg.threads_per_block; ++t) {
            const ThreadCtx ctx{b, t, cfg.threads_per_block};
            const std::uint64_t tid = ctx.global_id();
            if (local[tid] == model::kNoAccess) continue;
            m.store(arr, local[tid], src(ctx, regs[tid]));
          }
        }
      }
      elapsed += m.sim().global_round(label, addrs, dir, declared, model::words_of<U>());
      if (dir == model::Dir::kRead) {
        for (std::uint64_t tid = 0; tid < total; ++tid) {
          if (local[tid] == model::kNoAccess) continue;
          sink(regs[tid], m.load(arr, local[tid]));
        }
      }
    };
  }

  template <class U>
  Step make_shared_step(SharedArray<U> arr, AddrFn addr, std::function<void(Regs&, U)> sink,
                        std::function<U(const ThreadCtx&, const Regs&)> src, model::Dir dir,
                        model::AccessClass declared, std::string label) {
    label = name_ + ":" + label;
    return [=](Machine& m, const LaunchConfig& cfg, std::vector<Regs>& regs,
                     SharedMem& smem, std::uint64_t& elapsed) {
      const std::uint64_t total = cfg.total_threads();
      std::vector<std::uint64_t> addrs(total);
      std::vector<std::uint64_t> local(total);
      for (std::uint64_t b = 0; b < cfg.blocks; ++b) {
        for (std::uint64_t t = 0; t < cfg.threads_per_block; ++t) {
          const ThreadCtx ctx{b, t, cfg.threads_per_block};
          const std::uint64_t tid = ctx.global_id();
          const std::uint64_t a = addr(ctx, regs[tid]);
          local[tid] = a;
          if (a == model::kNoAccess) {
            addrs[tid] = model::kNoAccess;
          } else {
            HMM_DCHECK(a < arr.size);
            addrs[tid] = arr.offset + a;
          }
          if (dir == model::Dir::kWrite && a != model::kNoAccess) {
            smem.template store<U>(b, arr.offset + a, src(ctx, regs[tid]));
          }
        }
      }
      elapsed += m.sim().shared_round(label, addrs, cfg.threads_per_block, dir, declared,
                                      model::words_of<U>());
      if (dir == model::Dir::kRead) {
        for (std::uint64_t b = 0; b < cfg.blocks; ++b) {
          for (std::uint64_t t = 0; t < cfg.threads_per_block; ++t) {
            const ThreadCtx ctx{b, t, cfg.threads_per_block};
            const std::uint64_t tid = ctx.global_id();
            if (local[tid] == model::kNoAccess) continue;
            sink(regs[tid], smem.template load<U>(b, arr.offset + local[tid]));
          }
        }
      }
    };
  }

  std::string name_;
  std::vector<Step> steps_;
  std::uint64_t shared_elems_ = 0;
  std::uint64_t shared_elem_size_ = 0;
};

template <class Regs>
std::uint64_t Machine::launch(const LaunchConfig& cfg, const Kernel<Regs>& kernel) {
  HMM_CHECK_MSG(cfg.threads_per_block % params().width == 0,
                "block size must be a multiple of the machine width");
  HMM_CHECK_MSG(kernel.shared_bytes_per_block() <= params().shared_bytes,
                "kernel's shared arrays exceed the DMM shared memory");
  std::vector<Regs> regs(cfg.total_threads());
  typename Kernel<Regs>::SharedMem smem;
  smem.per_block_elems = kernel.shared_elems();
  smem.elem_size = std::max<std::uint64_t>(1, kernel.shared_elem_size());
  smem.bytes.resize(cfg.blocks * kernel.shared_elems() * smem.elem_size);
  std::uint64_t elapsed = 0;
  for (const auto& step : kernel.steps()) {
    step(*this, cfg, regs, smem, elapsed);
  }
  return elapsed;
}

}  // namespace hmm::exec
