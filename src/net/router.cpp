#include "net/router.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "core/layout.hpp"
#include "net/distributed.hpp"
#include "perm/permutation.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/program.hpp"
#include "util/bits.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

/// Per-backend runtime state. Health flags are written by the health
/// thread and read by every connection thread; the breaker is driven
/// from the request path. Everything is atomics — no lock is ever held
/// on the routing decision.
struct Router::Backend {
  BackendAddress addr;
  std::string label;

  std::atomic<bool> ejected{false};
  std::atomic<std::uint32_t> probe_failures{0};

  std::atomic<std::uint32_t> consecutive_failures{0};
  /// steady_clock nanos the breaker stays open until; 0 = closed.
  std::atomic<std::int64_t> breaker_open_until_ns{0};
  /// Claimed by the single half-open trial request after the cooldown.
  std::atomic<bool> trial_in_flight{false};

  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> typed_errors{0};
  std::atomic<std::uint64_t> retry_later{0};
  std::atomic<std::uint64_t> transport_failures{0};
  std::atomic<std::uint64_t> failovers_to{0};
  std::atomic<std::uint64_t> ejections{0};
  std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> breaker_opens{0};
  std::atomic<std::uint64_t> plans_synced{0};
  runtime::LogHistogram forward_ns;
};

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// splitmix64 finalizer: cheap, well-mixed 64->64 for ring points and
/// backoff jitter.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_bytes(const void* data, std::size_t len) noexcept {
  runtime::Fnv1a64 h;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < len; ++i) h.update_byte(p[i]);
  return h.digest();
}

Status decode_error_view(std::span<const std::uint8_t> payload) {
  StatusOr<ErrorResponse> err = ErrorResponse::decode(payload);
  return err.ok() ? err.value().to_status()
                  : Status(StatusCode::kUnavailable, "malformed ERROR frame from backend");
}

/// Capped jittered pause before failover hop `hop` (1-based). Same
/// recipe as Client::retry_backoff, salted by the request id so
/// concurrent failovers don't march in lockstep, yet replay runs
/// deterministically.
std::chrono::microseconds failover_pause(const Router::Config& config, int hop,
                                         std::uint64_t salt) noexcept {
  if (hop <= 0 || config.failover_backoff_base.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  const auto base_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(config.failover_backoff_base)
          .count());
  const auto cap_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0,
      std::chrono::duration_cast<std::chrono::microseconds>(config.failover_backoff_cap)
          .count()));
  const int shift = std::min(hop - 1, 20);
  const std::uint64_t delay_us = std::min(base_us << shift, cap_us);
  const std::uint64_t x = mix64(config.failover_jitter_seed ^
                                (0x9e3779b97f4a7c15ull * (salt + static_cast<std::uint64_t>(hop))));
  const std::uint64_t jitter_us = delay_us == 0 ? 0 : x % delay_us;
  return std::chrono::microseconds(delay_us + jitter_us);
}

constexpr std::uint8_t kProbePayload[] = {'h', 'm', 'm', 'p', '?'};

}  // namespace

Router::Router(Config config) : config_(std::move(config)) {
  if (config_.virtual_nodes == 0) config_.virtual_nodes = 1;
  backends_.reserve(config_.backends.size());
  for (const BackendAddress& addr : config_.backends) {
    auto b = std::make_unique<Backend>();
    b->addr = addr;
    b->label = addr.label();
    backends_.push_back(std::move(b));
  }
  build_ring();
}

Router::~Router() { stop(); }

void Router::build_ring() {
  ring_.clear();
  ring_.reserve(backends_.size() * config_.virtual_nodes);
  for (std::uint32_t idx = 0; idx < backends_.size(); ++idx) {
    // Points are derived from the backend's *address*, not its list
    // position: reordering the --backends flag does not reshuffle keys.
    const std::uint64_t base = hash_bytes(backends_[idx]->label.data(),
                                          backends_[idx]->label.size());
    for (std::uint32_t v = 0; v < config_.virtual_nodes; ++v) {
      ring_.push_back(RingPoint{mix64(base ^ (0x9e3779b97f4a7c15ull * (v + 1))), idx});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
    return a.hash != b.hash ? a.hash < b.hash : a.backend < b.backend;
  });
}

std::vector<std::size_t> Router::preference(std::uint64_t key) const {
  std::vector<std::size_t> order;
  if (ring_.empty()) return order;
  order.reserve(backends_.size());
  std::vector<bool> seen(backends_.size(), false);
  const std::uint64_t point = mix64(key);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const RingPoint& rp, std::uint64_t v) { return rp.hash < v; });
  for (std::size_t walked = 0;
       walked < ring_.size() && order.size() < backends_.size(); ++walked, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    if (!seen[it->backend]) {
      seen[it->backend] = true;
      order.push_back(it->backend);
    }
  }
  return order;
}

bool Router::backend_healthy(std::size_t idx) const {
  return idx < backends_.size() && !backends_[idx]->ejected.load(std::memory_order_acquire);
}

bool Router::backend_breaker_open(std::size_t idx) const {
  if (idx >= backends_.size()) return false;
  const std::int64_t until =
      backends_[idx]->breaker_open_until_ns.load(std::memory_order_acquire);
  return until != 0 && steady_now_ns() < until;
}

std::uint64_t Router::plans() const {
  std::lock_guard lock(plans_mutex_);
  return plans_.size();
}

Status Router::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kInvalidArgument, "router already running");
  }
  if (backends_.empty()) {
    return Status(StatusCode::kInvalidArgument, "router needs at least one backend");
  }
  StatusOr<TcpListener> bound = TcpListener::bind(config_.host, config_.port);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(bound).value();
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  health_thread_ = std::thread([this] { health_loop(); });
  return Status::ok();
}

void Router::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  listener_.close();
  std::lock_guard lock(conn_mutex_);
  for (ConnSlot& slot : connections_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
  connections_.clear();
}

void Router::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<TcpStream> conn = listener_.accept(config_.poll_interval);
    {
      std::lock_guard lock(conn_mutex_);
      reap_finished_locked();
    }
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;  // poll slice
      break;  // listener is gone; stop() owns cleanup
    }
    TcpStream stream = std::move(conn).value();
    (void)stream.set_io_timeout(config_.io_timeout, config_.io_timeout);

    if (active_connections_.load(std::memory_order_acquire) >= config_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)write_frame(stream, make_error_frame(
                                    0, Status(StatusCode::kResourceExhausted,
                                              "router at connection capacity; retry later")));
      continue;
    }

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(conn_mutex_);
    connections_.push_back(ConnSlot{
        std::thread([this, s = std::move(stream), done]() mutable {
          serve_connection(std::move(s));
          active_connections_.fetch_sub(1, std::memory_order_acq_rel);
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void Router::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Router::serve_connection(TcpStream stream) {
  // One pooled request buffer per client connection, plus one cached
  // link (connection + pooled response buffer) per backend, reused
  // across requests: a steady proxied stream touches neither the
  // allocator nor the pool's free lists, and the payload is never
  // copied inside the router.
  util::BufferPool& pool = util::BufferPool::global();
  util::PooledBuffer payload_storage;
  std::vector<BackendLink> links(backends_.size());
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<bool> readable = stream.poll_readable(config_.poll_interval);
    if (!readable.ok()) return;
    if (!readable.value()) continue;

    StatusOr<FrameView> request =
        read_frame_view(stream, pool, payload_storage, config_.max_payload_bytes);
    if (!request.ok()) {
      const StatusCode code = request.status().code();
      if (code == StatusCode::kInvalidArgument) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)write_frame(stream, make_error_frame(0, request.status()));
      } else if (code == StatusCode::kResourceExhausted) {
        (void)write_frame(stream, make_error_frame(0, request.status()));
      }
      return;  // transport errors (EOF/reset/timeout) close quietly
    }

    bool wrote_error = false;
    const Status written = respond(stream, links, request.value(), wrote_error);
    if (!written.is_ok()) return;
  }
}

Status Router::respond(TcpStream& client, std::vector<BackendLink>& links,
                       const FrameView& request, bool& wrote_error) {
  try {
    switch (static_cast<MsgKind>(request.kind)) {
      case MsgKind::kPing: {
        // Answered locally: PING through the router probes the router.
        const ConstBuffer parts[] = {{request.payload.data(), request.payload.size()}};
        return write_frame_parts(client, static_cast<std::uint16_t>(MsgKind::kPingOk),
                                 request.request_id, parts);
      }
      case MsgKind::kStats: {
        // The router's own snapshot, not any single backend's.
        ByteWriter w;
        w.put_string(snapshot().to_json());
        return write_frame(client,
                           make_ok_frame(request.request_id, MsgKind::kStatsOk, w.take()));
      }
      case MsgKind::kSubmitPlan:
        return handle_submit_plan(client, links, request, wrote_error);
      case MsgKind::kPermute:
      case MsgKind::kExecuteProgram:
        return route_request(client, links, request, wrote_error);
      default:
        wrote_error = true;
        return write_frame(client,
                           make_error_frame(request.request_id,
                                            Status(StatusCode::kInvalidArgument,
                                                   "unknown request kind")));
    }
  } catch (const std::bad_alloc&) {
    wrote_error = true;
    return write_frame(client, make_error_frame(request.request_id,
                                                Status(StatusCode::kResourceExhausted,
                                                       "allocation failed")));
  } catch (const std::exception& e) {
    wrote_error = true;
    return write_frame(client, make_error_frame(request.request_id,
                                                Status(StatusCode::kUnavailable, e.what())));
  }
}

Router::RouteKey Router::route_key(const FrameView& request) {
  RouteKey rk;
  const std::span<const std::uint8_t> p = request.payload;
  const auto read_u32 = [&p](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[off + i]) << (8 * i);
    return v;
  };
  const auto read_u64 = [&p](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[off + i]) << (8 * i);
    return v;
  };
  const auto kind = static_cast<MsgKind>(request.kind);
  if (kind == MsgKind::kPermute && p.size() >= 8) {
    // PERMUTE: [u64 plan_id | ...] — the plan id is the fingerprint.
    rk.key = read_u64(0);
    rk.referenced.push_back(rk.key);
    return rk;
  }
  if (kind == MsgKind::kExecuteProgram && p.size() >= 16) {
    // EXECUTE_PROGRAM: [u32 deadline | u32 elem | u32 flags |
    // u32 op_count | op_count x {u32 opcode, u32 reserved, u64 arg} |
    // ...]. Route on the first registered-plan operand so a chain and
    // the PERMUTEs it replaces land on the same shard; a chain that
    // references several plans colocates with its *first* one and lazy
    // resync covers the rest.
    const std::uint32_t op_count = read_u32(12);
    if (op_count >= 1 && op_count <= runtime::kMaxProgramOps &&
        p.size() >= 16 + 16ull * op_count) {
      for (std::uint32_t i = 0; i < op_count; ++i) {
        const std::size_t off = 16 + 16ull * i;
        const std::uint32_t opcode = read_u32(off);
        if (opcode == static_cast<std::uint32_t>(runtime::ProgramOpCode::kPermute) ||
            opcode == static_cast<std::uint32_t>(runtime::ProgramOpCode::kInverse)) {
          rk.referenced.push_back(read_u64(off + 8));
        }
      }
      if (!rk.referenced.empty()) {
        rk.key = rk.referenced.front();
        return rk;
      }
      // Generator-only chain: stateless, so spread it by op content.
      rk.key = hash_bytes(p.data() + 16, 16ull * op_count);
      return rk;
    }
  }
  // Malformed payload: still route deterministically (content hash) and
  // let the backend own the typed rejection.
  rk.key = hash_bytes(p.data(), std::min<std::size_t>(p.size(), 256));
  return rk;
}

bool Router::routable(Backend& b, bool& half_open_trial) {
  half_open_trial = false;
  if (b.ejected.load(std::memory_order_acquire)) return false;
  const std::int64_t until = b.breaker_open_until_ns.load(std::memory_order_acquire);
  if (until == 0) return true;
  if (steady_now_ns() < until) return false;  // open: shed in O(1)
  // Cooldown elapsed: exactly one caller wins the half-open trial slot;
  // everyone else keeps shedding until the trial reports back.
  bool expected = false;
  if (b.trial_in_flight.compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
    half_open_trial = true;
    return true;
  }
  return false;
}

void Router::record_backend_success(Backend& b) {
  b.consecutive_failures.store(0, std::memory_order_relaxed);
  b.breaker_open_until_ns.store(0, std::memory_order_release);
  b.trial_in_flight.store(false, std::memory_order_release);
}

void Router::record_backend_transport_failure(Backend& b, bool half_open_trial) {
  b.transport_failures.fetch_add(1, std::memory_order_relaxed);
  const auto cooldown_ns = static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(config_.breaker_cooldown).count());
  const std::uint32_t fails = b.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (half_open_trial) {
    // Failed trial: restart the cooldown before releasing the slot.
    b.breaker_open_until_ns.store(steady_now_ns() + cooldown_ns, std::memory_order_release);
    b.trial_in_flight.store(false, std::memory_order_release);
    b.breaker_opens.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (fails >= config_.breaker_threshold) {
    std::int64_t expected = 0;
    if (b.breaker_open_until_ns.compare_exchange_strong(
            expected, steady_now_ns() + cooldown_ns, std::memory_order_acq_rel)) {
      b.breaker_opens.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

StatusOr<FrameView> Router::forward_once(std::size_t idx, BackendLink& link,
                                         std::uint16_t kind, std::uint64_t request_id,
                                         std::span<const std::uint8_t> payload,
                                         std::chrono::milliseconds connect_budget,
                                         std::chrono::milliseconds io_budget) {
  Backend& b = *backends_[idx];
  util::BufferPool& pool = util::BufferPool::global();
  bool fresh = false;
  // Up to one transparent reconnect-and-resend: a cached link the
  // backend quietly closed between requests (idle timeout, restart)
  // shows up as a send failure or an immediate EOF. Requests are pure
  // (PERMUTE/PROGRAM compute a function of the payload; SUBMIT_PLAN is
  // idempotent), so a single resend is safe.
  for (int round = 0; round < 2; ++round) {
    if (!link.stream.valid()) {
      StatusOr<TcpStream> conn = tcp_connect(b.addr.host, b.addr.port, connect_budget);
      if (!conn.ok()) return conn.status();
      link.stream = std::move(conn).value();
      (void)link.stream.set_io_timeout(io_budget, io_budget);
      fresh = true;
    }
    const ConstBuffer parts[] = {{payload.data(), payload.size()}};
    if (Status written = write_frame_parts(link.stream, kind, request_id, parts);
        !written.is_ok()) {
      link.stream.close();
      if (fresh) return written;
      continue;
    }
    StatusOr<FrameView> response =
        read_frame_view(link.stream, pool, link.storage, config_.max_payload_bytes);
    if (!response.ok()) {
      link.stream.close();
      // Only the peer-gone taxonomy is retriable here; a timeout means
      // the backend may still be working the request — resending would
      // double the load exactly when it is struggling.
      if (fresh || response.status().code() != StatusCode::kUnavailable) {
        return response.status();
      }
      continue;
    }
    const FrameView& frame = response.value();
    if (frame.request_id == 0 && static_cast<MsgKind>(frame.kind) == MsgKind::kError) {
      // Pre-frame ERROR: the backend's connection cap answered the
      // *connection*, not our frame (and will close it). Surface the
      // typed frame; the caller maps it like any other ERROR answer.
      link.stream.close();
      return response;
    }
    if (frame.request_id != request_id ||
        (static_cast<MsgKind>(frame.kind) != MsgKind::kError &&
         frame.kind != static_cast<std::uint16_t>(kind | 0x80u))) {
      link.stream.close();
      return Status(StatusCode::kUnavailable, "backend response does not answer the request");
    }
    return response;
  }
  return Status(StatusCode::kUnavailable, "backend connection could not be re-established");
}

Status Router::push_plans(std::size_t idx, BackendLink& link,
                          std::span<const std::uint64_t> fingerprints) {
  Backend& b = *backends_[idx];
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const std::vector<std::uint8_t>>>>
      to_sync;
  {
    std::lock_guard lock(plans_mutex_);
    if (fingerprints.empty()) {
      to_sync.reserve(plans_.size());
      for (const auto& [fp, payload] : plans_) to_sync.emplace_back(fp, payload);
    } else {
      for (const std::uint64_t fp : fingerprints) {
        const auto it = plans_.find(fp);
        if (it == plans_.end()) {
          return Status(StatusCode::kInvalidArgument,
                        "plan is not in the router registry");
        }
        to_sync.emplace_back(fp, it->second);
      }
    }
  }
  for (const auto& [fp, payload] : to_sync) {
    (void)fp;
    StatusOr<FrameView> response = forward_once(
        idx, link, static_cast<std::uint16_t>(MsgKind::kSubmitPlan),
        next_router_request_id(), {payload->data(), payload->size()},
        config_.connect_timeout, config_.io_timeout);
    if (!response.ok()) return response.status();
    const FrameView& frame = response.value();
    if (static_cast<MsgKind>(frame.kind) != MsgKind::kPlanOk) {
      const Status typed = decode_error_view(frame.payload);
      return typed.is_ok()
                 ? Status(StatusCode::kUnavailable, "unexpected resync response kind")
                 : typed;
    }
    b.plans_synced.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::ok();
}

Status Router::route_distributed(TcpStream& client, std::vector<BackendLink>& links,
                                 const FrameView& request, bool& wrote_error,
                                 bool& handled) {
  handled = false;
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<PermuteRequestView> req = PermuteRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return Status::ok();  // single-node path owns the rejection
  const std::uint64_t n = req.value().data.count;
  const std::uint64_t data_bytes = n * kElemBytes;
  if (data_bytes <= config_.distributed_max_bytes) return Status::ok();

  // Band-splittability gate, checked *before* any shard is touched: a
  // request the shards could not schedule must take the single-node
  // path (where the degradation ladder can still serve it).
  if (!util::is_pow2(n) || !util::is_pow2(config_.distributed_width) ||
      config_.distributed_width == 0) {
    return Status::ok();
  }
  const unsigned k = util::log2_floor(n);
  const unsigned wk = util::log2_floor(config_.distributed_width);
  if (k - (k + 1) / 2 < wk) return Status::ok();  // rows < width: unschedulable
  const core::MatrixShape shape = core::shape_for(n, config_.distributed_width);

  // The shard set: walk the plan's preference list (deterministic per
  // plan, same order failover uses) keeping backends that are healthy
  // with a closed breaker. Read-only checks — the half-open trial slot
  // stays available for the single-node path.
  const std::uint64_t plan_id = req.value().plan_id;
  std::vector<std::size_t> usable;
  for (const std::size_t idx : preference(plan_id)) {
    if (backend_healthy(idx) && !backend_breaker_open(idx)) usable.push_back(idx);
  }
  const std::uint64_t want_by_size =
      (data_bytes + config_.distributed_max_bytes - 1) / config_.distributed_max_bytes;
  std::uint64_t shards = std::max<std::uint64_t>(2, want_by_size);
  shards = std::min<std::uint64_t>({shards, config_.distributed_max_shards,
                                    runtime::kMaxShards, usable.size(), shape.rows});
  if (shards < 2) return Status::ok();  // not enough fleet: single-node path

  // Every shard must hold the plan before its band arrives — replay it
  // from the registry over the cached links. A backend that cannot be
  // primed is dropped (and its breaker fed) rather than failing the
  // request; distribution only proceeds while two shards remain.
  std::vector<std::size_t> primed;
  for (const std::size_t idx : usable) {
    if (primed.size() >= shards) break;
    const std::uint64_t fp[] = {plan_id};
    const Status pushed = push_plans(idx, links[idx], fp);
    if (pushed.is_ok()) {
      primed.push_back(idx);
    } else if (pushed.code() == StatusCode::kInvalidArgument) {
      // The plan is not in the router registry (or the backend rejects
      // it): no shard can be primed — single-node path owns the answer.
      return Status::ok();
    } else {
      record_backend_transport_failure(*backends_[idx], false);
    }
  }
  if (primed.size() < 2) return Status::ok();
  shards = primed.size();

  handled = true;
  dist_requests_.fetch_add(1, std::memory_order_relaxed);

  std::vector<ShardTarget> targets;
  targets.reserve(shards);
  for (const std::size_t idx : primed) {
    targets.push_back(ShardTarget{backends_[idx]->addr.host, backends_[idx]->addr.port, idx});
  }

  DistributedPermuter::Config dconfig;
  dconfig.max_payload_bytes = config_.max_payload_bytes;
  dconfig.connect_timeout = config_.connect_timeout;
  dconfig.io_timeout = config_.io_timeout;
  StatusOr<DistributedPermuter::Result> result = DistributedPermuter::execute(
      dconfig, next_router_request_id(), plan_id, req.value().deadline_ms, shape.rows,
      shape.cols, req.value().data.bytes, targets, [this](std::size_t idx) {
        record_backend_transport_failure(*backends_[idx], false);
      });
  if (!result.ok()) {
    // No fallback once distribution was attempted: the client gets the
    // typed failure and owns the retry decision.
    dist_failures_.fetch_add(1, std::memory_order_relaxed);
    wrote_error = true;
    return write_frame(client, make_error_frame(request.request_id, result.status()));
  }
  for (const std::size_t idx : primed) {
    record_backend_success(*backends_[idx]);
    backends_[idx]->ok.fetch_add(1, std::memory_order_relaxed);
  }
  dist_bytes_.fetch_add(data_bytes, std::memory_order_relaxed);

  // Relay as one PERMUTE_OK: count header + the band payloads straight
  // out of each shard's pooled response buffer, in band order.
  std::uint8_t count_header[8];
  for (int i = 0; i < 8; ++i) count_header[i] = static_cast<std::uint8_t>(n >> (8 * i));
  std::vector<ConstBuffer> parts;
  parts.reserve(1 + result.value().bands.size());
  parts.push_back(ConstBuffer{count_header, sizeof(count_header)});
  for (const DistributedPermuter::Band& band : result.value().bands) {
    parts.push_back(ConstBuffer{band.bytes.data(), band.bytes.size()});
  }
  return write_frame_parts(client, static_cast<std::uint16_t>(MsgKind::kPermuteOk),
                           request.request_id, parts);
}

Status Router::route_request(TcpStream& client, std::vector<BackendLink>& links,
                             const FrameView& request, bool& wrote_error) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<MsgKind>(request.kind) == MsgKind::kPermute &&
      config_.distributed_max_bytes > 0) {
    bool handled = false;
    const Status outcome = route_distributed(client, links, request, wrote_error, handled);
    if (handled) return outcome;
  }
  const RouteKey rk = route_key(request);
  const std::vector<std::size_t> prefs = preference(rk.key);
  const std::size_t primary = prefs.empty() ? 0 : prefs[0];

  const auto relay = [&](const FrameView& frame, std::size_t idx) -> Status {
    if (idx != primary) {
      failovers_total_.fetch_add(1, std::memory_order_relaxed);
      backends_[idx]->failovers_to.fetch_add(1, std::memory_order_relaxed);
    }
    const ConstBuffer parts[] = {{frame.payload.data(), frame.payload.size()}};
    return write_frame_parts(client, frame.kind, request.request_id, parts);
  };

  Status last(StatusCode::kUnavailable, "no routable backend");
  bool attempted_any = false;
  int hop = 0;
  for (const std::size_t idx : prefs) {
    Backend& b = *backends_[idx];
    bool trial = false;
    if (!routable(b, trial)) {
      if (!b.ejected.load(std::memory_order_relaxed)) {
        breaker_short_circuits_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    if (attempted_any) {
      ++hop;
      const std::chrono::microseconds pause = failover_pause(config_, hop, request.request_id);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    attempted_any = true;

    bool next_backend = false;
    for (int pass = 0; pass < 2 && !next_backend; ++pass) {
      b.requests.fetch_add(1, std::memory_order_relaxed);
      util::Stopwatch clock;
      StatusOr<FrameView> response =
          forward_once(idx, links[idx], request.kind, request.request_id, request.payload,
                       config_.connect_timeout, config_.io_timeout);
      if (!response.ok()) {
        record_backend_transport_failure(b, trial);
        last = response.status();
        next_backend = true;
        break;
      }
      b.forward_ns.record(static_cast<std::uint64_t>(clock.nanos()));
      record_backend_success(b);
      trial = false;  // the trial reported back; later outcomes are ordinary
      const FrameView& frame = response.value();
      if (static_cast<MsgKind>(frame.kind) != MsgKind::kError) {
        b.ok.fetch_add(1, std::memory_order_relaxed);
        return relay(frame, idx);
      }
      const Status typed = decode_error_view(frame.payload);
      if (typed.code() == StatusCode::kResourceExhausted) {
        // RETRY_LATER is failover-eligible: the backend is alive but
        // full, and the replica may have headroom right now.
        b.retry_later.fetch_add(1, std::memory_order_relaxed);
        retry_later_failovers_.fetch_add(1, std::memory_order_relaxed);
        last = typed;
        next_backend = true;
        break;
      }
      if (typed.code() == StatusCode::kInvalidArgument && pass == 0 &&
          !rk.referenced.empty() &&
          push_plans(idx, links[idx], rk.referenced).is_ok()) {
        // "Unknown plan" from a backend that restarted since the health
        // checker's last resync: replay the referenced plans on this
        // very connection and retry once. (A genuinely malformed
        // request re-earns the same typed error on the retry.)
        plan_resyncs_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      // Any other typed error is an answer; relay it verbatim.
      b.typed_errors.fetch_add(1, std::memory_order_relaxed);
      wrote_error = true;
      return relay(frame, idx);
    }
  }

  if (!attempted_any) no_backend_available_.fetch_add(1, std::memory_order_relaxed);
  wrote_error = true;
  return write_frame(client, make_error_frame(request.request_id, last));
}

Status Router::handle_submit_plan(TcpStream& client, std::vector<BackendLink>& links,
                                  const FrameView& request, bool& wrote_error) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<SubmitPlanRequestView> req =
      SubmitPlanRequestView::decode(request.payload, max_elements);
  if (!req.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    wrote_error = true;
    return write_frame(client, make_error_frame(request.request_id, req.status()));
  }
  const WordsView& mapping = req.value().mapping;

  // Validate + fingerprint before touching any backend: a mapping the
  // fleet would reject must not be replicated or remembered.
  std::span<const std::uint32_t> words = mapping.in_place();
  std::vector<std::uint32_t> words_copy;
  if (words.empty() && mapping.count > 0) {
    words_copy.resize(mapping.count);
    mapping.copy_to(words_copy);
    words = words_copy;
  }
  if (!perm::Permutation::is_valid(words)) {
    wrote_error = true;
    return write_frame(
        client, make_error_frame(request.request_id,
                                 Status(StatusCode::kInvalidArgument,
                                        "SUBMIT_PLAN: mapping is not a bijection")));
  }
  const std::uint64_t fingerprint = runtime::fingerprint_mapping(words).value;

  {
    std::lock_guard lock(plans_mutex_);
    const auto it = plans_.find(fingerprint);
    if (it == plans_.end()) {
      if (plans_.size() >= config_.max_plans) {
        wrote_error = true;
        return write_frame(
            client, make_error_frame(request.request_id,
                                     Status(StatusCode::kResourceExhausted,
                                            "router plan registry full; retry later")));
      }
      plans_.emplace(fingerprint, std::make_shared<const std::vector<std::uint8_t>>(
                                      request.payload.begin(), request.payload.end()));
      plans_registered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Replicate to the first `replication` routable backends of the
  // fingerprint's preference list. One ack answers the client — the
  // health checker's resync heals any replica that missed its copy.
  const std::vector<std::size_t> prefs = preference(fingerprint);
  const auto want = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(config_.replication,
                                 static_cast<std::uint32_t>(backends_.size())));
  std::uint32_t acked = 0;
  Status last(StatusCode::kUnavailable, "no routable backend");
  for (const std::size_t idx : prefs) {
    if (acked >= want) break;
    Backend& b = *backends_[idx];
    bool trial = false;
    if (!routable(b, trial)) continue;
    b.requests.fetch_add(1, std::memory_order_relaxed);
    util::Stopwatch clock;
    StatusOr<FrameView> response =
        forward_once(idx, links[idx], request.kind, request.request_id, request.payload,
                     config_.connect_timeout, config_.io_timeout);
    if (!response.ok()) {
      record_backend_transport_failure(b, trial);
      last = response.status();
      continue;
    }
    b.forward_ns.record(static_cast<std::uint64_t>(clock.nanos()));
    record_backend_success(b);
    const FrameView& frame = response.value();
    if (static_cast<MsgKind>(frame.kind) == MsgKind::kPlanOk) {
      b.ok.fetch_add(1, std::memory_order_relaxed);
      ++acked;
      continue;
    }
    const Status typed = decode_error_view(frame.payload);
    (typed.code() == StatusCode::kResourceExhausted ? b.retry_later : b.typed_errors)
        .fetch_add(1, std::memory_order_relaxed);
    if (!typed.is_ok()) last = typed;
  }

  if (acked == 0) {
    wrote_error = true;
    return write_frame(client, make_error_frame(request.request_id, last));
  }
  // The PLAN_OK payload is the fingerprint we computed — identical to
  // what every backend answered.
  ByteWriter w;
  w.put_u64(fingerprint);
  return write_frame(client, make_ok_frame(request.request_id, MsgKind::kPlanOk, w.take()));
}

void Router::health_loop() {
  std::vector<BackendLink> links(backends_.size());

  const auto probe = [this](std::size_t idx, BackendLink& link) -> Status {
    StatusOr<FrameView> response = forward_once(
        idx, link, static_cast<std::uint16_t>(MsgKind::kPing), next_router_request_id(),
        {kProbePayload, sizeof(kProbePayload)}, config_.probe_timeout, config_.probe_timeout);
    if (!response.ok()) return response.status();
    const FrameView& frame = response.value();
    if (static_cast<MsgKind>(frame.kind) == MsgKind::kError) {
      const Status typed = decode_error_view(frame.payload);
      if (typed.code() == StatusCode::kResourceExhausted) {
        // At connection capacity — busy, but alive. Ejecting it would
        // only dogpile the survivors.
        return Status::ok();
      }
      return typed.is_ok() ? Status(StatusCode::kUnavailable, "probe answered with ERROR")
                           : typed;
    }
    if (frame.payload.size() != sizeof(kProbePayload) ||
        std::memcmp(frame.payload.data(), kProbePayload, sizeof(kProbePayload)) != 0) {
      return Status(StatusCode::kUnavailable, "probe echo mismatch");
    }
    return Status::ok();
  };

  auto next_probe = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    if (now < next_probe) {
      // Sleep in poll slices so stop() stays prompt.
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(next_probe - now);
      std::this_thread::sleep_for(std::min(config_.poll_interval, remaining));
      continue;
    }
    next_probe = now + config_.probe_interval;
    for (std::size_t idx = 0; idx < backends_.size(); ++idx) {
      if (stop_.load(std::memory_order_acquire)) return;
      Backend& b = *backends_[idx];
      const Status outcome = probe(idx, links[idx]);
      if (outcome.is_ok()) {
        b.probe_failures.store(0, std::memory_order_relaxed);
        if (b.ejected.load(std::memory_order_acquire)) {
          // Recovery = successful probe + a full registry replay, in
          // that order: a restarted backend rejoins the ring already
          // holding every plan it may be asked to serve.
          if (push_plans(idx, links[idx], {}).is_ok()) {
            b.consecutive_failures.store(0, std::memory_order_relaxed);
            b.breaker_open_until_ns.store(0, std::memory_order_release);
            b.trial_in_flight.store(false, std::memory_order_release);
            b.ejected.store(false, std::memory_order_release);
            b.recoveries.fetch_add(1, std::memory_order_relaxed);
          } else {
            links[idx].stream.close();
          }
        }
      } else {
        links[idx].stream.close();
        const std::uint32_t fails =
            b.probe_failures.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (fails >= config_.eject_after &&
            !b.ejected.exchange(true, std::memory_order_acq_rel)) {
          b.ejections.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  }
}

Router::Snapshot Router::snapshot() const {
  Snapshot s;
  s.requests_total = requests_total_.load(std::memory_order_relaxed);
  s.failovers_total = failovers_total_.load(std::memory_order_relaxed);
  s.retry_later_failovers = retry_later_failovers_.load(std::memory_order_relaxed);
  s.breaker_short_circuits = breaker_short_circuits_.load(std::memory_order_relaxed);
  s.no_backend_available = no_backend_available_.load(std::memory_order_relaxed);
  s.plan_resyncs = plan_resyncs_.load(std::memory_order_relaxed);
  s.dist_requests = dist_requests_.load(std::memory_order_relaxed);
  s.dist_failures = dist_failures_.load(std::memory_order_relaxed);
  s.dist_bytes = dist_bytes_.load(std::memory_order_relaxed);
  s.plans_registered = plans_registered_.load(std::memory_order_relaxed);
  s.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.backends.reserve(backends_.size());
  const std::int64_t now_ns = steady_now_ns();
  for (const auto& bp : backends_) {
    const Backend& b = *bp;
    BackendStats bs;
    bs.backend = b.label;
    bs.healthy = !b.ejected.load(std::memory_order_acquire);
    const std::int64_t until = b.breaker_open_until_ns.load(std::memory_order_acquire);
    bs.breaker_open = until != 0 && now_ns < until;
    bs.requests = b.requests.load(std::memory_order_relaxed);
    bs.ok = b.ok.load(std::memory_order_relaxed);
    bs.typed_errors = b.typed_errors.load(std::memory_order_relaxed);
    bs.retry_later = b.retry_later.load(std::memory_order_relaxed);
    bs.transport_failures = b.transport_failures.load(std::memory_order_relaxed);
    bs.failovers_to = b.failovers_to.load(std::memory_order_relaxed);
    bs.ejections = b.ejections.load(std::memory_order_relaxed);
    bs.recoveries = b.recoveries.load(std::memory_order_relaxed);
    bs.breaker_opens = b.breaker_opens.load(std::memory_order_relaxed);
    bs.plans_synced = b.plans_synced.load(std::memory_order_relaxed);
    bs.forward_count = b.forward_ns.count();
    bs.forward_ns_sum = b.forward_ns.sum();
    bs.forward_ns_p50 = b.forward_ns.quantile(0.5);
    bs.forward_ns_p99 = b.forward_ns.quantile(0.99);
    bs.forward_ns_max = b.forward_ns.max();
    s.backends.push_back(std::move(bs));
  }
  return s;
}

std::string Router::Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"router\":{";
  os << "\"requests_total\":" << requests_total;
  os << ",\"failovers_total\":" << failovers_total;
  os << ",\"retry_later_failovers\":" << retry_later_failovers;
  os << ",\"breaker_short_circuits\":" << breaker_short_circuits;
  os << ",\"no_backend_available\":" << no_backend_available;
  os << ",\"plan_resyncs\":" << plan_resyncs;
  os << ",\"distributed_requests\":" << dist_requests;
  os << ",\"distributed_failures\":" << dist_failures;
  os << ",\"distributed_bytes\":" << dist_bytes;
  os << ",\"plans_registered\":" << plans_registered;
  os << ",\"connections_accepted\":" << connections_accepted;
  os << ",\"connections_rejected\":" << connections_rejected;
  os << ",\"protocol_errors\":" << protocol_errors;
  os << ",\"backends\":[";
  for (std::size_t i = 0; i < backends.size(); ++i) {
    const BackendStats& b = backends[i];
    if (i > 0) os << ",";
    os << "{\"backend\":\"" << b.backend << "\"";
    os << ",\"healthy\":" << (b.healthy ? "true" : "false");
    os << ",\"breaker_open\":" << (b.breaker_open ? "true" : "false");
    os << ",\"requests\":" << b.requests;
    os << ",\"ok\":" << b.ok;
    os << ",\"typed_errors\":" << b.typed_errors;
    os << ",\"retry_later\":" << b.retry_later;
    os << ",\"transport_failures\":" << b.transport_failures;
    os << ",\"failovers_to\":" << b.failovers_to;
    os << ",\"ejections\":" << b.ejections;
    os << ",\"recoveries\":" << b.recoveries;
    os << ",\"breaker_opens\":" << b.breaker_opens;
    os << ",\"plans_synced\":" << b.plans_synced;
    os << ",\"forward_count\":" << b.forward_count;
    os << ",\"forward_ns_sum\":" << b.forward_ns_sum;
    os << ",\"forward_ns_p50\":" << b.forward_ns_p50;
    os << ",\"forward_ns_p99\":" << b.forward_ns_p99;
    os << ",\"forward_ns_max\":" << b.forward_ns_max;
    os << "}";
  }
  os << "]}}";
  return os.str();
}

std::string Router::Snapshot::to_prometheus() const {
  std::ostringstream os;
  const auto counter = [&os](std::string_view name, std::string_view help,
                             std::uint64_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << value << "\n";
  };
  counter("hmm_router_requests_total", "Client requests routed to backends.", requests_total);
  counter("hmm_router_failovers_total", "Requests served off their key's primary backend.",
          failovers_total);
  counter("hmm_router_retry_later_failovers_total",
          "RETRY_LATER answers treated as failover-eligible.", retry_later_failovers);
  counter("hmm_router_breaker_short_circuits_total",
          "Attempts skipped because a breaker was open.", breaker_short_circuits);
  counter("hmm_router_no_backend_available_total",
          "Requests with zero routable backends.", no_backend_available);
  counter("hmm_router_plan_resyncs_total", "Lazy per-request plan resyncs.", plan_resyncs);
  counter("hmm_router_distributed_requests_total",
          "PERMUTEs executed as distributed shard bands.", dist_requests);
  counter("hmm_router_distributed_failures_total",
          "Distributed executions that failed after being attempted.", dist_failures);
  counter("hmm_router_distributed_bytes_total",
          "Element bytes served through the distributed path.", dist_bytes);
  counter("hmm_router_plans_registered_total", "Distinct plans remembered for replication.",
          plans_registered);
  counter("hmm_router_connections_accepted_total", "Client connections accepted.",
          connections_accepted);
  counter("hmm_router_connections_rejected_total",
          "Client connections refused at the connection cap.", connections_rejected);
  counter("hmm_router_protocol_errors_total", "Malformed client frames.", protocol_errors);

  const auto per_backend = [&os, this](std::string_view name, std::string_view help,
                                       auto field) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n";
    for (const BackendStats& b : backends) {
      os << name << "{backend=\"" << b.backend << "\"} " << field(b) << "\n";
    }
  };
  per_backend("hmm_router_backend_requests_total", "Forward attempts per backend.",
              [](const BackendStats& b) { return b.requests; });
  per_backend("hmm_router_backend_ok_total", "Success responses relayed per backend.",
              [](const BackendStats& b) { return b.ok; });
  per_backend("hmm_router_backend_typed_errors_total",
              "Non-RETRY_LATER typed errors relayed per backend.",
              [](const BackendStats& b) { return b.typed_errors; });
  per_backend("hmm_router_backend_retry_later_total", "RETRY_LATER answers per backend.",
              [](const BackendStats& b) { return b.retry_later; });
  per_backend("hmm_router_backend_transport_failures_total",
              "Transport-level forward failures per backend.",
              [](const BackendStats& b) { return b.transport_failures; });
  per_backend("hmm_router_backend_failovers_to_total",
              "Requests this backend absorbed off-primary.",
              [](const BackendStats& b) { return b.failovers_to; });
  per_backend("hmm_router_backend_ejections_total", "Health-check ejections.",
              [](const BackendStats& b) { return b.ejections; });
  per_backend("hmm_router_backend_recoveries_total",
              "Rejoins after a successful probe + plan resync.",
              [](const BackendStats& b) { return b.recoveries; });
  per_backend("hmm_router_backend_breaker_opens_total", "Circuit-breaker opens.",
              [](const BackendStats& b) { return b.breaker_opens; });
  per_backend("hmm_router_backend_plans_synced_total", "SUBMIT_PLANs replayed by resync.",
              [](const BackendStats& b) { return b.plans_synced; });

  os << "# HELP hmm_router_backend_healthy 1 while the backend is in the ring.\n"
     << "# TYPE hmm_router_backend_healthy gauge\n";
  for (const BackendStats& b : backends) {
    os << "hmm_router_backend_healthy{backend=\"" << b.backend << "\"} "
       << (b.healthy ? 1 : 0) << "\n";
  }
  os << "# HELP hmm_router_backend_breaker_open 1 while the circuit breaker sheds load.\n"
     << "# TYPE hmm_router_backend_breaker_open gauge\n";
  for (const BackendStats& b : backends) {
    os << "hmm_router_backend_breaker_open{backend=\"" << b.backend << "\"} "
       << (b.breaker_open ? 1 : 0) << "\n";
  }

  // Forward latency as a summary per backend, quantiles from the log2
  // histogram (factor-of-two resolution); _sum/_count are exact.
  os << "# HELP hmm_router_backend_forward_latency_seconds Round-trip time to the backend.\n"
     << "# TYPE hmm_router_backend_forward_latency_seconds summary\n";
  const auto seconds = [](std::uint64_t ns) {
    return util::format_double(static_cast<double>(ns) / 1e9, 9);
  };
  for (const BackendStats& b : backends) {
    os << "hmm_router_backend_forward_latency_seconds{backend=\"" << b.backend
       << "\",quantile=\"0.5\"} " << seconds(b.forward_ns_p50) << "\n";
    os << "hmm_router_backend_forward_latency_seconds{backend=\"" << b.backend
       << "\",quantile=\"0.99\"} " << seconds(b.forward_ns_p99) << "\n";
    os << "hmm_router_backend_forward_latency_seconds_sum{backend=\"" << b.backend << "\"} "
       << seconds(b.forward_ns_sum) << "\n";
    os << "hmm_router_backend_forward_latency_seconds_count{backend=\"" << b.backend
       << "\"} " << b.forward_count << "\n";
  }
  return os.str();
}

}  // namespace hmm::net
