#pragma once
/// \file socket.hpp
/// \brief Thin RAII layer over POSIX TCP sockets: listener, stream,
///        connect-with-timeout, typed I/O errors, and the nonblocking
///        readiness primitives (`Epoll`, `EventFd`, single-shot
///        `send_some`/`recv_some`) the reactor server is built on.
///
/// Two I/O disciplines share this file. The client and the shard
/// exchange links use *blocking* streams with SO_RCVTIMEO/SO_SNDTIMEO
/// (`send_all`/`recv_all`): those paths block on a round trip anyway.
/// The server runs *nonblocking* streams driven by epoll readiness:
/// `set_nonblocking(true)` plus the `*_some` calls, which do at most
/// one syscall and report would-block instead of sleeping.
///
/// Error taxonomy (the same `runtime::Status` the serving stack uses):
///  - `kDeadlineExceeded` — an I/O timeout (SO_RCVTIMEO/SO_SNDTIMEO) or
///    poll timeout elapsed;
///  - `kUnavailable` — the peer went away (EOF, ECONNRESET, EPIPE) or
///    the OS refused (transient): callers treat the *connection* as
///    dead, never the process.
///
/// `EPIPE`/`ECONNRESET` are per-connection facts of life; writes use
/// `MSG_NOSIGNAL` so a dead peer can never raise SIGPIPE from inside
/// the library, and `ignore_sigpipe()` belts-and-braces the daemons for
/// any path outside it (stdio to a closed pipe, third-party writes).

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "runtime/status.hpp"

namespace hmm::net {

/// One element of a scatter-gather send: a borrowed byte range.
struct ConstBuffer {
  const void* data = nullptr;
  std::size_t len = 0;
};

/// Process-wide `signal(SIGPIPE, SIG_IGN)`. Idempotent; call early in
/// any program that writes to sockets.
void ignore_sigpipe();

/// Owning file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream with whole-buffer send/recv.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket s) noexcept : sock_(std::move(s)) {}

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  /// Per-direction I/O timeouts (0 = never time out). Only meaningful
  /// for blocking streams — a nonblocking fd never sleeps in a syscall.
  runtime::Status set_io_timeout(std::chrono::milliseconds recv_timeout,
                                 std::chrono::milliseconds send_timeout);

  /// Toggle O_NONBLOCK. In nonblocking mode use `send_some`/`recv_some`
  /// (the `*_all` calls would spin on would-block).
  runtime::Status set_nonblocking(bool nonblocking);

  /// Send exactly `len` bytes. Typed failure, never SIGPIPE.
  runtime::Status send_all(const void* data, std::size_t len);

  /// Send every part, in order, as if concatenated — one sendmsg(2)
  /// per kernel round instead of one send per part, so a frame built
  /// from [header | borrowed payload] goes out without ever being
  /// copied into a contiguous buffer. (sendmsg rather than writev:
  /// writev cannot pass MSG_NOSIGNAL.) Zero-length parts are allowed.
  runtime::Status send_vectored(std::span<const ConstBuffer> parts);

  /// Receive exactly `len` bytes. EOF mid-buffer is kUnavailable (a
  /// torn frame); a clean EOF before the first byte is also
  /// kUnavailable with a "closed" message callers can treat as quiet.
  runtime::Status recv_all(void* data, std::size_t len);

  /// Wait up to `timeout` for readability. OK(true) = data or EOF
  /// pending, OK(false) = timeout, error = the socket is dead.
  runtime::StatusOr<bool> poll_readable(std::chrono::milliseconds timeout);

  /// One nonblocking read attempt: at most one recv(2). OK(n > 0) =
  /// `n` bytes landed, OK(0) = the socket would block (wait for
  /// readiness); EOF and resets surface as kUnavailable. Callers that
  /// care whether EOF tore a frame know their own parse position —
  /// this call cannot.
  runtime::StatusOr<std::size_t> recv_some(void* data, std::size_t len);

  /// One nonblocking scatter-gather write attempt: at most one
  /// sendmsg(2) over the parts as if concatenated. OK(n) = the kernel
  /// accepted `n` bytes (possibly short — resume from there), OK(0) =
  /// would block (wait for writability); EPIPE/ECONNRESET surface as
  /// kUnavailable, never SIGPIPE. Zero-length parts are skipped.
  runtime::StatusOr<std::size_t> send_some(std::span<const ConstBuffer> parts);

  void close() noexcept { sock_.close(); }

 private:
  Socket sock_;
};

/// Readiness bits for `Epoll`, numerically identical to the kernel's
/// EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP/EPOLLRDHUP (asserted in the
/// .cpp) so the header stays free of <sys/epoll.h>.
inline constexpr std::uint32_t kEpollIn = 0x001;
inline constexpr std::uint32_t kEpollOut = 0x004;
inline constexpr std::uint32_t kEpollErr = 0x008;
inline constexpr std::uint32_t kEpollHup = 0x010;
inline constexpr std::uint32_t kEpollRdHup = 0x2000;

/// RAII epoll(7) instance. `data` is an opaque caller key (the reactor
/// uses connection ids, not fds, so a stale event after close can never
/// alias a recycled descriptor). Level-triggered throughout: the frame
/// state machines re-arm interest explicitly and never need EPOLLET's
/// drain-to-EAGAIN contract.
class Epoll {
 public:
  struct Event {
    std::uint64_t data = 0;
    std::uint32_t events = 0;
  };

  Epoll() = default;
  static runtime::StatusOr<Epoll> create();

  [[nodiscard]] bool valid() const noexcept { return epfd_.valid(); }

  runtime::Status add(int fd, std::uint32_t events, std::uint64_t data);
  runtime::Status mod(int fd, std::uint32_t events, std::uint64_t data);
  runtime::Status del(int fd);

  /// Wait up to `timeout` (-1ms = forever) for readiness; fills at most
  /// `out.size()` events and returns the count (0 = timeout). EINTR is
  /// reported as 0 events, like a timeout slice.
  runtime::StatusOr<std::size_t> wait(std::span<Event> out,
                                      std::chrono::milliseconds timeout);

 private:
  explicit Epoll(Socket s) noexcept : epfd_(std::move(s)) {}
  Socket epfd_;
};

/// Nonblocking eventfd(2) wakeup: any thread `signal()`s, the owning
/// reactor sees kEpollIn on `fd()` and `drain()`s. Coalescing is the
/// point — N signals before a drain still cost one wakeup.
class EventFd {
 public:
  EventFd() = default;
  static runtime::StatusOr<EventFd> create();

  [[nodiscard]] bool valid() const noexcept { return efd_.valid(); }
  [[nodiscard]] int fd() const noexcept { return efd_.fd(); }

  void signal() noexcept;
  void drain() noexcept;

 private:
  explicit EventFd(Socket s) noexcept : efd_(std::move(s)) {}
  Socket efd_;
};

/// Connect to host:port within `timeout` (non-blocking connect + poll,
/// then back to blocking mode). Numeric IPv4 addresses and hostnames
/// both resolve (AF_INET).
runtime::StatusOr<TcpStream> tcp_connect(const std::string& host, std::uint16_t port,
                                         std::chrono::milliseconds timeout);

/// A bound, listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;

  /// Bind and listen on host:port. Port 0 binds an ephemeral port —
  /// read the real one back with `port()`.
  static runtime::StatusOr<TcpListener> bind(const std::string& host, std::uint16_t port,
                                             int backlog = 128);

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Wait up to `timeout` for a connection. OK carries the stream;
  /// kDeadlineExceeded = timeout (normal in an accept loop polling a
  /// stop flag); kUnavailable = the listener is closed/broken.
  runtime::StatusOr<TcpStream> accept(std::chrono::milliseconds timeout);

  void close() noexcept { sock_.close(); }

 private:
  explicit TcpListener(Socket s, std::uint16_t bound_port) noexcept
      : sock_(std::move(s)), port_(bound_port) {}

  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace hmm::net
