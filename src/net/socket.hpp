#pragma once
/// \file socket.hpp
/// \brief Thin RAII layer over blocking POSIX TCP sockets: listener,
///        stream, connect-with-timeout, and typed I/O errors.
///
/// The net layer deliberately uses blocking sockets and a
/// thread-per-connection server (taskd-style): the executor underneath
/// is already asynchronous, connections are long-lived, and the request
/// path blocks on a future anyway — an event loop would buy nothing but
/// state-machine complexity at this scale.
///
/// Error taxonomy (the same `runtime::Status` the serving stack uses):
///  - `kDeadlineExceeded` — an I/O timeout (SO_RCVTIMEO/SO_SNDTIMEO) or
///    poll timeout elapsed;
///  - `kUnavailable` — the peer went away (EOF, ECONNRESET, EPIPE) or
///    the OS refused (transient): callers treat the *connection* as
///    dead, never the process.
///
/// `EPIPE`/`ECONNRESET` are per-connection facts of life; writes use
/// `MSG_NOSIGNAL` so a dead peer can never raise SIGPIPE from inside
/// the library, and `ignore_sigpipe()` belts-and-braces the daemons for
/// any path outside it (stdio to a closed pipe, third-party writes).

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "runtime/status.hpp"

namespace hmm::net {

/// One element of a scatter-gather send: a borrowed byte range.
struct ConstBuffer {
  const void* data = nullptr;
  std::size_t len = 0;
};

/// Process-wide `signal(SIGPIPE, SIG_IGN)`. Idempotent; call early in
/// any program that writes to sockets.
void ignore_sigpipe();

/// Owning file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// A connected TCP stream with whole-buffer send/recv.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Socket s) noexcept : sock_(std::move(s)) {}

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] int fd() const noexcept { return sock_.fd(); }

  /// Per-direction I/O timeouts (0 = never time out).
  runtime::Status set_io_timeout(std::chrono::milliseconds recv_timeout,
                                 std::chrono::milliseconds send_timeout);

  /// Send exactly `len` bytes. Typed failure, never SIGPIPE.
  runtime::Status send_all(const void* data, std::size_t len);

  /// Send every part, in order, as if concatenated — one sendmsg(2)
  /// per kernel round instead of one send per part, so a frame built
  /// from [header | borrowed payload] goes out without ever being
  /// copied into a contiguous buffer. (sendmsg rather than writev:
  /// writev cannot pass MSG_NOSIGNAL.) Zero-length parts are allowed.
  runtime::Status send_vectored(std::span<const ConstBuffer> parts);

  /// Receive exactly `len` bytes. EOF mid-buffer is kUnavailable (a
  /// torn frame); a clean EOF before the first byte is also
  /// kUnavailable with a "closed" message callers can treat as quiet.
  runtime::Status recv_all(void* data, std::size_t len);

  /// Wait up to `timeout` for readability. OK(true) = data or EOF
  /// pending, OK(false) = timeout, error = the socket is dead.
  runtime::StatusOr<bool> poll_readable(std::chrono::milliseconds timeout);

  void close() noexcept { sock_.close(); }

 private:
  Socket sock_;
};

/// Connect to host:port within `timeout` (non-blocking connect + poll,
/// then back to blocking mode). Numeric IPv4 addresses and hostnames
/// both resolve (AF_INET).
runtime::StatusOr<TcpStream> tcp_connect(const std::string& host, std::uint16_t port,
                                         std::chrono::milliseconds timeout);

/// A bound, listening TCP socket.
class TcpListener {
 public:
  TcpListener() = default;

  /// Bind and listen on host:port. Port 0 binds an ephemeral port —
  /// read the real one back with `port()`.
  static runtime::StatusOr<TcpListener> bind(const std::string& host, std::uint16_t port,
                                             int backlog = 128);

  [[nodiscard]] bool valid() const noexcept { return sock_.valid(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Wait up to `timeout` for a connection. OK carries the stream;
  /// kDeadlineExceeded = timeout (normal in an accept loop polling a
  /// stop flag); kUnavailable = the listener is closed/broken.
  runtime::StatusOr<TcpStream> accept(std::chrono::milliseconds timeout);

  void close() noexcept { sock_.close(); }

 private:
  explicit TcpListener(Socket s, std::uint16_t bound_port) noexcept
      : sock_(std::move(s)), port_(bound_port) {}

  Socket sock_;
  std::uint16_t port_ = 0;
};

}  // namespace hmm::net
