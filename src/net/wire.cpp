#include "net/wire.hpp"

#include "runtime/fingerprint.hpp"
#include "util/check.hpp"

namespace hmm::net {

std::string_view to_string(FrameError e) noexcept {
  switch (e) {
    case FrameError::kOk: return "ok";
    case FrameError::kShortHeader: return "short header";
    case FrameError::kBadMagic: return "bad magic";
    case FrameError::kBadVersion: return "unsupported wire version";
    case FrameError::kOversized: return "payload exceeds frame budget";
    case FrameError::kShortPayload: return "truncated payload";
    case FrameError::kBadChecksum: return "payload checksum mismatch";
  }
  return "unknown frame error";
}

std::uint64_t checksum_bytes(std::span<const std::uint8_t> bytes) noexcept {
  runtime::Fnv1a64 h;
  for (std::uint8_t b : bytes) h.update_byte(b);
  return h.digest();
}

std::uint64_t checksum_seed() noexcept { return runtime::Fnv1a64::kOffsetBasis; }

std::uint64_t checksum_extend(std::uint64_t state,
                              std::span<const std::uint8_t> bytes) noexcept {
  // FNV-1a's state *is* its digest, so folding more bytes into a prior
  // digest is exactly hashing the concatenation.
  for (std::uint8_t b : bytes) state = (state ^ b) * runtime::Fnv1a64::kPrime;
  return state;
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  HMM_CHECK(frame.payload.size() <= UINT32_MAX);
  ByteWriter w;
  w.put_u32(kMagic);
  w.put_u16(kWireVersion);
  w.put_u16(frame.kind);
  w.put_u64(frame.request_id);
  w.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.put_u64(checksum_bytes(frame.payload));
  w.put_bytes(frame.payload);
  return w.take();
}

FrameError decode_frame(std::span<const std::uint8_t> buf, Frame& out, std::size_t& consumed,
                        std::uint32_t max_payload) {
  ByteReader r(buf);
  std::uint32_t magic = 0, payload_len = 0;
  std::uint16_t version = 0, kind = 0;
  std::uint64_t request_id = 0, checksum = 0;
  if (!r.get_u32(magic) || !r.get_u16(version) || !r.get_u16(kind) ||
      !r.get_u64(request_id) || !r.get_u32(payload_len) || !r.get_u64(checksum)) {
    return FrameError::kShortHeader;
  }
  // Magic before version before length: report the earliest field that
  // proves the stream is not (this version of) HMMP.
  if (magic != kMagic) return FrameError::kBadMagic;
  if (version != kWireVersion) return FrameError::kBadVersion;
  if (payload_len > max_payload) return FrameError::kOversized;
  std::span<const std::uint8_t> payload;
  if (!r.get_bytes(payload_len, payload)) return FrameError::kShortPayload;
  if (checksum_bytes(payload) != checksum) return FrameError::kBadChecksum;
  out.kind = kind;
  out.request_id = request_id;
  out.payload.assign(payload.begin(), payload.end());
  consumed = kHeaderBytes + payload_len;
  return FrameError::kOk;
}

}  // namespace hmm::net
