#pragma once
/// \file server.hpp
/// \brief The permd TCP front-end: an epoll reactor server that speaks
///        HMMP and fronts a `RobustPermuteService`.
///
/// Design (readiness-driven, sized for 10k+ connections on one box):
///
///  - **Reactor I/O threads, nonblocking sockets.** A small set of
///    `io_threads` reactors own the connections (each connection
///    belongs to exactly one reactor for its whole life — no cross-
///    thread connection state). Each reactor runs an epoll loop doing
///    resumable frame assembly (`FrameReader`) into pooled buffers and
///    scatter-gather response flushing (`FrameWriter`), so an idle or
///    slow connection costs a map entry, not a blocked thread.
///  - **Bounded handler pool for request execution.** Fully-decoded
///    frames are handed to `handler_threads` workers that run the
///    dispatch (PERMUTE blocks on the executor future there) and post
///    the finished response back to the owning reactor via an
///    eventfd-signaled completion queue. SHARD_EXEC / SHARD_XCHG run on
///    dedicated short-lived threads instead: a shard exec blocks on
///    *peer* exchanges, and letting those fill a bounded pool could
///    deadlock a distributed round across shards.
///  - **Strictly alternating request/response.** While a request is in
///    flight its connection's EPOLLIN interest is paused; reading
///    resumes only after the response has fully reached the wire.
///    Framing violations answer a best-effort ERROR frame then close;
///    transport errors close quietly. Neither is fatal to the process.
///  - **Deadline propagation.** A PERMUTE's relative `deadline_ms`
///    becomes an absolute executor deadline at decode time, so queueing
///    and kernel phases are all charged against the client's budget.
///  - **Typed backpressure, off the accept path.** Admission-control
///    rejections from the executor (`kResourceExhausted`) return as
///    RETRY_LATER error frames. A connection-count cap answers excess
///    connections with the same code — but the rejection frame is
///    flushed by a reactor under a short `reject_write_budget`, so a
///    hostile peer that never reads can no longer stall the accept
///    thread for the full io_timeout (the old head-of-line bug).
///  - **Graceful drain.** `stop()` stops accepting, lets every
///    in-flight request finish and flush its response (bounded by
///    `drain_timeout`), joins the reactors and handler pool, then
///    waits for the executor to go idle.
///
/// Plans are registered once via SUBMIT_PLAN and shared by all
/// connections: the registry maps the mapping's fingerprint to the
/// `perm::Permutation`, and the `RobustPermuteService`'s PlanCache
/// keys compiled plans off the same fingerprint — a hot plan is
/// compiled once, no matter how many connections use it.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "perm/permutation.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"

namespace hmm::net {

class Server {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    std::uint32_t max_payload_bytes = kDefaultMaxPayload;
    /// Upper bound on registered plans (fingerprint-deduplicated).
    /// At the bound, SUBMIT_PLAN answers RETRY_LATER.
    std::uint32_t max_plans = 4096;
    /// Connection cap; excess connections get a RETRY_LATER error
    /// frame and a close, never a silent drop.
    std::uint32_t max_connections = 256;
    /// Reactor I/O threads. Connections are assigned round-robin at
    /// accept time. Two saturate loopback on most boxes; raise it for
    /// many-NIC or many-core frontends.
    std::uint32_t io_threads = 2;
    /// Request-execution workers (0 = auto: max(16, 2 x hardware
    /// threads)). This bounds concurrent PERMUTE/PROGRAM dispatches,
    /// not connections — idle connections cost no thread anywhere.
    std::uint32_t handler_threads = 0;
    /// Mid-frame stall budget: a connection that has started a frame
    /// (or has an unflushed response) and makes no progress for this
    /// long is closed. Equivalent role to the old per-direction socket
    /// timeout, enforced from the reactor's clock.
    std::chrono::milliseconds io_timeout{30'000};
    /// Close a connection that has not *started* a frame for this long
    /// (0 = never). A slow-loris peer that opens a connection and sends
    /// nothing holds a slot of the connection cap indefinitely —
    /// `io_timeout` only covers mid-frame stalls. Closed quietly,
    /// counted in `Counters::idle_closed`.
    std::chrono::milliseconds idle_timeout{0};
    /// How long the over-cap RETRY_LATER rejection may spend flushing
    /// before the connection is dropped anyway. Short by design: the
    /// frame is ~64 bytes and the peer is over capacity.
    std::chrono::milliseconds reject_write_budget{50};
    /// How long stop() waits for in-flight requests (and the executor)
    /// to drain.
    std::chrono::milliseconds drain_timeout{10'000};
    /// Reactor tick + accept-poll slice: idle/io timeout scans and the
    /// stop flag are honored at this granularity.
    std::chrono::milliseconds poll_interval{50};
    /// Distributed execution: bound on waiting for peer SHARD_XCHG
    /// blocks (exec side) and for the local SHARD_EXEC to open the
    /// session (xchg side). A shard whose peer dies mid-exchange fails
    /// typed (kUnavailable) and releases its staging after this long.
    std::chrono::milliseconds shard_exchange_timeout{10'000};
    /// Concurrent distributed executions this shard admits; excess
    /// SHARD_EXECs answer RETRY_LATER.
    std::uint32_t max_shard_sessions = 32;
    /// Cap on pooled bytes pinned by early-arrival SHARD_XCHG blocks
    /// waiting for their session to materialize (see
    /// ShardSessionRegistry::Config::max_pending_hold_bytes).
    std::uint64_t max_shard_hold_bytes = 256ull << 20;
  };

  /// Monotonic counters (relaxed; advisory).
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests_ok = 0;     ///< success responses actually written
    std::uint64_t requests_error = 0;  ///< ERROR responses actually written
    std::uint64_t protocol_errors = 0;       ///< framing violations received
    std::uint64_t plans_registered = 0;
    std::uint64_t idle_closed = 0;  ///< connections closed by idle_timeout
    std::uint64_t shard_execs = 0;        ///< SHARD_EXEC band executions completed
    std::uint64_t shard_blocks = 0;       ///< SHARD_XCHG blocks accepted
    std::uint64_t shard_aborts = 0;       ///< shard sessions that failed mid-flight
    std::uint64_t shard_hold_rejections = 0;  ///< early-arrival holds over budget

    /// Responses of either kind delivered to a client. (The pre-split
    /// `requests_served` also counted responses whose socket write
    /// failed — these do not.)
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
      return requests_ok + requests_error;
    }
  };

  explicit Server(runtime::RobustPermuteService& service) : Server(service, Config{}) {}
  Server(runtime::RobustPermuteService& service, Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the reactors, handler pool, and accept
  /// loop. Error if already running or the bind fails.
  runtime::Status start();

  /// Graceful shutdown: stop accepting, drain in-flight requests, join
  /// every thread. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::uint64_t plans() const;

 private:
  /// Response-origin tags carried on OutboundFrames so ok/error
  /// counters tick at the moment a response actually reaches the wire.
  static constexpr std::uint8_t kTagNone = 0;  ///< pre-frame rejection: uncounted
  static constexpr std::uint8_t kTagOk = 1;
  static constexpr std::uint8_t kTagError = 2;

  /// Per-connection reactor state. A Conn is owned by exactly one
  /// reactor; handler threads only read the decoded request (stable
  /// while EPOLLIN is paused) and never touch the flags.
  struct Conn {
    Conn(std::uint64_t conn_id, TcpStream s, util::BufferPool& pool,
         std::uint32_t max_payload)
        : id(conn_id), stream(std::move(s)), reader(pool, max_payload) {}

    const std::uint64_t id;
    TcpStream stream;
    FrameReader reader;
    FrameWriter writer;
    std::chrono::steady_clock::time_point last_activity;
    std::chrono::steady_clock::time_point reject_deadline;
    std::uint32_t armed = 0;     ///< epoll interest currently registered
    bool in_flight = false;      ///< a decoded request is being executed
    bool closing = false;        ///< flush the writer, then close
    bool rejected = false;       ///< over-cap: uncounted, short write budget
    bool closed = false;
  };

  /// One reactor: an epoll loop plus the mailbox other threads use to
  /// hand it work (new connections from the accept thread, finished
  /// responses from handlers), with an eventfd as the doorbell.
  struct Reactor {
    Epoll epoll;
    EventFd wakeup;
    std::thread thread;
    std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns;

    struct Completion {
      std::shared_ptr<Conn> conn;
      OutboundFrame frame;
    };
    std::mutex inbox_mutex;
    std::vector<std::shared_ptr<Conn>> incoming;
    std::vector<Completion> completions;
  };

  struct Work {
    Reactor* reactor = nullptr;
    std::shared_ptr<Conn> conn;
  };

  struct ShardSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reactor_loop(Reactor& r);
  void handler_loop();

  /// Move everything in the reactor's mailbox onto the loop: register
  /// incoming connections, apply completions (consume the request,
  /// enqueue + flush the response).
  void drain_inbox(Reactor& r);
  /// Pump the connection's reader until it would block, dispatching at
  /// most one frame (strict alternation pauses EPOLLIN while a request
  /// is in flight).
  void pump_reads(Reactor& r, const std::shared_ptr<Conn>& conn);
  void dispatch(Reactor& r, const std::shared_ptr<Conn>& conn);
  void flush_conn(Reactor& r, const std::shared_ptr<Conn>& conn);
  void update_interest(Reactor& r, Conn& conn);
  void close_conn(Reactor& r, const std::shared_ptr<Conn>& conn);
  /// Periodic scan: idle timeouts, mid-frame/write stalls, reject
  /// budgets.
  void tick(Reactor& r, std::chrono::steady_clock::time_point now);

  /// Handler-side: execute the decoded request sitting in `conn`'s
  /// reader and post the response to the owning reactor.
  void run_request(Reactor& r, std::shared_ptr<Conn> conn);

  /// Dispatch one well-formed frame to a response. Never throws; every
  /// failure becomes a typed ERROR frame.
  OutboundFrame handle_request(Conn& conn);

  /// The PERMUTE hot path: pooled input/output element buffers and a
  /// scatter-gather response (no payload concatenation).
  OutboundFrame handle_permute(const FrameView& request);

  /// EXECUTE_PROGRAM: same pooled/scatter-gather shape as PERMUTE, with
  /// the op chain resolved against the SUBMIT_PLAN registry and handed
  /// to the service's program path (fused unless wire flag bit0 forces
  /// staged).
  OutboundFrame handle_program(const FrameView& request);

  /// SHARD_EXEC: run this shard's row band of a distributed PERMUTE —
  /// pass 1, push round-1 blocks at the peers, wait for theirs, pass 2,
  /// round-2 exchange, pass 3, respond with the band. Every failure
  /// aborts + erases the session (staging released) and answers typed.
  OutboundFrame handle_shard_exec(const FrameView& request);

  /// SHARD_XCHG: rendezvous with the local session (bounded wait under
  /// a held-bytes budget — the block may outrace this shard's own
  /// SHARD_EXEC) and scatter the block into its staging buffer.
  OutboundFrame handle_shard_xchg(const FrameView& request);

  Frame handle_submit_plan(const FrameView& request);
  Frame handle_stats(std::uint64_t request_id);

  /// Build the [u64 count | elements] success response shared by
  /// PERMUTE_OK / PROGRAM_OK / SHARD_EXEC_OK: the count header rides in
  /// the frame's inline prefix, the element bytes leave straight from
  /// the pooled result buffer (byteswapped in place first on a
  /// big-endian host), never concatenated.
  OutboundFrame elements_outbound(MsgKind kind, std::uint64_t request_id,
                                  util::PooledBuffer buf, std::uint64_t count);

  /// Convert an owned Frame into an OutboundFrame, timing the
  /// serialize span (header build + streamed checksum). The tag is
  /// derived from the frame kind unless overridden.
  OutboundFrame to_outbound(Frame frame);
  OutboundFrame to_outbound_tagged(Frame frame, std::uint8_t tag);
  OutboundFrame error_outbound(std::uint64_t request_id, const runtime::Status& why);

  static void on_frame_complete(void* ctx, const OutboundFrame& frame);

  void reap_shard_threads_locked();

  runtime::RobustPermuteService& service_;
  Config config_;
  TcpListener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::chrono::steady_clock::time_point drain_deadline_{};  ///< written before stop_
  std::thread accept_thread_;
  std::atomic<std::uint64_t> next_conn_id_{1};

  std::vector<std::unique_ptr<Reactor>> reactors_;

  std::vector<std::thread> handler_threads_;
  std::mutex work_mutex_;
  std::condition_variable work_cv_;
  std::deque<Work> work_;
  bool workers_stop_ = false;

  mutable std::mutex shard_thread_mutex_;
  std::list<ShardSlot> shard_threads_;

  std::atomic<std::uint32_t> active_connections_{0};

  mutable std::mutex plans_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const perm::Permutation>> plans_;

  ShardSessionRegistry shard_sessions_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> plans_registered_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> shard_execs_{0};
  std::atomic<std::uint64_t> shard_blocks_{0};
  std::atomic<std::uint64_t> shard_aborts_{0};
};

}  // namespace hmm::net
