#pragma once
/// \file server.hpp
/// \brief The permd TCP front-end: a thread-per-connection server that
///        speaks HMMP and fronts a `RobustPermuteService`.
///
/// Design (taskd-shaped, sized for the runtime underneath):
///
///  - **Thread per connection, blocking sockets.** The request path
///    ends in `future.get()` on the executor anyway; an event loop
///    would add state machines without adding concurrency. Kernel fan-
///    out happens on the shared `ThreadPool`, not on connection threads.
///  - **Strictly alternating request/response.** Each connection thread
///    reads one frame, dispatches, writes one response. Framing
///    violations (`read_frame` -> kInvalidArgument) close the
///    connection after a best-effort ERROR frame; transport errors
///    (EPIPE/ECONNRESET/EOF -> kUnavailable) close it quietly. Neither
///    is ever fatal to the process.
///  - **Deadline propagation.** A PERMUTE's relative `deadline_ms`
///    becomes an absolute executor deadline at decode time, so queueing
///    and kernel phases are all charged against the client's budget.
///  - **Typed backpressure.** Admission-control rejections from the
///    executor (`kResourceExhausted`) return as RETRY_LATER error
///    frames; a connection-count cap answers excess connections with
///    the same code before closing them. Nothing is silently dropped.
///  - **Graceful drain.** `stop()` stops accepting, lets every
///    connection finish the request it is serving (threads re-check the
///    stop flag only *between* requests), joins them, then waits for
///    the executor to go idle.
///
/// Plans are registered once via SUBMIT_PLAN and shared by all
/// connections: the registry maps the mapping's fingerprint to the
/// `perm::Permutation`, and the `RobustPermuteService`'s PlanCache
/// keys compiled plans off the same fingerprint — a hot plan is
/// compiled once, no matter how many connections use it.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "perm/permutation.hpp"
#include "runtime/service.hpp"
#include "runtime/status.hpp"

namespace hmm::net {

class Server {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    std::uint32_t max_payload_bytes = kDefaultMaxPayload;
    /// Upper bound on registered plans (fingerprint-deduplicated).
    /// At the bound, SUBMIT_PLAN answers RETRY_LATER.
    std::uint32_t max_plans = 4096;
    /// Connection cap; excess connections get a RETRY_LATER error
    /// frame and a close, never a silent drop.
    std::uint32_t max_connections = 256;
    /// Per-direction socket timeout while inside a frame.
    std::chrono::milliseconds io_timeout{30'000};
    /// Close a connection that has not *started* a frame for this long
    /// (0 = never). A slow-loris peer that opens a connection and sends
    /// nothing holds a slot of the connection cap indefinitely —
    /// `io_timeout` only covers the mid-frame reads. Closed quietly,
    /// counted in `Counters::idle_closed`.
    std::chrono::milliseconds idle_timeout{0};
    /// How long stop() waits for the executor to drain.
    std::chrono::milliseconds drain_timeout{10'000};
    /// Stop-flag poll slice for accept and connection loops.
    std::chrono::milliseconds poll_interval{50};
    /// Distributed execution: bound on waiting for peer SHARD_XCHG
    /// blocks (exec side) and for the local SHARD_EXEC to open the
    /// session (xchg side). A shard whose peer dies mid-exchange fails
    /// typed (kUnavailable) and releases its staging after this long.
    std::chrono::milliseconds shard_exchange_timeout{10'000};
    /// Concurrent distributed executions this shard admits; excess
    /// SHARD_EXECs answer RETRY_LATER.
    std::uint32_t max_shard_sessions = 32;
  };

  /// Monotonic counters (relaxed; advisory).
  struct Counters {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;  ///< over max_connections
    std::uint64_t requests_ok = 0;     ///< success responses actually written
    std::uint64_t requests_error = 0;  ///< ERROR responses actually written
    std::uint64_t protocol_errors = 0;       ///< framing violations received
    std::uint64_t plans_registered = 0;
    std::uint64_t idle_closed = 0;  ///< connections closed by idle_timeout
    std::uint64_t shard_execs = 0;        ///< SHARD_EXEC band executions completed
    std::uint64_t shard_blocks = 0;       ///< SHARD_XCHG blocks accepted
    std::uint64_t shard_aborts = 0;       ///< shard sessions that failed mid-flight

    /// Responses of either kind delivered to a client. (The pre-split
    /// `requests_served` also counted responses whose socket write
    /// failed — these do not.)
    [[nodiscard]] std::uint64_t requests_served() const noexcept {
      return requests_ok + requests_error;
    }
  };

  explicit Server(runtime::RobustPermuteService& service) : Server(service, Config{}) {}
  Server(runtime::RobustPermuteService& service, Config config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + start the accept loop. Error if already running
  /// or the bind fails.
  runtime::Status start();

  /// Graceful shutdown: stop accepting, drain in-flight requests, join
  /// every thread. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] std::uint64_t plans() const;

 private:
  struct ConnSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_finished_locked();
  void serve_connection(TcpStream stream);

  /// Dispatch one well-formed frame and write its response. Never
  /// throws; every failure becomes an ERROR frame. The returned Status
  /// is the *transport* outcome of the response write (an error closes
  /// the connection); `wrote_error` reports whether the response that
  /// reached the wire was an ERROR frame.
  runtime::Status respond(TcpStream& stream, const FrameView& request, bool& wrote_error);

  /// The PERMUTE hot path: pooled input/output element buffers and a
  /// scatter-gather response (no payload concatenation).
  runtime::Status respond_permute(TcpStream& stream, const FrameView& request,
                                  bool& wrote_error);

  /// EXECUTE_PROGRAM: same pooled/scatter-gather shape as PERMUTE, with
  /// the op chain resolved against the SUBMIT_PLAN registry and handed
  /// to the service's program path (fused unless wire flag bit0 forces
  /// staged). Every malformed or unresolvable program is a typed ERROR
  /// frame.
  runtime::Status respond_program(TcpStream& stream, const FrameView& request,
                                  bool& wrote_error);

  /// SHARD_EXEC: run this shard's row band of a distributed PERMUTE —
  /// pass 1, push round-1 blocks at the peers, wait for theirs, pass 2,
  /// round-2 exchange, pass 3, respond with the band. Every failure
  /// aborts + erases the session (staging released) and answers typed.
  runtime::Status respond_shard_exec(TcpStream& stream, const FrameView& request,
                                     bool& wrote_error);

  /// SHARD_XCHG: rendezvous with the local session (bounded wait — the
  /// block may outrace this shard's own SHARD_EXEC) and scatter the
  /// block into its staging buffer.
  runtime::Status respond_shard_xchg(TcpStream& stream, const FrameView& request,
                                     bool& wrote_error);

  Frame handle_submit_plan(const FrameView& request);
  Frame handle_stats(std::uint64_t request_id);

  /// Write `frame`, timing the serialize span; sets `wrote_error` from
  /// the frame kind.
  runtime::Status write_timed(TcpStream& stream, const Frame& frame, bool& wrote_error);
  /// Scatter-gather variant for success responses built from borrowed
  /// parts.
  runtime::Status write_timed_parts(TcpStream& stream, MsgKind kind, std::uint64_t request_id,
                                    std::span<const ConstBuffer> parts);

  runtime::RobustPermuteService& service_;
  Config config_;
  TcpListener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  mutable std::mutex conn_mutex_;
  std::list<ConnSlot> connections_;
  std::atomic<std::uint32_t> active_connections_{0};

  mutable std::mutex plans_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const perm::Permutation>> plans_;

  ShardSessionRegistry shard_sessions_;

  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_ok_{0};
  std::atomic<std::uint64_t> requests_error_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> plans_registered_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> shard_execs_{0};
  std::atomic<std::uint64_t> shard_blocks_{0};
  std::atomic<std::uint64_t> shard_aborts_{0};
};

}  // namespace hmm::net
