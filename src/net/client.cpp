#include "net/client.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <utility>

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

bool is_error(const Frame& frame) {
  return static_cast<MsgKind>(frame.kind) == MsgKind::kError;
}

Status decode_error(const Frame& frame) {
  StatusOr<ErrorResponse> err = ErrorResponse::decode(frame.payload);
  return err.ok() ? err.value().to_status()
                  : Status(StatusCode::kUnavailable, "malformed ERROR frame");
}

}  // namespace

Status Client::connect() {
  close();
  StatusOr<TcpStream> conn = tcp_connect(config_.host, config_.port, config_.connect_timeout);
  if (!conn.ok()) return conn.status();
  stream_ = std::move(conn).value();
  return stream_.set_io_timeout(config_.io_timeout, config_.io_timeout);
}

StatusOr<Frame> Client::roundtrip_once(MsgKind kind, const std::vector<std::uint8_t>& payload,
                                       std::uint64_t request_id) {
  Frame request;
  request.kind = static_cast<std::uint16_t>(kind);
  request.request_id = request_id;
  request.payload = payload;
  if (Status s = write_frame(stream_, request); !s.is_ok()) return s;

  StatusOr<Frame> response = read_frame(stream_, config_.max_payload_bytes);
  if (!response.ok()) {
    // The request reached the wire. A clean EOF before any response
    // byte means the server never started answering (idle close, a
    // restart) — safe to resend. EOF *inside* a response frame means
    // the server was mid-answer when the connection died (a drain
    // deadline, a crash after execution): the request may well have
    // executed, so surface kCancelled — "outcome unknown" — instead of
    // a generic transport error the retry loop would resend blindly.
    const Status& s = response.status();
    if (s.code() == StatusCode::kUnavailable &&
        s.message().find("mid-frame") != std::string::npos) {
      return Status(StatusCode::kCancelled,
                    "connection closed mid-response; request outcome unknown");
    }
    return response;
  }
  const Frame& frame = response.value();
  const auto resp_kind = static_cast<MsgKind>(frame.kind);
  if (frame.request_id != request_id) {
    if (frame.request_id == 0 && resp_kind == MsgKind::kError) {
      // Pre-frame admission rejection (the server answers a connection
      // it will not serve with an ERROR frame addressed to no request,
      // then closes). Surface the typed code — usually RETRY_LATER from
      // the connection cap — so the retry loop backs off instead of
      // treating this as a protocol violation.
      return decode_error(frame);
    }
    return Status(StatusCode::kUnavailable, "response id does not match the request");
  }
  if (resp_kind != MsgKind::kError &&
      frame.kind != (static_cast<std::uint16_t>(kind) | 0x80u)) {
    return Status(StatusCode::kUnavailable, "response kind does not answer the request");
  }
  return response;
}

std::chrono::microseconds Client::retry_backoff(const Config& config, int attempt) noexcept {
  if (attempt <= 0 || config.retry_backoff_base.count() <= 0) {
    return std::chrono::microseconds{0};
  }
  const auto base_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(config.retry_backoff_base).count());
  const auto cap_us = static_cast<std::uint64_t>(std::max<std::int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(config.retry_backoff_cap)
             .count()));
  const int shift = std::min(attempt - 1, 20);
  const std::uint64_t delay_us = std::min(base_us << shift, cap_us);
  // Deterministic jitter in [0, delay) — splitmix-style mix of the
  // seed and attempt index, same recipe as the service's build-retry
  // backoff so chaos runs replay exactly.
  std::uint64_t x =
      config.retry_jitter_seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(attempt));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  const std::uint64_t jitter_us = delay_us == 0 ? 0 : (x ^ (x >> 31)) % delay_us;
  return std::chrono::microseconds(delay_us + jitter_us);
}

StatusOr<Frame> Client::roundtrip(MsgKind kind, std::vector<std::uint8_t> payload) {
  Status last(StatusCode::kUnavailable, "not attempted");
  for (int attempt = 0; attempt <= config_.max_retries; ++attempt) {
    if (attempt > 0) {
      const std::chrono::microseconds pause = retry_backoff(config_, attempt);
      if (pause.count() > 0) std::this_thread::sleep_for(pause);
    }
    if (!connected()) {
      if (attempt > 0) ++reconnects_;
      if (Status s = connect(); !s.is_ok()) {
        last = s;
        continue;  // next attempt backs off and reconnects again
      }
    }
    StatusOr<Frame> response = roundtrip_once(kind, payload, next_request_id());
    if (response.ok()) return response;
    last = response.status();
    // A frame-level violation or transport failure poisons the
    // connection; typed server errors arrive as kError *frames* (the
    // OK path above), so any Status here warrants a reconnect.
    close();
    if (last.code() == StatusCode::kInvalidArgument) {
      // Framing violation from the server: do not hammer a confused
      // peer with resends.
      return last;
    }
    if (last.code() == StatusCode::kCancelled) {
      // Torn response: the request may have executed server-side.
      // Resending is the application's call (idempotent PERMUTEs can;
      // anything with side effects must not), so never retry here.
      return last;
    }
  }
  return last;
}

Status Client::ping() {
  static constexpr std::uint8_t kProbe[] = {'h', 'm', 'm', 'p', '?'};
  std::vector<std::uint8_t> payload(std::begin(kProbe), std::end(kProbe));
  StatusOr<Frame> response = roundtrip(MsgKind::kPing, payload);
  if (!response.ok()) return response.status();
  const Frame& frame = response.value();
  if (is_error(frame)) return decode_error(frame);
  if (frame.payload != payload) {
    return Status(StatusCode::kUnavailable, "PING echo mismatch");
  }
  return Status::ok();
}

StatusOr<std::uint64_t> Client::submit_plan(const perm::Permutation& p) {
  SubmitPlanRequest req;
  req.mapping.assign(p.data().begin(), p.data().end());
  StatusOr<Frame> response = roundtrip(MsgKind::kSubmitPlan, req.encode());
  if (!response.ok()) return response.status();
  const Frame& frame = response.value();
  if (is_error(frame)) return decode_error(frame);
  ByteReader r(frame.payload);
  std::uint64_t plan_id = 0;
  if (!r.get_u64(plan_id) || !r.exhausted()) {
    return Status(StatusCode::kUnavailable, "malformed PLAN_OK payload");
  }
  return plan_id;
}

Status Client::permute(std::uint64_t plan_id, std::span<const std::uint32_t> data,
                       std::span<std::uint32_t> out, std::chrono::milliseconds deadline) {
  if (out.size() != data.size()) {
    return Status(StatusCode::kInvalidArgument, "output span size does not match input");
  }
  // Serialize straight from the caller's span — the former path staged
  // the input in a PermuteRequest vector first (one whole extra copy of
  // the array per call).
  ByteWriter w;
  w.put_u64(plan_id);
  w.put_u32(PermuteRequest::clamp_deadline(deadline));
  w.put_u32(kElemBytes);
  w.put_u64(data.size());
  w.put_u32_span(data);

  StatusOr<Frame> response = roundtrip(MsgKind::kPermute, w.take());
  if (!response.ok()) return response.status();
  const Frame& frame = response.value();
  if (is_error(frame)) return decode_error(frame);
  // decode_into writes the elements straight into the caller's span
  // (no intermediate result vector + memcpy).
  if (Status s = PermuteResponse::decode_into(frame.payload, out); !s.is_ok()) {
    // The server's response payload is malformed: a protocol breach,
    // not an invalid argument of ours.
    return Status(StatusCode::kUnavailable, "malformed PERMUTE_OK payload: " + s.message());
  }
  return Status::ok();
}

Status Client::execute_program(std::span<const runtime::ProgramOp> ops,
                               std::span<const std::uint32_t> data, std::span<std::uint32_t> out,
                               std::chrono::milliseconds deadline, bool staged) {
  if (out.size() != data.size()) {
    return Status(StatusCode::kInvalidArgument, "output span size does not match input");
  }
  if (ops.empty()) {
    return Status(StatusCode::kInvalidArgument, "empty program");
  }
  if (ops.size() > runtime::kMaxProgramOps) {
    return Status(StatusCode::kInvalidArgument, "program op count exceeds the limit");
  }
  // Serialize straight from the caller's spans, mirroring permute().
  ByteWriter w;
  w.put_u32(PermuteRequest::clamp_deadline(deadline));
  w.put_u32(kElemBytes);
  w.put_u32(staged ? kProgramFlagStaged : 0);
  w.put_u32(static_cast<std::uint32_t>(ops.size()));
  for (const runtime::ProgramOp& op : ops) {
    w.put_u32(static_cast<std::uint32_t>(op.op));
    w.put_u32(0);  // reserved
    w.put_u64(op.arg);
  }
  w.put_u64(data.size());
  w.put_u32_span(data);

  StatusOr<Frame> response = roundtrip(MsgKind::kExecuteProgram, w.take());
  if (!response.ok()) return response.status();
  const Frame& frame = response.value();
  if (is_error(frame)) return decode_error(frame);
  // PROGRAM_OK carries the PERMUTE_OK layout; decode straight into the
  // caller's span.
  if (Status s = PermuteResponse::decode_into(frame.payload, out); !s.is_ok()) {
    return Status(StatusCode::kUnavailable, "malformed PROGRAM_OK payload: " + s.message());
  }
  return Status::ok();
}

StatusOr<std::string> Client::stats_json() {
  StatusOr<Frame> response = roundtrip(MsgKind::kStats, {});
  if (!response.ok()) return response.status();
  const Frame& frame = response.value();
  if (is_error(frame)) return decode_error(frame);
  ByteReader r(frame.payload);
  return r.rest_as_string();
}

}  // namespace hmm::net
