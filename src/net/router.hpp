#pragma once
/// \file router.hpp
/// \brief `net::Router` — the permd fleet front door: a consistent-hash
///        proxy that shards the plan space across N backend permd
///        instances and keeps serving through backend failures.
///
/// Design:
///
///  - **Route by plan fingerprint.** The wire plan id *is* the mapping
///    fingerprint (see runtime/fingerprint.hpp), so every request kind
///    carries its own routing key: SUBMIT_PLAN hashes the mapping it
///    carries, PERMUTE routes on its `plan_id` field, EXECUTE_PROGRAM
///    on the first registered-plan operand of its op chain (generator-
///    only chains hash the op list — stateless, any backend serves
///    them). Keys land on a ring of `virtual_nodes` points per backend;
///    the walk order from a key's ring position is its **preference
///    list** — the same list drives replication and failover, so the
///    replica that holds a plan is exactly the backend a failed request
///    falls over to.
///  - **Replication makes failover a hit.** SUBMIT_PLAN is forwarded to
///    the first `replication` routable backends of its preference list
///    and remembered in the router's own registry (payload bytes keyed
///    by fingerprint). A restarted backend comes back empty; the health
///    checker replays the registry into it *before* marking it healthy,
///    and the request path lazily re-submits referenced plans when a
///    backend answers "unknown plan" for a plan the router holds.
///  - **Active health checking.** A dedicated thread PINGs every
///    backend each `probe_interval` under `probe_timeout`;
///    `eject_after` consecutive probe failures eject the backend from
///    routing. Ejected backends keep being probed — the probe *is* the
///    half-open trial — and rejoin only after a successful probe plus a
///    full plan resync.
///  - **Per-backend circuit breakers.** `breaker_threshold` consecutive
///    request-path transport failures open the breaker; while open the
///    backend is skipped with two atomic loads (a dead shard sheds load
///    in O(1), no connect timeout burned per request). After
///    `breaker_cooldown` the breaker goes half-open and admits a single
///    trial request; success closes it, failure re-opens the cooldown.
///  - **Failover, typed.** Transport failures and RETRY_LATER answers
///    are failover-eligible: the request is re-sent to the next backend
///    of its preference list after a capped, deterministically jittered
///    backoff. Any other typed ERROR is an *answer* and is relayed
///    as-is. When every replica is exhausted the client gets the last
///    typed error (or UNAVAILABLE "no routable backend").
///  - **Zero payload copies.** Requests are read into pooled storage
///    (`read_frame_view`) and proxied with scatter-gather writes
///    (`write_frame_parts`); responses relay straight out of the
///    per-backend pooled read buffer. The router never concatenates or
///    re-encodes a payload it did not originate.
///
/// PING and STATS are answered locally: PING probes the router itself,
/// STATS returns the router's own snapshot (per-backend health,
/// breaker state, failovers, forward-latency histograms) as JSON.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runtime/metrics.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"

namespace hmm::net {

/// One backend permd instance, by address.
struct BackendAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  [[nodiscard]] std::string label() const {
    return host + ":" + std::to_string(port);
  }
};

class Router {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral; read back via port()
    std::vector<BackendAddress> backends;
    std::uint32_t max_payload_bytes = kDefaultMaxPayload;
    /// Client-side connection cap; excess connections get RETRY_LATER.
    std::uint32_t max_connections = 256;
    /// Bound on remembered SUBMIT_PLAN payloads (fingerprint-deduped).
    std::uint32_t max_plans = 4096;
    /// How many backends of a plan's preference list receive its
    /// SUBMIT_PLAN (clamped to the backend count). 2 = primary + one
    /// replica, so single-backend loss never loses a plan.
    std::uint32_t replication = 2;
    /// Ring points per backend; more points = smoother key spread.
    std::uint32_t virtual_nodes = 64;
    /// Active health check cadence and per-probe budget.
    std::chrono::milliseconds probe_interval{250};
    std::chrono::milliseconds probe_timeout{1'000};
    /// Consecutive failed probes before a backend is ejected.
    std::uint32_t eject_after = 2;
    /// Consecutive request-path transport failures that open the
    /// breaker, and how long it stays open before the half-open trial.
    std::uint32_t breaker_threshold = 5;
    std::chrono::milliseconds breaker_cooldown{1'000};
    /// Pause before failover hop k (1-based): base << (k-1), capped,
    /// plus deterministic jitter of up to the same amount.
    std::chrono::milliseconds failover_backoff_base{2};
    std::chrono::milliseconds failover_backoff_cap{50};
    std::uint64_t failover_jitter_seed = 0xf417'0e5e'edf4'170eull;
    /// Transport budgets for backend links.
    std::chrono::milliseconds connect_timeout{1'000};
    std::chrono::milliseconds io_timeout{30'000};
    /// Stop-flag poll slice for accept/connection/health loops.
    std::chrono::milliseconds poll_interval{50};
    /// Distributed execution: a PERMUTE whose element bytes exceed this
    /// is split into row bands across the healthy backends (SHARD_EXEC
    /// + peer-to-peer SHARD_XCHG) instead of forwarded whole. 0 =
    /// disabled. Requests that are not band-splittable (non-power-of-
    /// two size, unschedulable plan, fewer than two usable backends)
    /// fall back to single-node routing *before* any shard is touched;
    /// once distribution starts there is no fallback.
    std::uint64_t distributed_max_bytes = 0;
    /// Cap on the shard fan-out of one distributed request.
    std::uint32_t distributed_max_shards = 8;
    /// Machine width the shards schedule against (permd's default
    /// machine model). The coordinator derives the matrix shape from
    /// it, and the shards reject a shape mismatch typed.
    std::uint32_t distributed_width = 32;
  };

  /// Point-in-time per-backend view (plain integers, safe to format).
  struct BackendStats {
    std::string backend;  ///< "host:port"
    bool healthy = true;  ///< not ejected by the health checker
    bool breaker_open = false;
    std::uint64_t requests = 0;  ///< forward attempts (incl. failures)
    std::uint64_t ok = 0;        ///< success responses relayed
    std::uint64_t typed_errors = 0;
    std::uint64_t retry_later = 0;  ///< RETRY_LATER answers (failover-eligible)
    std::uint64_t transport_failures = 0;
    std::uint64_t failovers_to = 0;  ///< requests served here off-primary
    std::uint64_t ejections = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t breaker_opens = 0;
    std::uint64_t plans_synced = 0;  ///< SUBMIT_PLANs replayed by resync
    std::uint64_t forward_count = 0;
    std::uint64_t forward_ns_sum = 0;
    std::uint64_t forward_ns_p50 = 0;
    std::uint64_t forward_ns_p99 = 0;
    std::uint64_t forward_ns_max = 0;
  };

  struct Snapshot {
    std::vector<BackendStats> backends;
    std::uint64_t requests_total = 0;       ///< routed client requests
    std::uint64_t failovers_total = 0;      ///< served off the key's primary
    std::uint64_t retry_later_failovers = 0;
    std::uint64_t breaker_short_circuits = 0;
    std::uint64_t no_backend_available = 0;
    std::uint64_t plan_resyncs = 0;         ///< lazy per-request resyncs
    std::uint64_t dist_requests = 0;   ///< PERMUTEs executed as shard bands
    std::uint64_t dist_failures = 0;   ///< distributed attempts that failed
    std::uint64_t dist_bytes = 0;      ///< element bytes moved distributed
    std::uint64_t plans_registered = 0;
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_rejected = 0;
    std::uint64_t protocol_errors = 0;

    [[nodiscard]] std::string to_json() const;
    /// Prometheus text exposition (0.0.4), `hmm_router_*` families with
    /// a `backend="host:port"` label on the per-backend series.
    [[nodiscard]] std::string to_prometheus() const;
  };

  explicit Router(Config config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind + listen + start the accept and health-check loops. Error if
  /// already running, no backends are configured, or the bind fails.
  runtime::Status start();

  /// Graceful shutdown: stop accepting, let in-flight requests finish,
  /// join every thread. Idempotent; also called by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// The bound port (valid after a successful start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] Snapshot snapshot() const;
  /// Plans remembered for replication/resync.
  [[nodiscard]] std::uint64_t plans() const;

  // Introspection for tests and tools (stable, cheap):

  /// Backend indexes in ring-walk order for `key` — preference()[0] is
  /// the key's primary, the tail its failover order. Ignores health.
  [[nodiscard]] std::vector<std::size_t> preference(std::uint64_t key) const;
  [[nodiscard]] bool backend_healthy(std::size_t idx) const;
  [[nodiscard]] bool backend_breaker_open(std::size_t idx) const;

 private:
  /// A cached connection to one backend plus the pooled storage its
  /// response payloads land in. Owned by exactly one thread.
  struct BackendLink {
    TcpStream stream;
    util::PooledBuffer storage;
  };

  struct Backend;
  struct ConnSlot {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  struct RingPoint {
    std::uint64_t hash = 0;
    std::uint32_t backend = 0;
  };

  void build_ring();
  void accept_loop();
  void health_loop();
  void reap_finished_locked();
  void serve_connection(TcpStream stream);

  /// Dispatch one client frame: answer PING/STATS locally, proxy the
  /// rest. Returns the transport outcome of the client-side write.
  runtime::Status respond(TcpStream& client, std::vector<BackendLink>& links,
                          const FrameView& request, bool& wrote_error);
  runtime::Status handle_submit_plan(TcpStream& client, std::vector<BackendLink>& links,
                                     const FrameView& request, bool& wrote_error);
  /// PERMUTE / EXECUTE_PROGRAM: walk the preference list with breaker
  /// gating, failover backoff, and lazy plan resync.
  runtime::Status route_request(TcpStream& client, std::vector<BackendLink>& links,
                                const FrameView& request, bool& wrote_error);

  /// Oversized PERMUTE: split into row bands across the healthy
  /// backends and gather (see net/distributed.hpp). Sets `handled` when
  /// a response (success or typed error) was written; leaves it false
  /// when the request should take the single-node path instead.
  runtime::Status route_distributed(TcpStream& client, std::vector<BackendLink>& links,
                                    const FrameView& request, bool& wrote_error,
                                    bool& handled);

  /// One request/response exchange with backend `idx` over `link`,
  /// reconnecting a stale cached connection once. A pre-frame ERROR
  /// (request_id 0 — the backend's connection cap) is returned as a
  /// view like any typed answer.
  runtime::StatusOr<FrameView> forward_once(std::size_t idx, BackendLink& link,
                                            std::uint16_t kind, std::uint64_t request_id,
                                            std::span<const std::uint8_t> payload,
                                            std::chrono::milliseconds connect_budget,
                                            std::chrono::milliseconds io_budget);

  /// Replay SUBMIT_PLANs for `fingerprints` (empty = the whole
  /// registry) over `link`; every plan must be acked with PLAN_OK.
  runtime::Status push_plans(std::size_t idx, BackendLink& link,
                             std::span<const std::uint64_t> fingerprints);

  /// Breaker/health gate. O(1): two atomic loads on the common path.
  /// Sets `half_open_trial` when this call claimed the single half-open
  /// probe slot (the caller must report the outcome via record_*).
  bool routable(Backend& b, bool& half_open_trial);
  void record_backend_success(Backend& b);
  void record_backend_transport_failure(Backend& b, bool half_open_trial);

  [[nodiscard]] std::uint64_t next_router_request_id() noexcept {
    return kRouterIdTag | (router_seq_.fetch_add(1, std::memory_order_relaxed) &
                           0x0000'ffff'ffff'ffffull);
  }

  /// Routing keys: the plan fingerprint a request should rendezvous on,
  /// plus every registered-plan fingerprint it references (for lazy
  /// resync). Malformed payloads get a deterministic content hash — the
  /// backend owns rejecting them.
  struct RouteKey {
    std::uint64_t key = 0;
    std::vector<std::uint64_t> referenced;
  };
  [[nodiscard]] static RouteKey route_key(const FrameView& request);

  /// High-bits tag for router-originated request ids (probes, resyncs)
  /// so they can never collide with a proxied client id stream (client
  /// ids put a u32 trace prefix in the high half; this tag is not a
  /// plausible prefix and is never 0).
  static constexpr std::uint64_t kRouterIdTag = 0xdb00'0000'0000'0000ull;

  Config config_;
  std::vector<std::unique_ptr<Backend>> backends_;
  std::vector<RingPoint> ring_;
  TcpListener listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::thread health_thread_;

  mutable std::mutex conn_mutex_;
  std::list<ConnSlot> connections_;
  std::atomic<std::uint32_t> active_connections_{0};

  mutable std::mutex plans_mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const std::vector<std::uint8_t>>> plans_;

  std::atomic<std::uint64_t> router_seq_{1};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> failovers_total_{0};
  std::atomic<std::uint64_t> retry_later_failovers_{0};
  std::atomic<std::uint64_t> breaker_short_circuits_{0};
  std::atomic<std::uint64_t> no_backend_available_{0};
  std::atomic<std::uint64_t> plan_resyncs_{0};
  std::atomic<std::uint64_t> dist_requests_{0};
  std::atomic<std::uint64_t> dist_failures_{0};
  std::atomic<std::uint64_t> dist_bytes_{0};
  std::atomic<std::uint64_t> plans_registered_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
};

}  // namespace hmm::net
