#pragma once
/// \file client.hpp
/// \brief `net::Client` — a synchronous HMMP client with connect and
///        request timeouts, lazy connection, and reconnect-on-failure.
///
/// One client owns one connection and is **not** thread-safe (the
/// protocol is strictly request/response per connection); concurrent
/// callers each get their own Client, as permd_loadgen does.
///
/// Transport failures (`kUnavailable`: the server restarted, the
/// connection was idle-closed, a reset) are retried transparently: the
/// client reconnects and resends the request up to
/// `Config::max_retries` times. Typed *server* errors — RETRY_LATER,
/// DEADLINE_EXCEEDED, INVALID_ARGUMENT — are never retried here; they
/// are answers, and backoff policy belongs to the application.
/// Protocol violations from the server (bad framing, response id or
/// kind mismatch) surface as `kUnavailable` after dropping the
/// connection, since nothing after a framing error is trustworthy.
///
/// A connection that dies *inside* a response frame (the server hit
/// its drain deadline, or crashed after executing the request) is the
/// one transport failure that is **not** retried: the request may have
/// executed, so it surfaces as `kCancelled` ("outcome unknown") and
/// the resend decision belongs to the caller.

#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "perm/permutation.hpp"
#include "runtime/status.hpp"

namespace hmm::net {

class Client {
 public:
  struct Config {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::chrono::milliseconds connect_timeout{2'000};
    /// Socket-level budget per send/recv; covers the server's whole
    /// service time for a request, so keep it >= any PERMUTE deadline.
    std::chrono::milliseconds io_timeout{30'000};
    std::uint32_t max_payload_bytes = kDefaultMaxPayload;
    /// Reconnect-and-resend attempts after a transport failure.
    int max_retries = 1;
    /// Backoff before retry attempt k (k >= 1) is `base << (k-1)`
    /// capped at `retry_backoff_cap`, plus a deterministic jitter of up
    /// to the same amount (mirroring the service's build-retry backoff)
    /// — a down server gets spaced-out probes, not an instant hammer of
    /// max_retries reconnects. base = 0 disables the pause.
    std::chrono::milliseconds retry_backoff_base{25};
    std::chrono::milliseconds retry_backoff_cap{1'000};
    std::uint64_t retry_jitter_seed = 0x5eed5eed5eed5eedull;
    /// Trace prefix folded into the high 32 bits of every request id
    /// (the low 32 bits stay a per-connection sequence number). The
    /// server echoes the id verbatim and threads it to the slow-request
    /// log, so a nonzero prefix makes this client's requests traceable
    /// end to end. 0 = untagged (ids are the bare sequence, as in v1).
    std::uint32_t trace_prefix = 0;
  };

  /// The (deterministic) pause taken before retry `attempt` (1-based);
  /// attempt 0 is the initial try and never waits. Exposed so tests and
  /// capacity math can bound retry timing exactly.
  [[nodiscard]] static std::chrono::microseconds retry_backoff(const Config& config,
                                                               int attempt) noexcept;

  explicit Client(Config config) : config_(std::move(config)) {}
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Establish the connection now (otherwise the first request does).
  runtime::Status connect();
  [[nodiscard]] bool connected() const noexcept { return stream_.valid(); }
  void close() noexcept { stream_.close(); }

  /// Liveness probe; round-trips a small payload and checks the echo.
  runtime::Status ping();

  /// Register `p` with the server; returns the plan id for permute().
  runtime::StatusOr<std::uint64_t> submit_plan(const perm::Permutation& p);

  /// Apply a registered plan: out[P(i)] = data[i]. `deadline` is the
  /// relative budget the server charges the request against (zero =
  /// none). `out` must be exactly data.size() elements.
  runtime::Status permute(std::uint64_t plan_id, std::span<const std::uint32_t> data,
                          std::span<std::uint32_t> out,
                          std::chrono::milliseconds deadline = std::chrono::milliseconds{0});

  /// Execute an op chain in one round trip: `ops` apply to `data` in
  /// list order (see runtime/program.hpp for the opcode vocabulary —
  /// PERMUTE/INVERSE reference plan ids from submit_plan(), the rest
  /// are parametric generators). Set `staged` to force the server's
  /// staged fallback instead of plan fusion (wire flag bit0); results
  /// are bit-identical either way. `out` must be exactly data.size()
  /// elements.
  runtime::Status execute_program(
      std::span<const runtime::ProgramOp> ops, std::span<const std::uint32_t> data,
      std::span<std::uint32_t> out,
      std::chrono::milliseconds deadline = std::chrono::milliseconds{0}, bool staged = false);

  /// The server's ServiceMetrics snapshot as JSON.
  runtime::StatusOr<std::string> stats_json();

  [[nodiscard]] const Config& config() const noexcept { return config_; }
  /// Transport-level reconnects performed since construction.
  [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }

 private:
  /// Send `kind`+payload, receive the matching response frame.
  /// Reconnects and resends on transport failure (up to max_retries);
  /// returns the raw response frame (kError frames included — callers
  /// map them via ErrorResponse::to_status()).
  runtime::StatusOr<Frame> roundtrip(MsgKind kind, std::vector<std::uint8_t> payload);

  /// One attempt on the current connection; no retry logic.
  runtime::StatusOr<Frame> roundtrip_once(MsgKind kind,
                                          const std::vector<std::uint8_t>& payload,
                                          std::uint64_t request_id);

  /// Next wire request id: trace prefix in the high half, sequence in
  /// the low half.
  [[nodiscard]] std::uint64_t next_request_id() noexcept {
    return (static_cast<std::uint64_t>(config_.trace_prefix) << 32) |
           (next_seq_++ & 0xffff'ffffull);
  }

  Config config_;
  TcpStream stream_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t reconnects_ = 0;
};

}  // namespace hmm::net
