#pragma once
/// \file distributed.hpp
/// \brief The coordinator side of a distributed PERMUTE: fan a request's
///        element array out to shard permd instances as SHARD_EXEC row
///        bands, and gather the band responses for a zero-copy relay.
///
/// The engine is deliberately router-agnostic: it takes a list of shard
/// targets (address + an opaque caller index) and the request's wire
/// bytes, and reports per-target transport failures through a callback
/// so the caller (the router) can feed its breakers and health state.
/// The cross-shard column exchange itself is peer-to-peer — the
/// coordinator only ships each band once and reads each band back once,
/// so its network cost is one pass over the data regardless of the
/// shard count.
///
/// Failure discipline: distribution is all-or-nothing. Once SHARD_EXEC
/// frames are in flight there is no single-node fallback — a shard that
/// dies mid-exchange fails the whole request typed (kUnavailable), the
/// surviving shards abort their sessions on their own exchange
/// deadlines, and every pooled staging byte is released (tests verify
/// via pool-stats deltas). Falling back would re-run a half-exchanged
/// permutation and double the load exactly when the fleet is degraded.

#include <chrono>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "runtime/distributed.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"

namespace hmm::net {

/// One shard of a distributed execution. `caller_index` is opaque to the
/// engine — the router stores the backend index there so transport
/// failures can be attributed.
struct ShardTarget {
  std::string host;
  std::uint16_t port = 0;
  std::size_t caller_index = 0;
};

class DistributedPermuter {
 public:
  struct Config {
    /// Response cap when reading SHARD_EXEC_OK frames.
    std::uint32_t max_payload_bytes = 0;
    /// Per-shard connect and I/O budgets. The I/O budget must cover the
    /// shard's whole three-pass execution including both exchange
    /// rounds, not just the frame transfer.
    std::chrono::milliseconds connect_timeout{1'000};
    std::chrono::milliseconds io_timeout{30'000};
  };

  /// One gathered band response: the pooled frame storage plus the band
  /// element bytes borrowed from it (wire order, relayed verbatim).
  struct Band {
    util::PooledBuffer storage;
    std::span<const std::uint8_t> bytes;
    std::uint64_t elements = 0;
  };

  struct Result {
    std::vector<Band> bands;  ///< shard order; concatenation = output
    std::uint64_t total_elements = 0;
  };

  /// Execute `rows x cols` (= count) elements of plan `plan_id` across
  /// `targets.size()` shards. `data_bytes` is the request's element
  /// region in wire order (count * 4 bytes); band `s` is shipped as a
  /// borrowed subspan, never copied. `deadline_ms` (0 = none) rides to
  /// every shard. `on_transport_failure(i)` fires for each target whose
  /// failure was transport-level (connect/send/recv), not a typed
  /// answer. Blocks until every shard thread finished; on error the
  /// first failure (typed answers preferred over transport noise) is
  /// returned.
  [[nodiscard]] static runtime::StatusOr<Result> execute(
      const Config& config, std::uint64_t session_id, std::uint64_t plan_id,
      std::uint32_t deadline_ms, std::uint64_t rows, std::uint64_t cols,
      std::span<const std::uint8_t> data_bytes, std::span<const ShardTarget> targets,
      const std::function<void(std::size_t)>& on_transport_failure);
};

}  // namespace hmm::net
