#pragma once
/// \file protocol.hpp
/// \brief The HMMP message layer on top of the framing in wire.hpp:
///        request/response kinds, payload schemas, and the 1:1 mapping
///        between `runtime::StatusCode` and wire error codes.
///
/// A connection is a sequence of strictly alternating request/response
/// frames (no pipelining in v1; see docs/PROTOCOL.md for the normative
/// spec). Four request kinds cover the serving surface:
///
///   PING             liveness probe; the payload is echoed back verbatim
///   SUBMIT_PLAN      register a permutation mapping; returns a 64-bit
///                    plan id (the mapping's fingerprint) for later
///                    PERMUTE / EXECUTE_PROGRAM calls
///   PERMUTE          apply a registered plan to a payload of elements,
///                    under an optional relative deadline
///   EXECUTE_PROGRAM  apply an op *chain* (registered plans, their
///                    inverses, and parametric generators — see
///                    runtime/program.hpp) to a payload in one round
///                    trip; the server fuses the chain into a single
///                    composite plan unless flag bit0 forces the staged
///                    path
///   STATS            fetch the server's ServiceMetrics snapshot as JSON
///   SHARD_EXEC       coordinator -> shard: execute one row band of a
///                    distributed PERMUTE (three passes; the transposes
///                    happen as peer-to-peer column exchanges)
///   SHARD_XCHG       shard -> shard: one column block of an exchange
///                    round (each (src, dst) block moves exactly once)
///
/// Every failure travels as an ERROR response whose code is the wire
/// image of the `runtime::Status` the serving stack produced — the
/// mapping is a bijection (tested as such), with one renaming:
/// `kResourceExhausted` appears on the wire as RETRY_LATER, because
/// from the client's seat an admission-control rejection is precisely
/// an invitation to back off and retry. A degradation-ladder fallback,
/// by contrast, is invisible here: a degraded execution still returns
/// PERMUTE_OK (the ladder exists so the wire contract can stay simple).
///
/// Payload schemas (all integers little-endian; see ByteWriter/Reader):
///
///   SUBMIT_PLAN  req:  u64 n, u32 mapping[n]        (must be a bijection)
///   PLAN_OK      resp: u64 plan_id
///   PERMUTE      req:  u64 plan_id, u32 deadline_ms (0 = none),
///                      u32 elem_bytes (4 in v1), u64 count,
///                      u8 data[count * elem_bytes]
///   PERMUTE_OK   resp: u64 count, u8 data[count * elem_bytes]
///   EXECUTE_PROGRAM
///                req:  u32 deadline_ms (0 = none), u32 elem_bytes (4),
///                      u32 flags (bit0 = force staged; rest must be 0),
///                      u32 op_count (1..kMaxProgramOps),
///                      op_count x { u32 opcode, u32 reserved (0),
///                                   u64 arg },
///                      u64 count, u8 data[count * elem_bytes]
///                      (the data offset, 24 + 16*op_count, is a
///                      multiple of 8, so pooled payloads stay 4-byte
///                      aligned and decode in place)
///   PROGRAM_OK   resp: u64 count, u8 data[count * elem_bytes]
///                      (identical layout to PERMUTE_OK)
///   STATS_OK     resp: UTF-8 JSON bytes
///   SHARD_EXEC   req:  u32 version (1), u32 elem_bytes (4),
///                      u64 session_id, u64 plan_id, u32 deadline_ms,
///                      u32 shard_index, u32 shard_count (1..64),
///                      u32 reserved (0), u64 rows, u64 cols,
///                      shard_count x { u16 port, u16 host_len (1..255),
///                                      u8 host[host_len] },
///                      u8 pad[] (zeros, to an 8-byte boundary),
///                      u64 count, u8 data[count * elem_bytes]
///                      (the pad puts the band data on an 8-byte
///                      boundary so pooled payloads decode in place)
///   SHARD_EXEC_OK
///                resp: u64 count, u8 data[count * elem_bytes]
///                      (identical layout to PERMUTE_OK)
///   SHARD_XCHG   req:  u64 session_id, u32 round (1 | 2),
///                      u32 src_shard, u64 count,
///                      u8 data[count * elem_bytes]
///   SHARD_XCHG_OK
///                resp: empty
///   ERROR        resp: u32 code, UTF-8 message bytes

#include <chrono>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/wire.hpp"
#include "runtime/program.hpp"
#include "runtime/status.hpp"

namespace hmm::net {

/// Frame kinds. Responses set the high bit of the request they answer;
/// ERROR answers any request.
enum class MsgKind : std::uint16_t {
  kPing = 0x01,
  kSubmitPlan = 0x02,
  kPermute = 0x03,
  kStats = 0x04,
  kExecuteProgram = 0x05,
  kShardExec = 0x06,
  kShardXchg = 0x07,
  kPingOk = 0x81,
  kPlanOk = 0x82,
  kPermuteOk = 0x83,
  kStatsOk = 0x84,
  kProgramOk = 0x85,
  kShardExecOk = 0x86,
  kShardXchgOk = 0x87,
  kError = 0xff,
};

[[nodiscard]] std::string_view to_string(MsgKind kind) noexcept;
[[nodiscard]] bool is_request_kind(std::uint16_t kind) noexcept;

/// Wire error codes: the on-the-wire image of `runtime::StatusCode`.
/// Values are frozen by docs/PROTOCOL.md — append, never renumber.
enum class WireError : std::uint32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kDeadlineExceeded = 2,
  kRetryLater = 3,  ///< admission bound / registry full; back off and retry
  kPlanBuildFailed = 4,
  kCancelled = 5,
  kUnavailable = 6,
};

[[nodiscard]] std::string_view to_string(WireError e) noexcept;

/// StatusCode -> wire code. Total: every StatusCode has a wire image.
[[nodiscard]] WireError to_wire(runtime::StatusCode code) noexcept;
/// Wire code -> StatusCode. Codes outside the enum map to kUnavailable
/// (a peer speaking a newer protocol is a transient condition here).
[[nodiscard]] runtime::StatusCode from_wire(std::uint32_t code) noexcept;

/// In v1 every PERMUTE element is a 4-byte word (the paper's kernels
/// move 32-bit elements; wider payloads are a protocol rev away).
inline constexpr std::uint32_t kElemBytes = 4;

// --- Typed payloads -------------------------------------------------
// Each request/response payload gets an encode() producing the frame
// payload bytes and a decode() that is strict: trailing garbage, short
// fields, and out-of-range values all fail with a reason. decode()
// never throws on malformed input.

struct SubmitPlanRequest {
  std::vector<std::uint32_t> mapping;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static runtime::StatusOr<SubmitPlanRequest> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

struct PermuteRequest {
  std::uint64_t plan_id = 0;
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = no deadline
  std::vector<std::uint32_t> data;

  /// Saturating conversion of a caller-side deadline into the u32 wire
  /// field: negative -> 0 (no deadline), > UINT32_MAX ms (~49.7 days)
  /// -> UINT32_MAX. A plain cast would *wrap*, silently turning a huge
  /// "effectively no deadline" budget into a tiny one.
  [[nodiscard]] static std::uint32_t clamp_deadline(std::chrono::milliseconds deadline) noexcept {
    if (deadline.count() <= 0) return 0;
    constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
    if (static_cast<std::uint64_t>(deadline.count()) >= kMax) return kMax;
    return static_cast<std::uint32_t>(deadline.count());
  }

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static runtime::StatusOr<PermuteRequest> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

struct PermuteResponse {
  std::vector<std::uint32_t> data;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static runtime::StatusOr<PermuteResponse> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);

  /// Allocation-free decode for callers that already own the output
  /// array: validates exactly like decode(), additionally requiring the
  /// element count to equal `out.size()`, and writes the words straight
  /// into `out`.
  [[nodiscard]] static runtime::Status decode_into(std::span<const std::uint8_t> payload,
                                                   std::span<std::uint32_t> out);
};

// --- Borrowing payload views ----------------------------------------
// The serving hot path decodes requests from a pooled, connection-owned
// buffer (see read_frame_view). These views validate the payload with
// the same strictness as their owning decode() counterparts but borrow
// the element bytes instead of copying them — on a little-endian host
// with aligned storage the element array is usable in place, and the
// fallback is one bounded copy. A view is valid only while the payload
// buffer it was decoded from is.

/// Decoded u32 element region common to SUBMIT_PLAN and PERMUTE.
struct WordsView {
  std::uint64_t count = 0;
  std::span<const std::uint8_t> bytes;  ///< count * kElemBytes, wire (LE) order

  /// The elements as a directly-usable span: non-empty only on a
  /// little-endian host when the wire bytes are 4-byte aligned (true
  /// for both request layouts when the payload sits in pooled storage —
  /// see util::kBufferAlignment — since their element offsets are
  /// multiples of 4). Callers must handle the empty fallback.
  [[nodiscard]] std::span<const std::uint32_t> in_place() const noexcept {
    if constexpr (std::endian::native == std::endian::little) {
      if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(std::uint32_t) == 0) {
        return {reinterpret_cast<const std::uint32_t*>(bytes.data()), count};
      }
    }
    return {};
  }

  /// Decode the elements into caller storage (out.size() must be count).
  void copy_to(std::span<std::uint32_t> out) const noexcept;
};

struct SubmitPlanRequestView {
  WordsView mapping;

  [[nodiscard]] static runtime::StatusOr<SubmitPlanRequestView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

struct PermuteRequestView {
  std::uint64_t plan_id = 0;
  std::uint32_t deadline_ms = 0;
  WordsView data;

  [[nodiscard]] static runtime::StatusOr<PermuteRequestView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

// --- SHARD_EXEC / SHARD_XCHG -----------------------------------------
// Distributed permutation (docs/PROTOCOL.md §3.8): the coordinator
// splits a PERMUTE into row bands, sends each shard its band via
// SHARD_EXEC, and the shards realize the two transposes as direct
// peer-to-peer SHARD_XCHG block exchanges keyed by session_id.

/// SHARD_EXEC wire revision. Bumped only for incompatible layout
/// changes; a shard strictly rejects versions it does not speak.
inline constexpr std::uint32_t kShardProtocolVersion = 1;

/// Wire bound on the shard count (mirrors runtime::kMaxShards).
inline constexpr std::uint32_t kMaxWireShards = 64;

/// Bound on a peer hostname in the SHARD_EXEC peer table.
inline constexpr std::size_t kMaxShardHostLen = 255;

/// One entry of the SHARD_EXEC peer table. Entry `shard_index` is the
/// receiving shard itself (unused for sends, kept for symmetry).
struct ShardPeer {
  std::string host;
  std::uint16_t port = 0;
};

/// Owning SHARD_EXEC request. The coordinator hot path encodes with
/// `encode_prefix` + a borrowed band part (scatter-gather send); the
/// owning `encode`/`decode` pair serves tests and non-pooled callers.
struct ShardExecRequest {
  std::uint64_t session_id = 0;
  std::uint64_t plan_id = 0;
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = none
  std::uint32_t shard_index = 0;
  std::uint64_t rows = 0;  ///< matrix rows of the full plan's shape
  std::uint64_t cols = 0;  ///< matrix cols of the full plan's shape
  std::vector<ShardPeer> peers;  ///< size = shard_count, band order
  std::vector<std::uint32_t> band;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Everything before the band bytes (including the u64 count), padded
  /// so the band lands on an 8-byte payload offset.
  [[nodiscard]] std::vector<std::uint8_t> encode_prefix(std::uint64_t count) const;
  [[nodiscard]] static runtime::StatusOr<ShardExecRequest> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

/// Borrowing decode of SHARD_EXEC: the peer table is small and copied,
/// the band bytes are borrowed from the pooled payload (8-byte aligned
/// by layout, so `band.in_place()` succeeds on little-endian hosts).
struct ShardExecRequestView {
  std::uint64_t session_id = 0;
  std::uint64_t plan_id = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t shard_index = 0;
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::vector<ShardPeer> peers;
  WordsView band;

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return static_cast<std::uint32_t>(peers.size());
  }

  [[nodiscard]] static runtime::StatusOr<ShardExecRequestView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

/// Owning SHARD_XCHG request (one column block of an exchange round).
struct ShardXchgRequest {
  std::uint64_t session_id = 0;
  std::uint32_t round = 0;      ///< 1 after pass 1, 2 after pass 2
  std::uint32_t src_shard = 0;  ///< sender's shard index
  std::vector<std::uint32_t> block;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// The 24-byte header before the block bytes (scatter-gather send).
  [[nodiscard]] std::vector<std::uint8_t> encode_prefix(std::uint64_t count) const;
  [[nodiscard]] static runtime::StatusOr<ShardXchgRequest> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

/// Borrowing decode of SHARD_XCHG (block offset 24 — 8-byte aligned in
/// pooled storage, so the scatter reads the block in place).
struct ShardXchgRequestView {
  std::uint64_t session_id = 0;
  std::uint32_t round = 0;
  std::uint32_t src_shard = 0;
  WordsView block;

  [[nodiscard]] static runtime::StatusOr<ShardXchgRequestView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

/// Borrowing decode of the "u64 count + words" response layout shared
/// by PERMUTE_OK, PROGRAM_OK, and SHARD_EXEC_OK — the coordinator
/// gathers band responses zero-copy and relays them with scatter-gather
/// writes instead of reassembling the full array.
struct WordsResponseView {
  WordsView data;

  [[nodiscard]] static runtime::StatusOr<WordsResponseView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

// --- EXECUTE_PROGRAM -------------------------------------------------

/// Wire flags for EXECUTE_PROGRAM. Bits outside the mask are reserved
/// and must be zero (strictly rejected, so they stay available for
/// future revs).
inline constexpr std::uint32_t kProgramFlagStaged = 0x1;  ///< force the staged path
inline constexpr std::uint32_t kProgramFlagsMask = kProgramFlagStaged;

/// Owning EXECUTE_PROGRAM request (client-side encode + strict decode).
struct ExecuteProgramRequest {
  std::uint32_t deadline_ms = 0;  ///< relative; 0 = no deadline
  std::uint32_t flags = 0;        ///< kProgramFlag* bits
  std::vector<runtime::ProgramOp> ops;
  std::vector<std::uint32_t> data;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static runtime::StatusOr<ExecuteProgramRequest> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

/// Borrowing decode of EXECUTE_PROGRAM for the serving hot path. The op
/// list is small (<= runtime::kMaxProgramOps) and is copied; only the
/// element region is borrowed. Validation is strict: unsupported
/// element width, unknown flag bits, zero / over-cap op counts, nonzero
/// reserved op fields, and unknown opcodes are all typed
/// kInvalidArgument — nothing malformed survives to the service layer.
struct ExecuteProgramRequestView {
  std::uint32_t deadline_ms = 0;
  std::uint32_t flags = 0;
  std::vector<runtime::ProgramOp> ops;
  WordsView data;

  [[nodiscard]] bool force_staged() const noexcept {
    return (flags & kProgramFlagStaged) != 0;
  }

  [[nodiscard]] static runtime::StatusOr<ExecuteProgramRequestView> decode(
      std::span<const std::uint8_t> payload, std::uint64_t max_elements);
};

struct ErrorResponse {
  std::uint32_t code = 0;  ///< a WireError value
  std::string message;

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  [[nodiscard]] static runtime::StatusOr<ErrorResponse> decode(
      std::span<const std::uint8_t> payload);

  /// The Status a client surfaces for this error frame.
  [[nodiscard]] runtime::Status to_status() const;
};

/// Build an ERROR frame answering `request_id` from a serving Status.
[[nodiscard]] Frame make_error_frame(std::uint64_t request_id, const runtime::Status& status);

/// Build a success frame answering `request_id`. The payload is taken
/// by value and moved into the frame — no copy for callers that hand
/// over ownership (`make_ok_frame(id, kind, writer.take())`).
[[nodiscard]] Frame make_ok_frame(std::uint64_t request_id, MsgKind kind,
                                  std::vector<std::uint8_t> payload);

}  // namespace hmm::net
