#include "net/server.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "core/permuter.hpp"
#include "cpu/kernels.hpp"
#include "runtime/distributed.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "util/buffer_pool.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

Server::Server(runtime::RobustPermuteService& service, Config config)
    : service_(service),
      config_(std::move(config)),
      shard_sessions_(
          ShardSessionRegistry::Config{config_.shard_exchange_timeout,
                                       config_.max_shard_sessions},
          util::BufferPool::global()) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kInvalidArgument, "server already running");
  }
  StatusOr<TcpListener> bound = TcpListener::bind(config_.host, config_.port);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(bound).value();
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Connection threads exit at their next between-requests poll slice;
  // a thread inside a request finishes it (and its response) first —
  // that is the drain guarantee.
  {
    std::lock_guard lock(conn_mutex_);
    for (ConnSlot& slot : connections_) {
      if (slot.thread.joinable()) slot.thread.join();
    }
    connections_.clear();
  }
  // Every request was awaited by its connection thread, so the executor
  // is normally idle already; the timeout guards against a stalled
  // worker holding teardown hostage.
  (void)service_.wait_idle_for(config_.drain_timeout);
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  c.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  c.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  c.requests_error = requests_error_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.plans_registered = plans_registered_.load(std::memory_order_relaxed);
  c.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  c.shard_execs = shard_execs_.load(std::memory_order_relaxed);
  c.shard_blocks = shard_blocks_.load(std::memory_order_relaxed);
  c.shard_aborts = shard_aborts_.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t Server::plans() const {
  std::lock_guard lock(plans_mutex_);
  return plans_.size();
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<TcpStream> conn = listener_.accept(config_.poll_interval);
    {
      std::lock_guard lock(conn_mutex_);
      reap_finished_locked();
    }
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;  // poll slice
      break;  // listener is gone; stop() owns cleanup
    }
    TcpStream stream = std::move(conn).value();
    (void)stream.set_io_timeout(config_.io_timeout, config_.io_timeout);

    if (active_connections_.load(std::memory_order_acquire) >= config_.max_connections) {
      // Typed rejection instead of a dropped connection: the client
      // sees RETRY_LATER (request_id 0: this answers the connection
      // attempt, not any frame).
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)write_frame(stream, make_error_frame(
                                    0, Status(StatusCode::kResourceExhausted,
                                              "server at connection capacity; retry later")));
      continue;
    }

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(conn_mutex_);
    connections_.push_back(ConnSlot{
        std::thread([this, s = std::move(stream), done]() mutable {
          serve_connection(std::move(s));
          active_connections_.fetch_sub(1, std::memory_order_acq_rel);
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serve_connection(TcpStream stream) {
  // Per-connection pooled payload storage, reused across requests
  // (grow-only; see read_frame_view): the read path of a steady request
  // stream touches neither the allocator nor the pool's free lists.
  util::BufferPool& pool = util::BufferPool::global();
  util::PooledBuffer payload_storage;
  // Idle accounting runs between frames only: once a frame has started,
  // the per-direction io_timeout owns the slow-read budget.
  const bool idle_limited = config_.idle_timeout.count() > 0;
  auto last_frame = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll in short slices so stop() is honored between requests.
    StatusOr<bool> readable = stream.poll_readable(config_.poll_interval);
    if (!readable.ok()) return;
    if (!readable.value()) {
      if (idle_limited &&
          std::chrono::steady_clock::now() - last_frame >= config_.idle_timeout) {
        // A slot-holding connection that never starts a frame: close it
        // quietly (no ERROR — there is no request to answer).
        idle_closed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      continue;
    }

    StatusOr<FrameView> request =
        read_frame_view(stream, pool, payload_storage, config_.max_payload_bytes);
    if (!request.ok()) {
      const StatusCode code = request.status().code();
      if (code == StatusCode::kInvalidArgument) {
        // Framing violation: answer typed (best effort), then close —
        // the stream position is unrecoverable.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)write_frame(stream, make_error_frame(0, request.status()));
      } else if (code == StatusCode::kResourceExhausted) {
        // The pool refused the payload buffer with the payload still on
        // the socket — same unrecoverable position, but the client gets
        // RETRY_LATER rather than a protocol error.
        (void)write_frame(stream, make_error_frame(0, request.status()));
      }
      return;  // transport errors (EOF/reset/timeout) close quietly
    }

    bool wrote_error = false;
    const Status written = respond(stream, request.value(), wrote_error);
    // Count the response only once it actually reached the wire, and
    // count it by what it was — a served error is not a served success.
    if (!written.is_ok()) return;
    (wrote_error ? requests_error_ : requests_ok_).fetch_add(1, std::memory_order_relaxed);
    last_frame = std::chrono::steady_clock::now();
  }
}

Status Server::write_timed(TcpStream& stream, const Frame& frame, bool& wrote_error) {
  // The serialize span covers encode + socket write: the last leg of
  // the request's wall time, invisible to the executor's breakdown.
  util::Stopwatch serialize_clock;
  const Status written = write_frame(stream, frame);
  service_.metrics().record_phase(runtime::Phase::kSerialize,
                                  static_cast<std::uint64_t>(serialize_clock.nanos()));
  wrote_error = static_cast<MsgKind>(frame.kind) == MsgKind::kError;
  return written;
}

Status Server::write_timed_parts(TcpStream& stream, MsgKind kind, std::uint64_t request_id,
                                 std::span<const ConstBuffer> parts) {
  util::Stopwatch serialize_clock;
  const Status written = write_frame_parts(
      stream, static_cast<std::uint16_t>(kind), request_id, parts);
  service_.metrics().record_phase(runtime::Phase::kSerialize,
                                  static_cast<std::uint64_t>(serialize_clock.nanos()));
  return written;
}

Status Server::respond(TcpStream& stream, const FrameView& request, bool& wrote_error) {
  try {
    switch (static_cast<MsgKind>(request.kind)) {
      case MsgKind::kPing: {
        // Zero-copy echo: the payload goes back out straight from the
        // connection's pooled read buffer.
        const ConstBuffer parts[] = {{request.payload.data(), request.payload.size()}};
        return write_timed_parts(stream, MsgKind::kPingOk, request.request_id, parts);
      }
      case MsgKind::kSubmitPlan:
        return write_timed(stream, handle_submit_plan(request), wrote_error);
      case MsgKind::kPermute:
        return respond_permute(stream, request, wrote_error);
      case MsgKind::kExecuteProgram:
        return respond_program(stream, request, wrote_error);
      case MsgKind::kShardExec:
        return respond_shard_exec(stream, request, wrote_error);
      case MsgKind::kShardXchg:
        return respond_shard_xchg(stream, request, wrote_error);
      case MsgKind::kStats:
        return write_timed(stream, handle_stats(request.request_id), wrote_error);
      default:
        return write_timed(stream,
                           make_error_frame(request.request_id,
                                            Status(StatusCode::kInvalidArgument,
                                                   "unknown request kind")),
                           wrote_error);
    }
  } catch (const std::bad_alloc&) {
    return write_timed(stream,
                       make_error_frame(request.request_id,
                                        Status(StatusCode::kResourceExhausted,
                                               "allocation failed")),
                       wrote_error);
  } catch (const std::exception& e) {
    // Last-resort boundary: a request must never take the connection
    // (let alone the process) down without a typed answer.
    return write_timed(
        stream, make_error_frame(request.request_id, Status(StatusCode::kUnavailable, e.what())),
        wrote_error);
  }
}

Frame Server::handle_submit_plan(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<SubmitPlanRequestView> req =
      SubmitPlanRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return make_error_frame(request.request_id, req.status());
  const WordsView& mapping = req.value().mapping;

  // One copy, wire straight into the aligned storage the Permutation
  // keeps. (The former path decoded into a std::vector and copied that
  // into aligned words — two traversals of the mapping per SUBMIT_PLAN.)
  util::aligned_vector<std::uint32_t> words(mapping.count);
  mapping.copy_to({words.data(), words.size()});
  if (!perm::Permutation::is_valid({words.data(), words.size()})) {
    return make_error_frame(
        request.request_id,
        Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: mapping is not a bijection"));
  }
  auto plan = std::make_shared<const perm::Permutation>(std::move(words));
  const std::uint64_t plan_id = runtime::fingerprint_permutation(*plan).value;

  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(plan_id);
    if (it == plans_.end()) {
      if (plans_.size() >= config_.max_plans) {
        return make_error_frame(
            request.request_id,
            Status(StatusCode::kResourceExhausted, "plan registry full; retry later"));
      }
      plans_.emplace(plan_id, std::move(plan));
      plans_registered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ByteWriter w;
  w.put_u64(plan_id);
  return make_ok_frame(request.request_id, MsgKind::kPlanOk, w.take());
}

Status Server::respond_permute(TcpStream& stream, const FrameView& request, bool& wrote_error) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<PermuteRequestView> req = PermuteRequestView::decode(request.payload, max_elements);
  if (!req.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, req.status()), wrote_error);
  }
  const PermuteRequestView& permute = req.value();
  const std::uint64_t count = permute.data.count;

  std::shared_ptr<const perm::Permutation> plan;
  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(permute.plan_id);
    if (it != plans_.end()) plan = it->second;
  }
  if (plan == nullptr) {
    return write_timed(stream,
                       make_error_frame(request.request_id,
                                        Status(StatusCode::kInvalidArgument,
                                               "PERMUTE: unknown plan id (SUBMIT_PLAN it first)")),
                       wrote_error);
  }
  if (count != plan->size()) {
    return write_timed(
        stream,
        make_error_frame(request.request_id,
                         Status(StatusCode::kInvalidArgument,
                                "PERMUTE: element count does not match the plan size")),
        wrote_error);
  }

  // The client's relative budget becomes an absolute executor deadline
  // here — queueing and kernel phases all draw from it.
  runtime::RequestOptions opts;
  if (permute.deadline_ms > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(permute.deadline_ms);
  }
  // The wire request id doubles as the trace id: the client controls
  // it (trace prefix in the high half), we echo it in the response and
  // thread it to the slow-request log.
  opts.trace_id = request.request_id;

  util::BufferPool& pool = util::BufferPool::global();

  // Input elements: on a little-endian host the wire bytes in the
  // pooled read buffer *are* the element array (the PERMUTE data
  // offset, 24 bytes, keeps them 4-aligned in 128-byte-aligned
  // storage), so the kernels read the request payload in place. The
  // fallback is one bounded copy into a pooled buffer.
  std::span<const std::uint32_t> in = permute.data.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(count * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return write_timed(stream,
                         make_error_frame(request.request_id,
                                          Status(StatusCode::kResourceExhausted,
                                                 "buffer pool refused the request buffer")),
                         wrote_error);
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(count);
    permute.data.copy_to(copy_span);
    in = copy_span;
  }

  // Output elements: pooled (a steady stream of same-sized PERMUTEs
  // recycles the same blocks), serialized scatter-gather below without
  // ever being copied into a response payload.
  util::PooledBuffer out = pool.try_acquire(count * sizeof(std::uint32_t));
  if (!out.valid()) {
    return write_timed(stream,
                       make_error_frame(request.request_id,
                                        Status(StatusCode::kResourceExhausted,
                                               "buffer pool refused the response buffer")),
                       wrote_error);
  }
  const std::span<std::uint32_t> out_span = out.as_span<std::uint32_t>(count);

  StatusOr<std::future<Status>> submitted =
      service_.submit<std::uint32_t>(*plan, in, out_span, opts);
  if (!submitted.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, submitted.status()),
                       wrote_error);
  }
  const Status outcome = submitted.value().get();
  if (!outcome.is_ok()) {
    return write_timed(stream, make_error_frame(request.request_id, outcome), wrote_error);
  }

  // PERMUTE_OK = [u64 count | elements]: the count header lives on the
  // stack, the element bytes go out straight from the pooled result
  // buffer (byteswapped in place first on a big-endian host).
  std::uint8_t count_header[8];
  for (int i = 0; i < 8; ++i) count_header[i] = static_cast<std::uint8_t>(count >> (8 * i));
  if constexpr (std::endian::native != std::endian::little) {
    for (std::uint32_t& w : out_span) {
      w = ((w & 0xff000000u) >> 24) | ((w & 0x00ff0000u) >> 8) | ((w & 0x0000ff00u) << 8) |
          ((w & 0x000000ffu) << 24);
    }
  }
  const ConstBuffer parts[] = {{count_header, sizeof(count_header)},
                               {out_span.data(), count * sizeof(std::uint32_t)}};
  return write_timed_parts(stream, MsgKind::kPermuteOk, request.request_id, parts);
}

Status Server::respond_program(TcpStream& stream, const FrameView& request, bool& wrote_error) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ExecuteProgramRequestView> req =
      ExecuteProgramRequestView::decode(request.payload, max_elements);
  if (!req.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, req.status()), wrote_error);
  }
  const ExecuteProgramRequestView& program_req = req.value();
  const std::uint64_t count = program_req.data.count;

  runtime::ProgramRequestOptions opts;
  if (program_req.deadline_ms > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(program_req.deadline_ms);
  }
  opts.trace_id = request.request_id;
  opts.force_staged = program_req.force_staged();

  // The wire plan id is the mapping fingerprint, so the registry *is*
  // the resolver. The lambda takes the lock per lookup — an op chain
  // has at most kMaxProgramOps of them.
  const runtime::PlanResolver resolver =
      [this](std::uint64_t fingerprint) -> std::shared_ptr<const perm::Permutation> {
    std::lock_guard lock(plans_mutex_);
    const auto it = plans_.find(fingerprint);
    return it == plans_.end() ? nullptr : it->second;
  };

  util::BufferPool& pool = util::BufferPool::global();

  // Input elements in place when aligned (the EXECUTE_PROGRAM data
  // offset, 24 + 16*op_count, is a multiple of 8); bounded pooled copy
  // otherwise — same contract as PERMUTE.
  std::span<const std::uint32_t> in = program_req.data.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(count * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return write_timed(stream,
                         make_error_frame(request.request_id,
                                          Status(StatusCode::kResourceExhausted,
                                                 "buffer pool refused the request buffer")),
                         wrote_error);
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(count);
    program_req.data.copy_to(copy_span);
    in = copy_span;
  }

  util::PooledBuffer out = pool.try_acquire(count * sizeof(std::uint32_t));
  if (!out.valid()) {
    return write_timed(stream,
                       make_error_frame(request.request_id,
                                        Status(StatusCode::kResourceExhausted,
                                               "buffer pool refused the response buffer")),
                       wrote_error);
  }
  const std::span<std::uint32_t> out_span = out.as_span<std::uint32_t>(count);

  runtime::Program program;
  program.ops = program_req.ops;
  StatusOr<std::future<Status>> submitted =
      service_.submit_program<std::uint32_t>(program, resolver, in, out_span, opts);
  if (!submitted.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, submitted.status()),
                       wrote_error);
  }
  const Status outcome = submitted.value().get();
  if (!outcome.is_ok()) {
    return write_timed(stream, make_error_frame(request.request_id, outcome), wrote_error);
  }

  // PROGRAM_OK mirrors PERMUTE_OK byte for byte: count header + the
  // pooled result, scatter-gathered.
  std::uint8_t count_header[8];
  for (int i = 0; i < 8; ++i) count_header[i] = static_cast<std::uint8_t>(count >> (8 * i));
  if constexpr (std::endian::native != std::endian::little) {
    for (std::uint32_t& w : out_span) {
      w = ((w & 0xff000000u) >> 24) | ((w & 0x00ff0000u) >> 8) | ((w & 0x0000ff00u) << 8) |
          ((w & 0x000000ffu) << 24);
    }
  }
  const ConstBuffer parts[] = {{count_header, sizeof(count_header)},
                               {out_span.data(), count * sizeof(std::uint32_t)}};
  return write_timed_parts(stream, MsgKind::kProgramOk, request.request_id, parts);
}

namespace {

/// Milliseconds left until `deadline`, floored at 1ms so socket
/// timeouts stay armed right up to the abort.
std::chrono::milliseconds budget_until(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return std::max(left, std::chrono::milliseconds(1));
}

/// Push one exchange block at a peer and wait for its ack. The link is
/// connected lazily on the first round and reused for the second.
Status send_shard_block(TcpStream& link, bool& connected, const ShardPeer& peer,
                        std::uint64_t session_id, std::uint32_t round, std::uint32_t src,
                        std::span<const std::uint32_t> block,
                        std::chrono::steady_clock::time_point deadline,
                        util::BufferPool& pool) {
  if (!connected) {
    StatusOr<TcpStream> conn = tcp_connect(peer.host, peer.port, budget_until(deadline));
    if (!conn.ok()) return conn.status();
    link = std::move(conn).value();
    connected = true;
  }
  const auto budget = budget_until(deadline);
  (void)link.set_io_timeout(budget, budget);

  ShardXchgRequest header;
  header.session_id = session_id;
  header.round = round;
  header.src_shard = src;
  const std::vector<std::uint8_t> prefix = header.encode_prefix(block.size());
  Status sent;
  if constexpr (std::endian::native == std::endian::little) {
    // Native words are already wire order: the block leaves straight
    // from the extraction scratch, scatter-gathered.
    const ConstBuffer parts[] = {{prefix.data(), prefix.size()},
                                 {block.data(), block.size() * sizeof(std::uint32_t)}};
    sent = write_frame_parts(link, static_cast<std::uint16_t>(MsgKind::kShardXchg),
                             session_id, parts);
  } else {
    header.block.assign(block.begin(), block.end());
    sent = write_frame(link, make_ok_frame(session_id, MsgKind::kShardXchg, header.encode()));
  }
  if (!sent.is_ok()) return sent;

  util::PooledBuffer ack_storage;
  StatusOr<FrameView> ack = read_frame_view(link, pool, ack_storage, 4096);
  if (!ack.ok()) return ack.status();
  if (static_cast<MsgKind>(ack.value().kind) == MsgKind::kError) {
    StatusOr<ErrorResponse> err = ErrorResponse::decode(ack.value().payload);
    if (err.ok()) return err.value().to_status();
    return Status(StatusCode::kUnavailable, "peer shard sent a malformed error frame");
  }
  if (static_cast<MsgKind>(ack.value().kind) != MsgKind::kShardXchgOk ||
      ack.value().request_id != session_id) {
    return Status(StatusCode::kUnavailable, "peer shard sent an unexpected exchange ack");
  }
  return Status::ok();
}

}  // namespace

Status Server::respond_shard_exec(TcpStream& stream, const FrameView& request,
                                  bool& wrote_error) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ShardExecRequestView> req = ShardExecRequestView::decode(request.payload, max_elements);
  if (!req.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, req.status()), wrote_error);
  }
  const ShardExecRequestView& exec = req.value();
  const std::uint32_t me = exec.shard_index;

  auto fail = [&](const Status& why) {
    shard_aborts_.fetch_add(1, std::memory_order_relaxed);
    return write_timed(stream, make_error_frame(request.request_id, why), wrote_error);
  };

  StatusOr<runtime::BandPlan> bands_or =
      runtime::BandPlan::build(exec.rows, exec.cols, exec.shard_count());
  if (!bands_or.ok()) return fail(bands_or.status());
  if (exec.band.count != bands_or.value().band_elements(me)) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: band element count does not match the band split"));
  }

  // Open the session *before* the (possibly slow) plan compile: peers'
  // round-1 blocks can land in staging while this shard still builds.
  StatusOr<std::shared_ptr<ShardSession>> session_or =
      shard_sessions_.create(exec.session_id, std::move(bands_or).value(), me);
  if (!session_or.ok()) return fail(session_or.status());
  std::shared_ptr<ShardSession> session = std::move(session_or).value();
  struct SessionGuard {
    ShardSessionRegistry& registry;
    std::uint64_t id;
    ~SessionGuard() { registry.erase(id); }
  } session_guard{shard_sessions_, exec.session_id};
  const runtime::BandPlan& bands = session->plan();

  // The exchange budget is the server's knob, tightened by the
  // request's own deadline when it carries one.
  const auto started = std::chrono::steady_clock::now();
  auto deadline = started + config_.shard_exchange_timeout;
  if (exec.deadline_ms > 0) {
    deadline = std::min(deadline, started + std::chrono::milliseconds(exec.deadline_ms));
  }

  std::shared_ptr<const perm::Permutation> plan;
  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(exec.plan_id);
    if (it != plans_.end()) plan = it->second;
  }
  if (plan == nullptr) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: unknown plan id (SUBMIT_PLAN it first)"));
  }
  if (plan->size() != exec.rows * exec.cols) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: matrix shape does not match the plan size"));
  }

  // Compile (or fetch) the *full* scheduled plan — cached by
  // fingerprint, so every band of a hot plan shares one compile — and
  // slice this shard's rows of each pass as subspans.
  std::shared_ptr<const core::OfflinePermuter<std::uint32_t>> permuter =
      service_.cache().acquire<std::uint32_t>(*plan, service_.config().machine,
                                              core::Strategy::kScheduled);
  const core::ScheduledPlan* splan = permuter->plan();
  if (splan == nullptr) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: plan is not schedulable on this machine"));
  }
  if (splan->shape().rows != exec.rows || splan->shape().cols != exec.cols) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: matrix shape does not match the compiled plan"));
  }
  StatusOr<runtime::BandPlanner> planner_or =
      runtime::BandPlanner::build(*splan, exec.shard_count());
  if (!planner_or.ok()) return fail(planner_or.status());
  const runtime::BandPlanner& planner = planner_or.value();

  util::BufferPool& pool = util::BufferPool::global();
  const std::uint64_t band_elems = bands.band_elements(me);

  std::span<const std::uint32_t> in = exec.band.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(band_elems * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return fail(Status(StatusCode::kResourceExhausted,
                         "buffer pool refused the shard input buffer"));
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(band_elems);
    exec.band.copy_to(copy_span);
    in = copy_span;
  }

  std::uint64_t max_block = 0;
  for (std::uint32_t dst = 0; dst < bands.shards(); ++dst) {
    max_block = std::max({max_block, bands.block(1, me, dst).elements(),
                          bands.block(2, me, dst).elements()});
  }
  util::PooledBuffer y = pool.try_acquire(band_elems * sizeof(std::uint32_t));
  util::PooledBuffer w =
      pool.try_acquire(bands.transposed_elements(me) * sizeof(std::uint32_t));
  util::PooledBuffer result = pool.try_acquire(band_elems * sizeof(std::uint32_t));
  util::PooledBuffer scratch = pool.try_acquire(max_block * sizeof(std::uint32_t));
  if (!y.valid() || !w.valid() || !result.valid() || !scratch.valid()) {
    return fail(Status(StatusCode::kResourceExhausted,
                       "buffer pool refused the shard pass buffers"));
  }
  const std::span<std::uint32_t> y_span = y.as_span<std::uint32_t>(band_elems);
  const std::span<std::uint32_t> w_span =
      w.as_span<std::uint32_t>(bands.transposed_elements(me));
  const std::span<std::uint32_t> result_span = result.as_span<std::uint32_t>(band_elems);

  util::ThreadPool& workers = util::ThreadPool::global();

  // Pass 1 (row-wise over this band's rows of the rows x cols view).
  const runtime::BandPassView p1 = planner.pass1(me);
  cpu::row_wise_pass<std::uint32_t>(workers, in, y_span, p1.rows, p1.cols, p1.phat, p1.q);

  // Round-1 exchange: one block per peer, each exactly once; the self
  // block scatters locally through the same exactly-once bookkeeping.
  std::vector<TcpStream> links(bands.shards());
  std::vector<std::uint8_t> connected(bands.shards(), 0);
  auto run_round = [&](std::uint32_t round,
                       std::span<const std::uint32_t> local) -> Status {
    for (std::uint32_t dst = 0; dst < bands.shards(); ++dst) {
      const std::uint64_t elems = bands.block(round, me, dst).elements();
      const std::span<std::uint32_t> block = scratch.as_span<std::uint32_t>(elems);
      if (round == 1) {
        runtime::extract_block_round1(bands, me, dst, local, block);
      } else {
        runtime::extract_block_round2(bands, me, dst, local, block);
      }
      if (dst == me) {
        const Status local_st = session->accept_block(round, me, block);
        if (!local_st.is_ok()) return local_st;
        continue;
      }
      bool link_up = connected[dst] != 0;
      const Status sent =
          send_shard_block(links[dst], link_up, exec.peers[dst], exec.session_id, round, me,
                           block, deadline, pool);
      connected[dst] = link_up ? 1 : 0;
      if (!sent.is_ok()) {
        // A dead peer mid-exchange is the canonical distributed
        // failure: surface it transient so the coordinator fails the
        // request typed instead of hanging on this shard.
        if (sent.code() == StatusCode::kInvalidArgument) return sent;
        return Status(StatusCode::kUnavailable,
                      "peer shard " + std::to_string(dst) +
                          " unreachable during exchange: " + sent.message());
      }
    }
    return Status::ok();
  };

  Status round_st = run_round(1, y_span);
  if (!round_st.is_ok()) return fail(round_st);
  round_st = session->wait_round(1, deadline);
  if (!round_st.is_ok()) return fail(round_st);

  // Pass 2 (row-wise over this shard's rows of the transposed view).
  const runtime::BandPassView p2 = planner.pass2(me);
  cpu::row_wise_pass<std::uint32_t>(workers, std::span<const std::uint32_t>(session->z_span()),
                                    w_span, p2.rows, p2.cols, p2.phat, p2.q);

  round_st = run_round(2, w_span);
  if (!round_st.is_ok()) return fail(round_st);
  round_st = session->wait_round(2, deadline);
  if (!round_st.is_ok()) return fail(round_st);

  // Pass 3 (row-wise, back in the rows x cols view): the result is this
  // band's rows of the final array, contiguous.
  const runtime::BandPassView p3 = planner.pass3(me);
  cpu::row_wise_pass<std::uint32_t>(workers, std::span<const std::uint32_t>(session->x_span()),
                                    result_span, p3.rows, p3.cols, p3.phat, p3.q);

  shard_execs_.fetch_add(1, std::memory_order_relaxed);
  std::uint8_t count_header[8];
  for (int i = 0; i < 8; ++i) {
    count_header[i] = static_cast<std::uint8_t>(band_elems >> (8 * i));
  }
  if constexpr (std::endian::native != std::endian::little) {
    for (std::uint32_t& word : result_span) {
      word = ((word & 0xff000000u) >> 24) | ((word & 0x00ff0000u) >> 8) |
             ((word & 0x0000ff00u) << 8) | ((word & 0x000000ffu) << 24);
    }
  }
  const ConstBuffer parts[] = {{count_header, sizeof(count_header)},
                               {result_span.data(), band_elems * sizeof(std::uint32_t)}};
  return write_timed_parts(stream, MsgKind::kShardExecOk, request.request_id, parts);
}

Status Server::respond_shard_xchg(TcpStream& stream, const FrameView& request,
                                  bool& wrote_error) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ShardXchgRequestView> req = ShardXchgRequestView::decode(request.payload, max_elements);
  if (!req.ok()) {
    return write_timed(stream, make_error_frame(request.request_id, req.status()), wrote_error);
  }
  const ShardXchgRequestView& xchg = req.value();

  // The block may outrace this shard's own SHARD_EXEC: wait (bounded)
  // for the session instead of bouncing the peer into a retry loop.
  std::shared_ptr<ShardSession> session = shard_sessions_.await(
      xchg.session_id, std::chrono::steady_clock::now() + config_.shard_exchange_timeout);
  if (session == nullptr) {
    return write_timed(stream,
                       make_error_frame(request.request_id,
                                        Status(StatusCode::kUnavailable,
                                               "SHARD_XCHG: no such shard session")),
                       wrote_error);
  }

  std::span<const std::uint32_t> block = xchg.block.in_place();
  util::PooledBuffer block_copy;
  if (block.empty()) {
    util::BufferPool& pool = util::BufferPool::global();
    block_copy = pool.try_acquire(xchg.block.count * sizeof(std::uint32_t));
    if (!block_copy.valid()) {
      return write_timed(stream,
                         make_error_frame(request.request_id,
                                          Status(StatusCode::kResourceExhausted,
                                                 "buffer pool refused the block buffer")),
                         wrote_error);
    }
    const std::span<std::uint32_t> copy_span =
        block_copy.as_span<std::uint32_t>(xchg.block.count);
    xchg.block.copy_to(copy_span);
    block = copy_span;
  }

  const Status accepted = session->accept_block(xchg.round, xchg.src_shard, block);
  if (!accepted.is_ok()) {
    return write_timed(stream, make_error_frame(request.request_id, accepted), wrote_error);
  }
  shard_blocks_.fetch_add(1, std::memory_order_relaxed);
  return write_timed(stream, make_ok_frame(request.request_id, MsgKind::kShardXchgOk, {}),
                     wrote_error);
}

Frame Server::handle_stats(std::uint64_t request_id) {
  const std::string service_json = service_.metrics().snapshot().to_json();
  // Splice the server-side counters the service layer cannot see
  // (connection admission, framing violations, idle closes) in front of
  // the service fields: {"server":{...},<service fields>}.
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"server\":{"
     << "\"connections_accepted\":" << c.connections_accepted
     << ",\"connections_rejected\":" << c.connections_rejected
     << ",\"requests_ok\":" << c.requests_ok
     << ",\"requests_error\":" << c.requests_error
     << ",\"protocol_errors\":" << c.protocol_errors
     << ",\"plans_registered\":" << c.plans_registered
     << ",\"idle_closed\":" << c.idle_closed
     << ",\"shard_execs\":" << c.shard_execs
     << ",\"shard_blocks\":" << c.shard_blocks
     << ",\"shard_aborts\":" << c.shard_aborts
     << ",\"shard_sessions\":" << shard_sessions_.size()
     << ",\"plans\":" << plans() << "}";
  if (service_json.size() > 2 && service_json.front() == '{') {
    os << "," << service_json.substr(1);
  } else {
    os << "}";
  }
  ByteWriter w;
  w.put_string(os.str());
  return make_ok_frame(request_id, MsgKind::kStatsOk, w.take());
}

}  // namespace hmm::net
