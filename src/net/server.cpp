#include "net/server.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "core/permuter.hpp"
#include "cpu/kernels.hpp"
#include "runtime/distributed.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "util/buffer_pool.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

Server::Server(runtime::RobustPermuteService& service, Config config)
    : service_(service),
      config_(std::move(config)),
      shard_sessions_(
          ShardSessionRegistry::Config{config_.shard_exchange_timeout,
                                       config_.max_shard_sessions,
                                       config_.max_shard_hold_bytes},
          util::BufferPool::global()) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kInvalidArgument, "server already running");
  }
  StatusOr<TcpListener> bound = TcpListener::bind(config_.host, config_.port);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(bound).value();
  port_ = listener_.port();

  const std::uint32_t io_threads = std::max(1u, config_.io_threads);
  reactors_.clear();
  reactors_.reserve(io_threads);
  for (std::uint32_t i = 0; i < io_threads; ++i) {
    auto reactor = std::make_unique<Reactor>();
    StatusOr<Epoll> epoll = Epoll::create();
    StatusOr<EventFd> wakeup = EventFd::create();
    if (!epoll.ok() || !wakeup.ok()) {
      reactors_.clear();
      listener_.close();
      return !epoll.ok() ? epoll.status() : wakeup.status();
    }
    reactor->epoll = std::move(epoll).value();
    reactor->wakeup = std::move(wakeup).value();
    // Connection ids start at 1; id 0 is the reactor's own doorbell.
    if (Status s = reactor->epoll.add(reactor->wakeup.fd(), kEpollIn, 0); !s.is_ok()) {
      reactors_.clear();
      listener_.close();
      return s;
    }
    reactors_.push_back(std::move(reactor));
  }

  stop_.store(false, std::memory_order_release);
  {
    std::lock_guard lock(work_mutex_);
    workers_stop_ = false;
    work_.clear();
  }
  running_.store(true, std::memory_order_release);

  for (auto& reactor : reactors_) {
    reactor->thread = std::thread([this, r = reactor.get()] { reactor_loop(*r); });
  }
  std::uint32_t handlers = config_.handler_threads;
  if (handlers == 0) {
    handlers = std::max(16u, 2 * std::max(1u, std::thread::hardware_concurrency()));
  }
  handler_threads_.reserve(handlers);
  for (std::uint32_t i = 0; i < handlers; ++i) {
    handler_threads_.emplace_back([this] { handler_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // drain_deadline_ is published by the release store on stop_ and read
  // only after reactors observe stop_ == true.
  drain_deadline_ = std::chrono::steady_clock::now() + config_.drain_timeout;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();

  // Reactors drain: every in-flight request finishes and its response
  // is flushed (bounded by drain_timeout) before the loop exits. The
  // handler pool must outlive them — it is what completes those
  // requests — so it joins after.
  for (auto& reactor : reactors_) reactor->wakeup.signal();
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }
  {
    std::lock_guard lock(work_mutex_);
    workers_stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : handler_threads_) {
    if (t.joinable()) t.join();
  }
  handler_threads_.clear();
  {
    std::lock_guard lock(shard_thread_mutex_);
    for (ShardSlot& slot : shard_threads_) {
      if (slot.thread.joinable()) slot.thread.join();
    }
    shard_threads_.clear();
  }
  // Every request was awaited by a handler, so the executor is normally
  // idle already; the timeout guards against a stalled worker holding
  // teardown hostage.
  (void)service_.wait_idle_for(config_.drain_timeout);
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  c.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  c.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  c.requests_error = requests_error_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.plans_registered = plans_registered_.load(std::memory_order_relaxed);
  c.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  c.shard_execs = shard_execs_.load(std::memory_order_relaxed);
  c.shard_blocks = shard_blocks_.load(std::memory_order_relaxed);
  c.shard_aborts = shard_aborts_.load(std::memory_order_relaxed);
  c.shard_hold_rejections = shard_sessions_.hold_rejections();
  return c;
}

std::uint64_t Server::plans() const {
  std::lock_guard lock(plans_mutex_);
  return plans_.size();
}

// ---------------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------------

void Server::accept_loop() {
  util::BufferPool& pool = util::BufferPool::global();
  std::size_t round_robin = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<TcpStream> accepted = listener_.accept(config_.poll_interval);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kDeadlineExceeded) continue;  // poll slice
      break;  // listener is gone; stop() owns cleanup
    }
    TcpStream stream = std::move(accepted).value();
    (void)stream.set_nonblocking(true);

    const std::uint64_t id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    std::shared_ptr<Conn> conn;
    if (active_connections_.load(std::memory_order_acquire) >= config_.max_connections) {
      // Typed rejection instead of a dropped connection: the client
      // sees RETRY_LATER (request_id 0: this answers the connection
      // attempt, not any frame). The frame is flushed by a reactor
      // under reject_write_budget — the accept thread never writes, so
      // a hostile peer that refuses to read cannot freeze accepts.
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      conn = std::make_shared<Conn>(id, std::move(stream), pool, config_.max_payload_bytes);
      conn->rejected = true;
      conn->closing = true;
      conn->reject_deadline =
          std::chrono::steady_clock::now() + config_.reject_write_budget;
      conn->writer.enqueue(to_outbound_tagged(
          make_error_frame(0, Status(StatusCode::kResourceExhausted,
                                     "server at connection capacity; retry later")),
          kTagNone));
    } else {
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      active_connections_.fetch_add(1, std::memory_order_acq_rel);
      conn = std::make_shared<Conn>(id, std::move(stream), pool, config_.max_payload_bytes);
    }

    Reactor& reactor = *reactors_[round_robin++ % reactors_.size()];
    {
      std::lock_guard lock(reactor.inbox_mutex);
      reactor.incoming.push_back(std::move(conn));
    }
    reactor.wakeup.signal();
  }
}

// ---------------------------------------------------------------------------
// Reactor
// ---------------------------------------------------------------------------

void Server::on_frame_complete(void* ctx, const OutboundFrame& frame) {
  auto* self = static_cast<Server*>(ctx);
  if (frame.tag == kTagOk) {
    self->requests_ok_.fetch_add(1, std::memory_order_relaxed);
  } else if (frame.tag == kTagError) {
    self->requests_error_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::update_interest(Reactor& r, Conn& conn) {
  if (conn.closed) return;
  std::uint32_t want = 0;
  if (!conn.closing && !conn.in_flight && !stop_.load(std::memory_order_acquire)) {
    want |= kEpollIn;
  }
  if (!conn.writer.idle()) want |= kEpollOut;
  if (want != conn.armed) {
    // events == 0 is legal: ERR/HUP are still delivered, so a parked
    // in-flight connection's death is noticed.
    if (r.epoll.mod(conn.stream.fd(), want, conn.id).is_ok()) conn.armed = want;
  }
}

void Server::close_conn(Reactor& r, const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  conn->closed = true;
  (void)r.epoll.del(conn->stream.fd());
  conn->stream.close();
  if (!conn->rejected) active_connections_.fetch_sub(1, std::memory_order_acq_rel);
  r.conns.erase(conn->id);
}

void Server::flush_conn(Reactor& r, const std::shared_ptr<Conn>& conn) {
  if (conn->closed) return;
  StatusOr<bool> drained = conn->writer.flush(conn->stream, &Server::on_frame_complete, this);
  conn->last_activity = std::chrono::steady_clock::now();
  if (!drained.ok()) {
    close_conn(r, conn);
    return;
  }
  if (drained.value() && conn->closing) {
    close_conn(r, conn);
    return;
  }
  update_interest(r, *conn);
}

void Server::dispatch(Reactor& r, const std::shared_ptr<Conn>& conn) {
  conn->in_flight = true;
  const auto kind = static_cast<MsgKind>(conn->reader.view().kind);
  if (kind == MsgKind::kShardExec || kind == MsgKind::kShardXchg) {
    // Shard ops run on dedicated threads, never the bounded pool: a
    // SHARD_EXEC blocks on *peer* exchanges, so a pool full of execs
    // across shards would deadlock a distributed round.
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(shard_thread_mutex_);
    reap_shard_threads_locked();
    shard_threads_.push_back(ShardSlot{
        std::thread([this, reactor = &r, conn, done]() mutable {
          run_request(*reactor, std::move(conn));
          done->store(true, std::memory_order_release);
        }),
        done});
    return;
  }
  {
    std::lock_guard lock(work_mutex_);
    work_.push_back(Work{&r, conn});
  }
  work_cv_.notify_one();
}

void Server::pump_reads(Reactor& r, const std::shared_ptr<Conn>& conn) {
  if (conn->closed || conn->closing || conn->in_flight) return;
  StatusOr<bool> ready = conn->reader.poll(conn->stream);
  conn->last_activity = std::chrono::steady_clock::now();
  if (!ready.ok()) {
    const StatusCode code = ready.status().code();
    if (code == StatusCode::kInvalidArgument) {
      // Framing violation: answer typed (best effort), then close —
      // the stream position is unrecoverable.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn->writer.enqueue(to_outbound_tagged(make_error_frame(0, ready.status()), kTagNone));
      conn->closing = true;
      flush_conn(r, conn);
    } else if (code == StatusCode::kResourceExhausted) {
      // The pool refused the payload buffer with the payload still on
      // the socket — same unrecoverable position, but the client gets
      // RETRY_LATER rather than a protocol error.
      conn->writer.enqueue(to_outbound_tagged(make_error_frame(0, ready.status()), kTagNone));
      conn->closing = true;
      flush_conn(r, conn);
    } else {
      close_conn(r, conn);  // transport errors (EOF/reset) close quietly
    }
    return;
  }
  if (ready.value()) {
    dispatch(r, conn);  // strict alternation: EPOLLIN pauses below
  }
  update_interest(r, *conn);
}

void Server::drain_inbox(Reactor& r) {
  std::vector<std::shared_ptr<Conn>> incoming;
  std::vector<Reactor::Completion> completions;
  {
    std::lock_guard lock(r.inbox_mutex);
    incoming.swap(r.incoming);
    completions.swap(r.completions);
  }
  const bool draining = stop_.load(std::memory_order_acquire);
  for (std::shared_ptr<Conn>& conn : incoming) {
    if (draining && !conn->closing) {
      // Raced past stop(): the listener is closing anyway.
      conn->closed = true;
      conn->stream.close();
      if (!conn->rejected) active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    conn->last_activity = std::chrono::steady_clock::now();
    const std::uint32_t want = conn->closing ? kEpollOut : kEpollIn;
    if (!r.epoll.add(conn->stream.fd(), want, conn->id).is_ok()) {
      conn->closed = true;
      conn->stream.close();
      if (!conn->rejected) active_connections_.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    conn->armed = want;
    r.conns.emplace(conn->id, conn);
    // The rejection frame usually fits the empty send buffer whole:
    // flush now and the connection is gone before its first event.
    if (conn->closing) flush_conn(r, conn);
  }
  for (Reactor::Completion& completion : completions) {
    const std::shared_ptr<Conn>& conn = completion.conn;
    if (conn->closed) continue;  // died while the handler ran: drop the frame
    conn->reader.consume();
    conn->in_flight = false;
    conn->writer.enqueue(std::move(completion.frame));
    flush_conn(r, conn);
  }
}

void Server::tick(Reactor& r, std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Conn>> stalled;
  std::vector<std::shared_ptr<Conn>> idle;
  for (const auto& [id, conn] : r.conns) {
    if (conn->rejected) {
      if (now >= conn->reject_deadline) stalled.push_back(conn);
      continue;
    }
    const bool mid_io = conn->reader.mid_frame() || !conn->writer.idle();
    if (config_.io_timeout.count() > 0 && mid_io &&
        now - conn->last_activity >= config_.io_timeout) {
      // A slow-loris read or a peer that stopped draining its response:
      // no progress inside a frame for io_timeout. Closed quietly, like
      // the old per-direction socket timeout.
      stalled.push_back(conn);
      continue;
    }
    if (config_.idle_timeout.count() > 0 && !conn->in_flight && !mid_io &&
        now - conn->last_activity >= config_.idle_timeout) {
      idle.push_back(conn);
    }
  }
  for (const std::shared_ptr<Conn>& conn : stalled) close_conn(r, conn);
  for (const std::shared_ptr<Conn>& conn : idle) {
    // A slot-holding connection that never starts a frame: close it
    // quietly (no ERROR — there is no request to answer).
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    close_conn(r, conn);
  }
}

void Server::reactor_loop(Reactor& r) {
  std::array<Epoll::Event, 64> events;
  auto last_tick = std::chrono::steady_clock::now();
  bool draining = false;
  for (;;) {
    StatusOr<std::size_t> n = r.epoll.wait(events, config_.poll_interval);
    if (!n.ok()) break;  // the epoll fd itself broke; close everything below
    drain_inbox(r);
    for (std::size_t i = 0; i < n.value(); ++i) {
      const Epoll::Event& event = events[i];
      if (event.data == 0) {
        r.wakeup.drain();
        continue;
      }
      auto it = r.conns.find(event.data);
      if (it == r.conns.end()) continue;  // stale event for a just-closed conn
      std::shared_ptr<Conn> conn = it->second;
      if ((event.events & (kEpollErr | kEpollHup)) != 0) {
        close_conn(r, conn);
        continue;
      }
      if ((event.events & kEpollOut) != 0) flush_conn(r, conn);
      if (conn->closed) continue;
      if ((event.events & (kEpollIn | kEpollRdHup)) != 0) pump_reads(r, conn);
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_tick >= config_.poll_interval) {
      tick(r, now);
      last_tick = now;
    }
    if (!draining && stop_.load(std::memory_order_acquire)) draining = true;
    if (draining) {
      // Drain: close connections with nothing left to deliver; keep
      // pumping completions/flushes for the busy ones until they
      // quiesce or the deadline passes.
      std::vector<std::shared_ptr<Conn>> done;
      bool busy = false;
      for (const auto& [id, conn] : r.conns) {
        if (conn->in_flight || !conn->writer.idle()) {
          busy = true;
        } else {
          done.push_back(conn);
        }
      }
      for (const std::shared_ptr<Conn>& conn : done) close_conn(r, conn);
      if (!busy || now >= drain_deadline_) break;
    }
  }
  std::vector<std::shared_ptr<Conn>> rest;
  rest.reserve(r.conns.size());
  for (const auto& [id, conn] : r.conns) rest.push_back(conn);
  for (const std::shared_ptr<Conn>& conn : rest) close_conn(r, conn);
}

// ---------------------------------------------------------------------------
// Handler pool
// ---------------------------------------------------------------------------

void Server::handler_loop() {
  for (;;) {
    Work work;
    {
      std::unique_lock lock(work_mutex_);
      work_cv_.wait(lock, [&] { return workers_stop_ || !work_.empty(); });
      if (work_.empty()) return;  // stopping and fully drained
      work = std::move(work_.front());
      work_.pop_front();
    }
    run_request(*work.reactor, std::move(work.conn));
  }
}

void Server::run_request(Reactor& r, std::shared_ptr<Conn> conn) {
  OutboundFrame response = handle_request(*conn);
  {
    std::lock_guard lock(r.inbox_mutex);
    r.completions.push_back(Reactor::Completion{std::move(conn), std::move(response)});
  }
  r.wakeup.signal();
}

void Server::reap_shard_threads_locked() {
  for (auto it = shard_threads_.begin(); it != shard_threads_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = shard_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// Request dispatch (handler-side)
// ---------------------------------------------------------------------------

OutboundFrame Server::to_outbound_tagged(Frame frame, std::uint8_t tag) {
  // The serialize span covers header build + streamed checksum — the
  // last leg of the request's wall time, invisible to the executor's
  // breakdown. (The socket write itself happens on the reactor.)
  util::Stopwatch serialize_clock;
  StatusOr<OutboundFrame> out =
      make_outbound_frame(frame.kind, frame.request_id, {}, util::PooledBuffer{}, 0,
                          std::move(frame.payload), tag);
  service_.metrics().record_phase(runtime::Phase::kSerialize,
                                  static_cast<std::uint64_t>(serialize_clock.nanos()));
  // Owned frames are always within bounds (small control payloads).
  return std::move(out).value();
}

OutboundFrame Server::to_outbound(Frame frame) {
  const std::uint8_t tag =
      static_cast<MsgKind>(frame.kind) == MsgKind::kError ? kTagError : kTagOk;
  return to_outbound_tagged(std::move(frame), tag);
}

OutboundFrame Server::error_outbound(std::uint64_t request_id, const Status& why) {
  return to_outbound(make_error_frame(request_id, why));
}

OutboundFrame Server::elements_outbound(MsgKind kind, std::uint64_t request_id,
                                        util::PooledBuffer buf, std::uint64_t count) {
  const std::span<std::uint32_t> span = buf.as_span<std::uint32_t>(count);
  std::uint8_t count_header[8];
  for (int i = 0; i < 8; ++i) count_header[i] = static_cast<std::uint8_t>(count >> (8 * i));
  if constexpr (std::endian::native != std::endian::little) {
    for (std::uint32_t& w : span) {
      w = ((w & 0xff000000u) >> 24) | ((w & 0x00ff0000u) >> 8) | ((w & 0x0000ff00u) << 8) |
          ((w & 0x000000ffu) << 24);
    }
  }
  util::Stopwatch serialize_clock;
  StatusOr<OutboundFrame> out = make_outbound_frame(
      static_cast<std::uint16_t>(kind), request_id, {count_header, sizeof(count_header)},
      std::move(buf), count * sizeof(std::uint32_t), {}, kTagOk);
  service_.metrics().record_phase(runtime::Phase::kSerialize,
                                  static_cast<std::uint64_t>(serialize_clock.nanos()));
  // count is bounded by max_payload_bytes / 4, so this cannot overflow.
  return std::move(out).value();
}

OutboundFrame Server::handle_request(Conn& conn) {
  const FrameView request = conn.reader.view();
  try {
    switch (static_cast<MsgKind>(request.kind)) {
      case MsgKind::kPing:
        // The echo copies out of the connection's read buffer: the
        // response outlives the handler, the reader storage must not.
        return to_outbound_tagged(
            make_ok_frame(request.request_id, MsgKind::kPingOk,
                          std::vector<std::uint8_t>(request.payload.begin(),
                                                    request.payload.end())),
            kTagOk);
      case MsgKind::kSubmitPlan:
        return to_outbound(handle_submit_plan(request));
      case MsgKind::kPermute:
        return handle_permute(request);
      case MsgKind::kExecuteProgram:
        return handle_program(request);
      case MsgKind::kShardExec:
        return handle_shard_exec(request);
      case MsgKind::kShardXchg:
        return handle_shard_xchg(request);
      case MsgKind::kStats:
        return to_outbound(handle_stats(request.request_id));
      default:
        return error_outbound(request.request_id,
                              Status(StatusCode::kInvalidArgument, "unknown request kind"));
    }
  } catch (const std::bad_alloc&) {
    return error_outbound(request.request_id,
                          Status(StatusCode::kResourceExhausted, "allocation failed"));
  } catch (const std::exception& e) {
    // Last-resort boundary: a request must never take the connection
    // (let alone the process) down without a typed answer.
    return error_outbound(request.request_id, Status(StatusCode::kUnavailable, e.what()));
  }
}

Frame Server::handle_submit_plan(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<SubmitPlanRequestView> req =
      SubmitPlanRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return make_error_frame(request.request_id, req.status());
  const WordsView& mapping = req.value().mapping;

  // One copy, wire straight into the aligned storage the Permutation
  // keeps. (The former path decoded into a std::vector and copied that
  // into aligned words — two traversals of the mapping per SUBMIT_PLAN.)
  util::aligned_vector<std::uint32_t> words(mapping.count);
  mapping.copy_to({words.data(), words.size()});
  if (!perm::Permutation::is_valid({words.data(), words.size()})) {
    return make_error_frame(
        request.request_id,
        Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: mapping is not a bijection"));
  }
  auto plan = std::make_shared<const perm::Permutation>(std::move(words));
  const std::uint64_t plan_id = runtime::fingerprint_permutation(*plan).value;

  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(plan_id);
    if (it == plans_.end()) {
      if (plans_.size() >= config_.max_plans) {
        return make_error_frame(
            request.request_id,
            Status(StatusCode::kResourceExhausted, "plan registry full; retry later"));
      }
      plans_.emplace(plan_id, std::move(plan));
      plans_registered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ByteWriter w;
  w.put_u64(plan_id);
  return make_ok_frame(request.request_id, MsgKind::kPlanOk, w.take());
}

OutboundFrame Server::handle_permute(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<PermuteRequestView> req = PermuteRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return error_outbound(request.request_id, req.status());
  const PermuteRequestView& permute = req.value();
  const std::uint64_t count = permute.data.count;

  std::shared_ptr<const perm::Permutation> plan;
  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(permute.plan_id);
    if (it != plans_.end()) plan = it->second;
  }
  if (plan == nullptr) {
    return error_outbound(request.request_id,
                          Status(StatusCode::kInvalidArgument,
                                 "PERMUTE: unknown plan id (SUBMIT_PLAN it first)"));
  }
  if (count != plan->size()) {
    return error_outbound(request.request_id,
                          Status(StatusCode::kInvalidArgument,
                                 "PERMUTE: element count does not match the plan size"));
  }

  // The client's relative budget becomes an absolute executor deadline
  // here — queueing and kernel phases all draw from it.
  runtime::RequestOptions opts;
  if (permute.deadline_ms > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(permute.deadline_ms);
  }
  // The wire request id doubles as the trace id: the client controls
  // it (trace prefix in the high half), we echo it in the response and
  // thread it to the slow-request log.
  opts.trace_id = request.request_id;

  util::BufferPool& pool = util::BufferPool::global();

  // Input elements: on a little-endian host the wire bytes in the
  // pooled read buffer *are* the element array (the PERMUTE data
  // offset, 24 bytes, keeps them 4-aligned in 128-byte-aligned
  // storage), so the kernels read the request payload in place — it is
  // stable for the whole handler because EPOLLIN is paused while this
  // request is in flight. The fallback is one bounded copy into a
  // pooled buffer.
  std::span<const std::uint32_t> in = permute.data.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(count * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return error_outbound(request.request_id,
                            Status(StatusCode::kResourceExhausted,
                                   "buffer pool refused the request buffer"));
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(count);
    permute.data.copy_to(copy_span);
    in = copy_span;
  }

  // Output elements: pooled (a steady stream of same-sized PERMUTEs
  // recycles the same blocks), serialized scatter-gather without ever
  // being copied into a response payload.
  util::PooledBuffer out = pool.try_acquire(count * sizeof(std::uint32_t));
  if (!out.valid()) {
    return error_outbound(request.request_id,
                          Status(StatusCode::kResourceExhausted,
                                 "buffer pool refused the response buffer"));
  }
  const std::span<std::uint32_t> out_span = out.as_span<std::uint32_t>(count);

  StatusOr<std::future<Status>> submitted =
      service_.submit<std::uint32_t>(*plan, in, out_span, opts);
  if (!submitted.ok()) return error_outbound(request.request_id, submitted.status());
  const Status outcome = submitted.value().get();
  if (!outcome.is_ok()) return error_outbound(request.request_id, outcome);

  return elements_outbound(MsgKind::kPermuteOk, request.request_id, std::move(out), count);
}

OutboundFrame Server::handle_program(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ExecuteProgramRequestView> req =
      ExecuteProgramRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return error_outbound(request.request_id, req.status());
  const ExecuteProgramRequestView& program_req = req.value();
  const std::uint64_t count = program_req.data.count;

  runtime::ProgramRequestOptions opts;
  if (program_req.deadline_ms > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(program_req.deadline_ms);
  }
  opts.trace_id = request.request_id;
  opts.force_staged = program_req.force_staged();

  // The wire plan id is the mapping fingerprint, so the registry *is*
  // the resolver. The lambda takes the lock per lookup — an op chain
  // has at most kMaxProgramOps of them.
  const runtime::PlanResolver resolver =
      [this](std::uint64_t fingerprint) -> std::shared_ptr<const perm::Permutation> {
    std::lock_guard lock(plans_mutex_);
    const auto it = plans_.find(fingerprint);
    return it == plans_.end() ? nullptr : it->second;
  };

  util::BufferPool& pool = util::BufferPool::global();

  // Input elements in place when aligned (the EXECUTE_PROGRAM data
  // offset, 24 + 16*op_count, is a multiple of 8); bounded pooled copy
  // otherwise — same contract as PERMUTE.
  std::span<const std::uint32_t> in = program_req.data.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(count * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return error_outbound(request.request_id,
                            Status(StatusCode::kResourceExhausted,
                                   "buffer pool refused the request buffer"));
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(count);
    program_req.data.copy_to(copy_span);
    in = copy_span;
  }

  util::PooledBuffer out = pool.try_acquire(count * sizeof(std::uint32_t));
  if (!out.valid()) {
    return error_outbound(request.request_id,
                          Status(StatusCode::kResourceExhausted,
                                 "buffer pool refused the response buffer"));
  }
  const std::span<std::uint32_t> out_span = out.as_span<std::uint32_t>(count);

  runtime::Program program;
  program.ops = program_req.ops;
  StatusOr<std::future<Status>> submitted =
      service_.submit_program<std::uint32_t>(program, resolver, in, out_span, opts);
  if (!submitted.ok()) return error_outbound(request.request_id, submitted.status());
  const Status outcome = submitted.value().get();
  if (!outcome.is_ok()) return error_outbound(request.request_id, outcome);

  // PROGRAM_OK mirrors PERMUTE_OK byte for byte.
  return elements_outbound(MsgKind::kProgramOk, request.request_id, std::move(out), count);
}

namespace {

/// Milliseconds left until `deadline`, floored at 1ms so socket
/// timeouts stay armed right up to the abort.
std::chrono::milliseconds budget_until(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return std::max(left, std::chrono::milliseconds(1));
}

/// Push one exchange block at a peer and wait for its ack. The link is
/// connected lazily on the first round and reused for the second.
/// (Peer links are plain blocking client streams — the shard-exec
/// handler owns a dedicated thread.)
Status send_shard_block(TcpStream& link, bool& connected, const ShardPeer& peer,
                        std::uint64_t session_id, std::uint32_t round, std::uint32_t src,
                        std::span<const std::uint32_t> block,
                        std::chrono::steady_clock::time_point deadline,
                        util::BufferPool& pool) {
  if (!connected) {
    StatusOr<TcpStream> conn = tcp_connect(peer.host, peer.port, budget_until(deadline));
    if (!conn.ok()) return conn.status();
    link = std::move(conn).value();
    connected = true;
  }
  const auto budget = budget_until(deadline);
  (void)link.set_io_timeout(budget, budget);

  ShardXchgRequest header;
  header.session_id = session_id;
  header.round = round;
  header.src_shard = src;
  const std::vector<std::uint8_t> prefix = header.encode_prefix(block.size());
  Status sent;
  if constexpr (std::endian::native == std::endian::little) {
    // Native words are already wire order: the block leaves straight
    // from the extraction scratch, scatter-gathered.
    const ConstBuffer parts[] = {{prefix.data(), prefix.size()},
                                 {block.data(), block.size() * sizeof(std::uint32_t)}};
    sent = write_frame_parts(link, static_cast<std::uint16_t>(MsgKind::kShardXchg),
                             session_id, parts);
  } else {
    header.block.assign(block.begin(), block.end());
    sent = write_frame(link, make_ok_frame(session_id, MsgKind::kShardXchg, header.encode()));
  }
  if (!sent.is_ok()) return sent;

  util::PooledBuffer ack_storage;
  StatusOr<FrameView> ack = read_frame_view(link, pool, ack_storage, 4096);
  if (!ack.ok()) return ack.status();
  if (static_cast<MsgKind>(ack.value().kind) == MsgKind::kError) {
    StatusOr<ErrorResponse> err = ErrorResponse::decode(ack.value().payload);
    if (err.ok()) return err.value().to_status();
    return Status(StatusCode::kUnavailable, "peer shard sent a malformed error frame");
  }
  if (static_cast<MsgKind>(ack.value().kind) != MsgKind::kShardXchgOk ||
      ack.value().request_id != session_id) {
    return Status(StatusCode::kUnavailable, "peer shard sent an unexpected exchange ack");
  }
  return Status::ok();
}

}  // namespace

OutboundFrame Server::handle_shard_exec(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ShardExecRequestView> req = ShardExecRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return error_outbound(request.request_id, req.status());
  const ShardExecRequestView& exec = req.value();
  const std::uint32_t me = exec.shard_index;

  auto fail = [&](const Status& why) {
    shard_aborts_.fetch_add(1, std::memory_order_relaxed);
    return error_outbound(request.request_id, why);
  };

  StatusOr<runtime::BandPlan> bands_or =
      runtime::BandPlan::build(exec.rows, exec.cols, exec.shard_count());
  if (!bands_or.ok()) return fail(bands_or.status());
  if (exec.band.count != bands_or.value().band_elements(me)) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: band element count does not match the band split"));
  }

  // Open the session *before* the (possibly slow) plan compile: peers'
  // round-1 blocks can land in staging while this shard still builds.
  StatusOr<std::shared_ptr<ShardSession>> session_or =
      shard_sessions_.create(exec.session_id, std::move(bands_or).value(), me);
  if (!session_or.ok()) return fail(session_or.status());
  std::shared_ptr<ShardSession> session = std::move(session_or).value();
  struct SessionGuard {
    ShardSessionRegistry& registry;
    std::uint64_t id;
    ~SessionGuard() { registry.erase(id); }
  } session_guard{shard_sessions_, exec.session_id};
  const runtime::BandPlan& bands = session->plan();

  // The exchange budget is the server's knob, tightened by the
  // request's own deadline when it carries one.
  const auto started = std::chrono::steady_clock::now();
  auto deadline = started + config_.shard_exchange_timeout;
  if (exec.deadline_ms > 0) {
    deadline = std::min(deadline, started + std::chrono::milliseconds(exec.deadline_ms));
  }

  std::shared_ptr<const perm::Permutation> plan;
  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(exec.plan_id);
    if (it != plans_.end()) plan = it->second;
  }
  if (plan == nullptr) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: unknown plan id (SUBMIT_PLAN it first)"));
  }
  if (plan->size() != exec.rows * exec.cols) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: matrix shape does not match the plan size"));
  }

  // Compile (or fetch) the *full* scheduled plan — cached by
  // fingerprint, so every band of a hot plan shares one compile — and
  // slice this shard's rows of each pass as subspans.
  std::shared_ptr<const core::OfflinePermuter<std::uint32_t>> permuter =
      service_.cache().acquire<std::uint32_t>(*plan, service_.config().machine,
                                              core::Strategy::kScheduled);
  const core::ScheduledPlan* splan = permuter->plan();
  if (splan == nullptr) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: plan is not schedulable on this machine"));
  }
  if (splan->shape().rows != exec.rows || splan->shape().cols != exec.cols) {
    return fail(Status(StatusCode::kInvalidArgument,
                       "SHARD_EXEC: matrix shape does not match the compiled plan"));
  }
  StatusOr<runtime::BandPlanner> planner_or =
      runtime::BandPlanner::build(*splan, exec.shard_count());
  if (!planner_or.ok()) return fail(planner_or.status());
  const runtime::BandPlanner& planner = planner_or.value();

  util::BufferPool& pool = util::BufferPool::global();
  const std::uint64_t band_elems = bands.band_elements(me);

  std::span<const std::uint32_t> in = exec.band.in_place();
  util::PooledBuffer in_copy;
  if (in.empty()) {
    in_copy = pool.try_acquire(band_elems * sizeof(std::uint32_t));
    if (!in_copy.valid()) {
      return fail(Status(StatusCode::kResourceExhausted,
                         "buffer pool refused the shard input buffer"));
    }
    const std::span<std::uint32_t> copy_span = in_copy.as_span<std::uint32_t>(band_elems);
    exec.band.copy_to(copy_span);
    in = copy_span;
  }

  std::uint64_t max_block = 0;
  for (std::uint32_t dst = 0; dst < bands.shards(); ++dst) {
    max_block = std::max({max_block, bands.block(1, me, dst).elements(),
                          bands.block(2, me, dst).elements()});
  }
  util::PooledBuffer y = pool.try_acquire(band_elems * sizeof(std::uint32_t));
  util::PooledBuffer w =
      pool.try_acquire(bands.transposed_elements(me) * sizeof(std::uint32_t));
  util::PooledBuffer result = pool.try_acquire(band_elems * sizeof(std::uint32_t));
  util::PooledBuffer scratch = pool.try_acquire(max_block * sizeof(std::uint32_t));
  if (!y.valid() || !w.valid() || !result.valid() || !scratch.valid()) {
    return fail(Status(StatusCode::kResourceExhausted,
                       "buffer pool refused the shard pass buffers"));
  }
  const std::span<std::uint32_t> y_span = y.as_span<std::uint32_t>(band_elems);
  const std::span<std::uint32_t> w_span =
      w.as_span<std::uint32_t>(bands.transposed_elements(me));
  const std::span<std::uint32_t> result_span = result.as_span<std::uint32_t>(band_elems);

  util::ThreadPool& workers = util::ThreadPool::global();

  // Pass 1 (row-wise over this band's rows of the rows x cols view).
  const runtime::BandPassView p1 = planner.pass1(me);
  cpu::row_wise_pass<std::uint32_t>(workers, in, y_span, p1.rows, p1.cols, p1.phat, p1.q);

  // Round-1 exchange: one block per peer, each exactly once; the self
  // block scatters locally through the same exactly-once bookkeeping.
  std::vector<TcpStream> links(bands.shards());
  std::vector<std::uint8_t> connected(bands.shards(), 0);
  auto run_round = [&](std::uint32_t round,
                       std::span<const std::uint32_t> local) -> Status {
    for (std::uint32_t dst = 0; dst < bands.shards(); ++dst) {
      const std::uint64_t elems = bands.block(round, me, dst).elements();
      const std::span<std::uint32_t> block = scratch.as_span<std::uint32_t>(elems);
      if (round == 1) {
        runtime::extract_block_round1(bands, me, dst, local, block);
      } else {
        runtime::extract_block_round2(bands, me, dst, local, block);
      }
      if (dst == me) {
        const Status local_st = session->accept_block(round, me, block);
        if (!local_st.is_ok()) return local_st;
        continue;
      }
      bool link_up = connected[dst] != 0;
      const Status sent =
          send_shard_block(links[dst], link_up, exec.peers[dst], exec.session_id, round, me,
                           block, deadline, pool);
      connected[dst] = link_up ? 1 : 0;
      if (!sent.is_ok()) {
        // A dead peer mid-exchange is the canonical distributed
        // failure: surface it transient so the coordinator fails the
        // request typed instead of hanging on this shard.
        if (sent.code() == StatusCode::kInvalidArgument) return sent;
        return Status(StatusCode::kUnavailable,
                      "peer shard " + std::to_string(dst) +
                          " unreachable during exchange: " + sent.message());
      }
    }
    return Status::ok();
  };

  Status round_st = run_round(1, y_span);
  if (!round_st.is_ok()) return fail(round_st);
  round_st = session->wait_round(1, deadline);
  if (!round_st.is_ok()) return fail(round_st);

  // Pass 2 (row-wise over this shard's rows of the transposed view).
  const runtime::BandPassView p2 = planner.pass2(me);
  cpu::row_wise_pass<std::uint32_t>(workers, std::span<const std::uint32_t>(session->z_span()),
                                    w_span, p2.rows, p2.cols, p2.phat, p2.q);

  round_st = run_round(2, w_span);
  if (!round_st.is_ok()) return fail(round_st);
  round_st = session->wait_round(2, deadline);
  if (!round_st.is_ok()) return fail(round_st);

  // Pass 3 (row-wise, back in the rows x cols view): the result is this
  // band's rows of the final array, contiguous.
  const runtime::BandPassView p3 = planner.pass3(me);
  cpu::row_wise_pass<std::uint32_t>(workers, std::span<const std::uint32_t>(session->x_span()),
                                    result_span, p3.rows, p3.cols, p3.phat, p3.q);

  shard_execs_.fetch_add(1, std::memory_order_relaxed);
  return elements_outbound(MsgKind::kShardExecOk, request.request_id, std::move(result),
                           band_elems);
}

OutboundFrame Server::handle_shard_xchg(const FrameView& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<ShardXchgRequestView> req = ShardXchgRequestView::decode(request.payload, max_elements);
  if (!req.ok()) return error_outbound(request.request_id, req.status());
  const ShardXchgRequestView& xchg = req.value();

  // The block may outrace this shard's own SHARD_EXEC. The fast path —
  // the session already exists — scatters straight through. The slow
  // path parks this handler in `await`, pinning the block's pooled
  // payload bytes for up to the exchange timeout, so it runs under the
  // registry's held-bytes budget: a hostile peer spraying blocks at
  // sessions that never materialize gets RETRY_LATER, not the pool.
  std::shared_ptr<ShardSession> session = shard_sessions_.find(xchg.session_id);
  ShardSessionRegistry::Hold hold;
  if (session == nullptr) {
    StatusOr<ShardSessionRegistry::Hold> hold_or =
        shard_sessions_.try_hold(request.payload.size());
    if (!hold_or.ok()) return error_outbound(request.request_id, hold_or.status());
    hold = std::move(hold_or).value();
    session = shard_sessions_.await(
        xchg.session_id, std::chrono::steady_clock::now() + config_.shard_exchange_timeout);
    if (session == nullptr) {
      return error_outbound(request.request_id,
                            Status(StatusCode::kUnavailable,
                                   "SHARD_XCHG: no such shard session"));
    }
  }

  std::span<const std::uint32_t> block = xchg.block.in_place();
  util::PooledBuffer block_copy;
  if (block.empty()) {
    util::BufferPool& pool = util::BufferPool::global();
    block_copy = pool.try_acquire(xchg.block.count * sizeof(std::uint32_t));
    if (!block_copy.valid()) {
      return error_outbound(request.request_id,
                            Status(StatusCode::kResourceExhausted,
                                   "buffer pool refused the block buffer"));
    }
    const std::span<std::uint32_t> copy_span =
        block_copy.as_span<std::uint32_t>(xchg.block.count);
    xchg.block.copy_to(copy_span);
    block = copy_span;
  }

  const Status accepted = session->accept_block(xchg.round, xchg.src_shard, block);
  if (!accepted.is_ok()) return error_outbound(request.request_id, accepted);
  shard_blocks_.fetch_add(1, std::memory_order_relaxed);
  return to_outbound(make_ok_frame(request.request_id, MsgKind::kShardXchgOk, {}));
}

Frame Server::handle_stats(std::uint64_t request_id) {
  const std::string service_json = service_.metrics().snapshot().to_json();
  // Splice the server-side counters the service layer cannot see
  // (connection admission, framing violations, idle closes) in front of
  // the service fields: {"server":{...},<service fields>}.
  const Counters c = counters();
  std::ostringstream os;
  os << "{\"server\":{"
     << "\"connections_accepted\":" << c.connections_accepted
     << ",\"connections_rejected\":" << c.connections_rejected
     << ",\"requests_ok\":" << c.requests_ok
     << ",\"requests_error\":" << c.requests_error
     << ",\"protocol_errors\":" << c.protocol_errors
     << ",\"plans_registered\":" << c.plans_registered
     << ",\"idle_closed\":" << c.idle_closed
     << ",\"shard_execs\":" << c.shard_execs
     << ",\"shard_blocks\":" << c.shard_blocks
     << ",\"shard_aborts\":" << c.shard_aborts
     << ",\"shard_sessions\":" << shard_sessions_.size()
     << ",\"shard_hold_bytes\":" << shard_sessions_.held_bytes()
     << ",\"shard_hold_rejections\":" << c.shard_hold_rejections
     << ",\"io_threads\":" << reactors_.size()
     << ",\"plans\":" << plans() << "}";
  if (service_json.size() > 2 && service_json.front() == '{') {
    os << "," << service_json.substr(1);
  } else {
    os << "}";
  }
  ByteWriter w;
  w.put_string(os.str());
  return make_ok_frame(request_id, MsgKind::kStatsOk, w.take());
}

}  // namespace hmm::net
