#include "net/server.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "util/stopwatch.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

Frame ok_frame(std::uint64_t request_id, MsgKind kind, std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.kind = static_cast<std::uint16_t>(kind);
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

}  // namespace

Server::Server(runtime::RobustPermuteService& service, Config config)
    : service_(service), config_(std::move(config)) {}

Server::~Server() { stop(); }

Status Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status(StatusCode::kInvalidArgument, "server already running");
  }
  StatusOr<TcpListener> bound = TcpListener::bind(config_.host, config_.port);
  if (!bound.ok()) return bound.status();
  listener_ = std::move(bound).value();
  port_ = listener_.port();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  // Connection threads exit at their next between-requests poll slice;
  // a thread inside a request finishes it (and its response) first —
  // that is the drain guarantee.
  {
    std::lock_guard lock(conn_mutex_);
    for (ConnSlot& slot : connections_) {
      if (slot.thread.joinable()) slot.thread.join();
    }
    connections_.clear();
  }
  // Every request was awaited by its connection thread, so the executor
  // is normally idle already; the timeout guards against a stalled
  // worker holding teardown hostage.
  (void)service_.wait_idle_for(config_.drain_timeout);
}

Server::Counters Server::counters() const {
  Counters c;
  c.connections_accepted = connections_accepted_.load(std::memory_order_relaxed);
  c.connections_rejected = connections_rejected_.load(std::memory_order_relaxed);
  c.requests_ok = requests_ok_.load(std::memory_order_relaxed);
  c.requests_error = requests_error_.load(std::memory_order_relaxed);
  c.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  c.plans_registered = plans_registered_.load(std::memory_order_relaxed);
  return c;
}

std::uint64_t Server::plans() const {
  std::lock_guard lock(plans_mutex_);
  return plans_.size();
}

void Server::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    StatusOr<TcpStream> conn = listener_.accept(config_.poll_interval);
    {
      std::lock_guard lock(conn_mutex_);
      reap_finished_locked();
    }
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;  // poll slice
      break;  // listener is gone; stop() owns cleanup
    }
    TcpStream stream = std::move(conn).value();
    (void)stream.set_io_timeout(config_.io_timeout, config_.io_timeout);

    if (active_connections_.load(std::memory_order_acquire) >= config_.max_connections) {
      // Typed rejection instead of a dropped connection: the client
      // sees RETRY_LATER (request_id 0: this answers the connection
      // attempt, not any frame).
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)write_frame(stream, make_error_frame(
                                    0, Status(StatusCode::kResourceExhausted,
                                              "server at connection capacity; retry later")));
      continue;
    }

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_acq_rel);
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard lock(conn_mutex_);
    connections_.push_back(ConnSlot{
        std::thread([this, s = std::move(stream), done]() mutable {
          serve_connection(std::move(s));
          active_connections_.fetch_sub(1, std::memory_order_acq_rel);
          done->store(true, std::memory_order_release);
        }),
        done});
  }
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::serve_connection(TcpStream stream) {
  while (!stop_.load(std::memory_order_acquire)) {
    // Poll in short slices so stop() is honored between requests.
    StatusOr<bool> readable = stream.poll_readable(config_.poll_interval);
    if (!readable.ok()) return;
    if (!readable.value()) continue;

    StatusOr<Frame> request = read_frame(stream, config_.max_payload_bytes);
    if (!request.ok()) {
      if (request.status().code() == StatusCode::kInvalidArgument) {
        // Framing violation: answer typed (best effort), then close —
        // the stream position is unrecoverable.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        (void)write_frame(stream, make_error_frame(0, request.status()));
      }
      return;  // transport errors (EOF/reset/timeout) close quietly
    }

    Frame response = handle_request(request.value());
    // The serialize span covers encode + socket write: the last leg of
    // the request's wall time, invisible to the executor's breakdown.
    util::Stopwatch serialize_clock;
    const Status written = write_frame(stream, response);
    service_.metrics().record_phase(runtime::Phase::kSerialize,
                                    static_cast<std::uint64_t>(serialize_clock.nanos()));
    // Count the response only once it actually reached the wire, and
    // count it by what it was — a served error is not a served success.
    if (!written.is_ok()) return;
    const bool is_error = static_cast<MsgKind>(response.kind) == MsgKind::kError;
    (is_error ? requests_error_ : requests_ok_).fetch_add(1, std::memory_order_relaxed);
  }
}

Frame Server::handle_request(const Frame& request) {
  try {
    switch (static_cast<MsgKind>(request.kind)) {
      case MsgKind::kPing:
        return ok_frame(request.request_id, MsgKind::kPingOk, request.payload);
      case MsgKind::kSubmitPlan:
        return handle_submit_plan(request);
      case MsgKind::kPermute:
        return handle_permute(request);
      case MsgKind::kStats:
        return handle_stats(request);
      default:
        return make_error_frame(request.request_id,
                                Status(StatusCode::kInvalidArgument, "unknown request kind"));
    }
  } catch (const std::bad_alloc&) {
    return make_error_frame(request.request_id,
                            Status(StatusCode::kResourceExhausted, "allocation failed"));
  } catch (const std::exception& e) {
    // Last-resort boundary: a request must never take the connection
    // (let alone the process) down without a typed answer.
    return make_error_frame(request.request_id, Status(StatusCode::kUnavailable, e.what()));
  }
}

Frame Server::handle_submit_plan(const Frame& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<SubmitPlanRequest> req = SubmitPlanRequest::decode(request.payload, max_elements);
  if (!req.ok()) return make_error_frame(request.request_id, req.status());

  const std::vector<std::uint32_t>& mapping = req.value().mapping;
  if (!perm::Permutation::is_valid({mapping.data(), mapping.size()})) {
    return make_error_frame(
        request.request_id,
        Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: mapping is not a bijection"));
  }
  util::aligned_vector<std::uint32_t> words(mapping.size());
  std::memcpy(words.data(), mapping.data(), mapping.size() * sizeof(std::uint32_t));
  auto plan = std::make_shared<const perm::Permutation>(std::move(words));
  const std::uint64_t plan_id = runtime::fingerprint_permutation(*plan).value;

  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(plan_id);
    if (it == plans_.end()) {
      if (plans_.size() >= config_.max_plans) {
        return make_error_frame(
            request.request_id,
            Status(StatusCode::kResourceExhausted, "plan registry full; retry later"));
      }
      plans_.emplace(plan_id, std::move(plan));
      plans_registered_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ByteWriter w;
  w.put_u64(plan_id);
  return ok_frame(request.request_id, MsgKind::kPlanOk, w.take());
}

Frame Server::handle_permute(const Frame& request) {
  const std::uint64_t max_elements = config_.max_payload_bytes / kElemBytes;
  StatusOr<PermuteRequest> req = PermuteRequest::decode(request.payload, max_elements);
  if (!req.ok()) return make_error_frame(request.request_id, req.status());
  PermuteRequest& permute = req.value();

  std::shared_ptr<const perm::Permutation> plan;
  {
    std::lock_guard lock(plans_mutex_);
    auto it = plans_.find(permute.plan_id);
    if (it != plans_.end()) plan = it->second;
  }
  if (plan == nullptr) {
    return make_error_frame(request.request_id,
                            Status(StatusCode::kInvalidArgument,
                                   "PERMUTE: unknown plan id (SUBMIT_PLAN it first)"));
  }
  if (permute.data.size() != plan->size()) {
    return make_error_frame(request.request_id,
                            Status(StatusCode::kInvalidArgument,
                                   "PERMUTE: element count does not match the plan size"));
  }

  // The client's relative budget becomes an absolute executor deadline
  // here — queueing and kernel phases all draw from it.
  runtime::RequestOptions opts;
  if (permute.deadline_ms > 0) {
    opts.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(permute.deadline_ms);
  }
  // The wire request id doubles as the trace id: the client controls
  // it (trace prefix in the high half), we echo it in the response and
  // thread it to the slow-request log.
  opts.trace_id = request.request_id;

  std::vector<std::uint32_t> out(permute.data.size());
  StatusOr<std::future<Status>> submitted = service_.submit<std::uint32_t>(
      *plan, {permute.data.data(), permute.data.size()}, {out.data(), out.size()}, opts);
  if (!submitted.ok()) return make_error_frame(request.request_id, submitted.status());

  const Status outcome = submitted.value().get();
  if (!outcome.is_ok()) return make_error_frame(request.request_id, outcome);

  ByteWriter w;
  w.put_u64(out.size());
  w.put_u32_span({out.data(), out.size()});
  return ok_frame(request.request_id, MsgKind::kPermuteOk, w.take());
}

Frame Server::handle_stats(const Frame& request) {
  const std::string json = service_.metrics().snapshot().to_json();
  ByteWriter w;
  w.put_string(json);
  return ok_frame(request.request_id, MsgKind::kStatsOk, w.take());
}

}  // namespace hmm::net
