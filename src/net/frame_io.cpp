#include "net/frame_io.hpp"

#include <array>
#include <string>

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

Status protocol_error(FrameError e) {
  return Status(StatusCode::kInvalidArgument, "frame: " + std::string(to_string(e)));
}

}  // namespace

Status write_frame(TcpStream& stream, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  return stream.send_all(bytes.data(), bytes.size());
}

StatusOr<Frame> read_frame(TcpStream& stream, std::uint32_t max_payload) {
  std::array<std::uint8_t, kHeaderBytes> header{};
  if (Status s = stream.recv_all(header.data(), header.size()); !s.is_ok()) return s;

  ByteReader r(header);
  std::uint32_t magic = 0, payload_len = 0;
  std::uint16_t version = 0, kind = 0;
  std::uint64_t request_id = 0, checksum = 0;
  // The header buffer is exactly kHeaderBytes, so these cannot fail.
  (void)r.get_u32(magic);
  (void)r.get_u16(version);
  (void)r.get_u16(kind);
  (void)r.get_u64(request_id);
  (void)r.get_u32(payload_len);
  (void)r.get_u64(checksum);

  if (magic != kMagic) return protocol_error(FrameError::kBadMagic);
  if (version != kWireVersion) return protocol_error(FrameError::kBadVersion);
  if (payload_len > max_payload) return protocol_error(FrameError::kOversized);

  Frame frame;
  frame.kind = kind;
  frame.request_id = request_id;
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    if (Status s = stream.recv_all(frame.payload.data(), payload_len); !s.is_ok()) return s;
  }
  if (checksum_bytes(frame.payload) != checksum) {
    return protocol_error(FrameError::kBadChecksum);
  }
  return frame;
}

}  // namespace hmm::net
