#include "net/frame_io.hpp"

#include <array>
#include <cstring>
#include <string>

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

Status protocol_error(FrameError e) {
  return Status(StatusCode::kInvalidArgument, "frame: " + std::string(to_string(e)));
}

}  // namespace

Status write_frame(TcpStream& stream, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  return stream.send_all(bytes.data(), bytes.size());
}

Status write_frame_parts(TcpStream& stream, std::uint16_t kind, std::uint64_t request_id,
                         std::span<const ConstBuffer> parts) {
  std::uint64_t payload_len = 0;
  std::uint64_t checksum = checksum_seed();
  for (const ConstBuffer& part : parts) {
    payload_len += part.len;
    checksum = checksum_extend(
        checksum, {static_cast<const std::uint8_t*>(part.data), part.len});
  }
  if (payload_len > UINT32_MAX) {
    return Status(StatusCode::kInvalidArgument, "frame payload exceeds the u32 length field");
  }

  std::array<std::uint8_t, kHeaderBytes> header{};
  const auto put_u16 = [&header](std::size_t at, std::uint16_t v) {
    header[at] = static_cast<std::uint8_t>(v);
    header[at + 1] = static_cast<std::uint8_t>(v >> 8);
  };
  const auto put_u32 = [&header](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) header[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  const auto put_u64 = [&header](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) header[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put_u32(0, kMagic);
  put_u16(4, kWireVersion);
  put_u16(6, kind);
  put_u64(8, request_id);
  put_u32(16, static_cast<std::uint32_t>(payload_len));
  put_u64(20, checksum);

  std::vector<ConstBuffer> vec;
  vec.reserve(parts.size() + 1);
  vec.push_back(ConstBuffer{header.data(), header.size()});
  vec.insert(vec.end(), parts.begin(), parts.end());
  return stream.send_vectored(vec);
}

StatusOr<Frame> read_frame(TcpStream& stream, std::uint32_t max_payload) {
  std::array<std::uint8_t, kHeaderBytes> header{};
  if (Status s = stream.recv_all(header.data(), header.size()); !s.is_ok()) return s;

  ByteReader r(header);
  std::uint32_t magic = 0, payload_len = 0;
  std::uint16_t version = 0, kind = 0;
  std::uint64_t request_id = 0, checksum = 0;
  // The header buffer is exactly kHeaderBytes, so these cannot fail.
  (void)r.get_u32(magic);
  (void)r.get_u16(version);
  (void)r.get_u16(kind);
  (void)r.get_u64(request_id);
  (void)r.get_u32(payload_len);
  (void)r.get_u64(checksum);

  if (magic != kMagic) return protocol_error(FrameError::kBadMagic);
  if (version != kWireVersion) return protocol_error(FrameError::kBadVersion);
  if (payload_len > max_payload) return protocol_error(FrameError::kOversized);

  Frame frame;
  frame.kind = kind;
  frame.request_id = request_id;
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    if (Status s = stream.recv_all(frame.payload.data(), payload_len); !s.is_ok()) return s;
  }
  if (checksum_bytes(frame.payload) != checksum) {
    return protocol_error(FrameError::kBadChecksum);
  }
  return frame;
}

StatusOr<FrameView> read_frame_view(TcpStream& stream, util::BufferPool& pool,
                                    util::PooledBuffer& storage, std::uint32_t max_payload) {
  std::array<std::uint8_t, kHeaderBytes> header{};
  if (Status s = stream.recv_all(header.data(), header.size()); !s.is_ok()) return s;

  ByteReader r(header);
  std::uint32_t magic = 0, payload_len = 0;
  std::uint16_t version = 0, kind = 0;
  std::uint64_t request_id = 0, checksum = 0;
  (void)r.get_u32(magic);
  (void)r.get_u16(version);
  (void)r.get_u16(kind);
  (void)r.get_u64(request_id);
  (void)r.get_u32(payload_len);
  (void)r.get_u64(checksum);

  if (magic != kMagic) return protocol_error(FrameError::kBadMagic);
  if (version != kWireVersion) return protocol_error(FrameError::kBadVersion);
  if (payload_len > max_payload) return protocol_error(FrameError::kOversized);

  // Grow-only reuse: the storage a connection hands back in keeps
  // serving until a larger frame arrives, so a steady request stream
  // settles into zero pool traffic (and zero heap traffic) per read.
  if (!storage.valid() || storage.capacity() < payload_len) {
    storage.reset();
    storage = pool.try_acquire(payload_len);
    if (!storage.valid()) {
      return Status(StatusCode::kResourceExhausted, "buffer pool refused the frame payload");
    }
  }
  std::span<const std::uint8_t> payload{storage.data(), payload_len};
  if (payload_len > 0) {
    if (Status s = stream.recv_all(storage.data(), payload_len); !s.is_ok()) return s;
  }
  if (checksum_bytes(payload) != checksum) return protocol_error(FrameError::kBadChecksum);

  FrameView view;
  view.kind = kind;
  view.request_id = request_id;
  view.payload = payload;
  return view;
}

StatusOr<bool> FrameReader::poll(TcpStream& stream) {
  for (;;) {
    switch (state_) {
      case State::kHeader: {
        StatusOr<std::size_t> n = stream.recv_some(header_.data() + have_,
                                                   kHeaderBytes - have_);
        if (!n.ok()) return n.status();
        if (n.value() == 0) return false;
        have_ += n.value();
        if (have_ < kHeaderBytes) break;  // keep pulling while data lasts

        ByteReader r(header_);
        std::uint32_t magic = 0;
        std::uint16_t version = 0;
        (void)r.get_u32(magic);
        (void)r.get_u16(version);
        (void)r.get_u16(kind_);
        (void)r.get_u64(request_id_);
        (void)r.get_u32(payload_len_);
        (void)r.get_u64(checksum_);
        if (magic != kMagic) return protocol_error(FrameError::kBadMagic);
        if (version != kWireVersion) return protocol_error(FrameError::kBadVersion);
        if (payload_len_ > max_payload_) return protocol_error(FrameError::kOversized);

        // Same grow-only reuse as read_frame_view: steady-state frames
        // of a stable size touch neither the pool nor the heap.
        if (payload_len_ > 0 &&
            (!storage_.valid() || storage_.capacity() < payload_len_)) {
          storage_.reset();
          storage_ = pool_->try_acquire(payload_len_);
          if (!storage_.valid()) {
            return Status(StatusCode::kResourceExhausted,
                          "buffer pool refused the frame payload");
          }
        }
        have_ = 0;
        state_ = State::kPayload;
        break;
      }
      case State::kPayload: {
        if (have_ < payload_len_) {
          StatusOr<std::size_t> n =
              stream.recv_some(storage_.data() + have_, payload_len_ - have_);
          if (!n.ok()) return n.status();
          if (n.value() == 0) return false;
          have_ += n.value();
          if (have_ < payload_len_) break;
        }
        const std::span<const std::uint8_t> payload{
            payload_len_ > 0 ? storage_.data() : nullptr, payload_len_};
        if (checksum_bytes(payload) != checksum_) {
          return protocol_error(FrameError::kBadChecksum);
        }
        state_ = State::kReady;
        return true;
      }
      case State::kReady:
        return true;  // caller has not consumed the previous frame yet
    }
  }
}

FrameView FrameReader::view() const noexcept {
  FrameView view;
  view.kind = kind_;
  view.request_id = request_id_;
  view.payload = {payload_len_ > 0 ? storage_.data() : nullptr, payload_len_};
  return view;
}

void FrameReader::consume() noexcept {
  state_ = State::kHeader;
  have_ = 0;
  payload_len_ = 0;
}

StatusOr<OutboundFrame> make_outbound_frame(std::uint16_t kind, std::uint64_t request_id,
                                            std::span<const std::uint8_t> inline_payload,
                                            util::PooledBuffer pooled,
                                            std::size_t pooled_len,
                                            std::vector<std::uint8_t> owned,
                                            std::uint8_t tag) {
  OutboundFrame frame;
  if (inline_payload.size() > frame.prefix.size() - kHeaderBytes) {
    return Status(StatusCode::kInvalidArgument, "inline payload exceeds the prefix slot");
  }
  const std::uint64_t payload_len =
      inline_payload.size() + pooled_len + owned.size();
  if (payload_len > UINT32_MAX) {
    return Status(StatusCode::kInvalidArgument, "frame payload exceeds the u32 length field");
  }
  std::uint64_t checksum = checksum_seed();
  checksum = checksum_extend(checksum, inline_payload);
  checksum = checksum_extend(checksum, {pooled.valid() ? pooled.data() : nullptr, pooled_len});
  checksum = checksum_extend(checksum, owned);

  auto* header = frame.prefix.data();
  const auto put_u16 = [header](std::size_t at, std::uint16_t v) {
    header[at] = static_cast<std::uint8_t>(v);
    header[at + 1] = static_cast<std::uint8_t>(v >> 8);
  };
  const auto put_u32 = [header](std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) header[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  const auto put_u64 = [header](std::size_t at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) header[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  put_u32(0, kMagic);
  put_u16(4, kWireVersion);
  put_u16(6, kind);
  put_u64(8, request_id);
  put_u32(16, static_cast<std::uint32_t>(payload_len));
  put_u64(20, checksum);
  if (!inline_payload.empty()) {
    std::memcpy(frame.prefix.data() + kHeaderBytes, inline_payload.data(),
                inline_payload.size());
  }
  frame.prefix_len = kHeaderBytes + inline_payload.size();
  frame.pooled = std::move(pooled);
  frame.pooled_len = pooled_len;
  frame.owned = std::move(owned);
  frame.tag = tag;
  return frame;
}

StatusOr<bool> FrameWriter::flush(TcpStream& stream, CompletionFn on_complete, void* ctx) {
  while (!queue_.empty()) {
    OutboundFrame& frame = queue_.front();
    // Rebuild the remaining parts from the offset each round: three
    // subtractions against one syscall, and no iovec state to persist.
    ConstBuffer parts[3];
    std::size_t count = 0;
    std::size_t skip = frame.offset;
    const auto remainder = [&](const std::uint8_t* data, std::size_t len) {
      if (skip >= len) {
        skip -= len;
        return;
      }
      parts[count++] = ConstBuffer{data + skip, len - skip};
      skip = 0;
    };
    remainder(frame.prefix.data(), frame.prefix_len);
    remainder(frame.pooled.valid() ? frame.pooled.data() : nullptr, frame.pooled_len);
    remainder(frame.owned.data(), frame.owned.size());

    if (count > 0) {
      StatusOr<std::size_t> n = stream.send_some({parts, count});
      if (!n.ok()) return n.status();
      if (n.value() == 0) return false;
      frame.offset += n.value();
      pending_bytes_ -= n.value();
    }
    if (frame.offset < frame.total()) continue;  // partial — try the socket again
    if (on_complete != nullptr) on_complete(ctx, frame);
    queue_.pop_front();
  }
  return true;
}

}  // namespace hmm::net
