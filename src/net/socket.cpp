#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

Status errno_status(const char* op) {
  return Status(StatusCode::kUnavailable, std::string(op) + ": " + std::strerror(errno));
}

/// EPIPE / ECONNRESET / EOF are per-connection events, never fatal to
/// the process: they all collapse to kUnavailable ("this connection is
/// done"), which server loops treat as a quiet close.
Status peer_gone(const char* what) { return Status(StatusCode::kUnavailable, what); }

Status set_fd_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_status("fcntl(F_GETFL)");
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, next) < 0) return errno_status("fcntl(F_SETFL)");
  return Status::ok();
}

timeval to_timeval(std::chrono::milliseconds ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms.count() % 1000) * 1000);
  return tv;
}

/// Resolve host:port to an IPv4 sockaddr.
StatusOr<sockaddr_in> resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1) return addr;
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    return Status(StatusCode::kInvalidArgument,
                  "cannot resolve host '" + host + "': " + gai_strerror(rc));
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

}  // namespace

void ignore_sigpipe() {
  // SIG_IGN survives exec and is inherited by threads; one call per
  // process is enough. MSG_NOSIGNAL already covers library writes —
  // this covers everything else.
  std::signal(SIGPIPE, SIG_IGN);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status TcpStream::set_io_timeout(std::chrono::milliseconds recv_timeout,
                                 std::chrono::milliseconds send_timeout) {
  if (!valid()) return peer_gone("socket closed");
  const timeval rtv = to_timeval(recv_timeout);
  const timeval stv = to_timeval(send_timeout);
  if (::setsockopt(fd(), SOL_SOCKET, SO_RCVTIMEO, &rtv, sizeof(rtv)) < 0 ||
      ::setsockopt(fd(), SOL_SOCKET, SO_SNDTIMEO, &stv, sizeof(stv)) < 0) {
    return errno_status("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
  return Status::ok();
}

Status TcpStream::send_all(const void* data, std::size_t len) {
  if (!valid()) return peer_gone("socket closed");
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd(), p + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status(StatusCode::kDeadlineExceeded, "send timed out");
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return peer_gone("peer closed the connection");
    }
    return errno_status("send");
  }
  return Status::ok();
}

Status TcpStream::send_vectored(std::span<const ConstBuffer> parts) {
  if (!valid()) return peer_gone("socket closed");
  // iovec array advanced in place across partial writes. IOV_MAX-sized
  // batches would matter for huge part counts; the serving path sends
  // 2-3 parts per frame, far under any platform's limit.
  std::vector<iovec> iov;
  iov.reserve(parts.size());
  for (const ConstBuffer& part : parts) {
    if (part.len == 0) continue;
    iov.push_back(iovec{const_cast<void*>(part.data), part.len});
  }
  std::size_t next = 0;  // first iovec not yet fully sent
  while (next < iov.size()) {
    msghdr msg{};
    msg.msg_iov = iov.data() + next;
    msg.msg_iovlen = iov.size() - next;
    const ssize_t n = ::sendmsg(fd(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      std::size_t advanced = static_cast<std::size_t>(n);
      while (next < iov.size() && advanced >= iov[next].iov_len) {
        advanced -= iov[next].iov_len;
        ++next;
      }
      if (next < iov.size() && advanced > 0) {
        iov[next].iov_base = static_cast<std::uint8_t*>(iov[next].iov_base) + advanced;
        iov[next].iov_len -= advanced;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status(StatusCode::kDeadlineExceeded, "send timed out");
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return peer_gone("peer closed the connection");
    }
    return errno_status("sendmsg");
  }
  return Status::ok();
}

Status TcpStream::recv_all(void* data, std::size_t len) {
  if (!valid()) return peer_gone("socket closed");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd(), p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      return got == 0 ? peer_gone("connection closed")
                      : peer_gone("connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kDeadlineExceeded, "recv timed out");
    }
    if (errno == ECONNRESET) return peer_gone("connection reset by peer");
    return errno_status("recv");
  }
  return Status::ok();
}

StatusOr<bool> TcpStream::poll_readable(std::chrono::milliseconds timeout) {
  if (!valid()) return peer_gone("socket closed");
  pollfd pfd{fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc < 0) {
    if (errno == EINTR) return false;  // treat as a timeout slice
    return errno_status("poll");
  }
  if (rc == 0) return false;
  if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return peer_gone("socket error");
  // POLLIN and POLLHUP both mean "recv will not block" (data or EOF).
  return true;
}

Status TcpStream::set_nonblocking(bool nonblocking) {
  if (!valid()) return peer_gone("socket closed");
  return set_fd_nonblocking(fd(), nonblocking);
}

StatusOr<std::size_t> TcpStream::recv_some(void* data, std::size_t len) {
  if (!valid()) return peer_gone("socket closed");
  for (;;) {
    const ssize_t n = ::recv(fd(), data, len, 0);
    if (n > 0) return static_cast<std::size_t>(n);
    if (n == 0) return peer_gone("connection closed");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
    if (errno == ECONNRESET) return peer_gone("connection reset by peer");
    return errno_status("recv");
  }
}

StatusOr<std::size_t> TcpStream::send_some(std::span<const ConstBuffer> parts) {
  if (!valid()) return peer_gone("socket closed");
  iovec iov[16];
  std::size_t count = 0;
  for (const ConstBuffer& part : parts) {
    if (part.len == 0) continue;
    if (count == std::size(iov)) break;  // the remainder goes out next round
    iov[count++] = iovec{const_cast<void*>(part.data), part.len};
  }
  if (count == 0) return std::size_t{0};
  for (;;) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = count;
    const ssize_t n = ::sendmsg(fd(), &msg, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
    if (errno == EPIPE || errno == ECONNRESET) return peer_gone("peer closed the connection");
    return errno_status("sendmsg");
  }
}

static_assert(kEpollIn == EPOLLIN && kEpollOut == EPOLLOUT && kEpollErr == EPOLLERR &&
                  kEpollHup == EPOLLHUP && kEpollRdHup == EPOLLRDHUP,
              "readiness bits must mirror the kernel's");

StatusOr<Epoll> Epoll::create() {
  Socket epfd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epfd.valid()) return errno_status("epoll_create1");
  return Epoll(std::move(epfd));
}

Status Epoll::add(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epfd_.fd(), EPOLL_CTL_ADD, fd, &ev) < 0) {
    return errno_status("epoll_ctl(ADD)");
  }
  return Status::ok();
}

Status Epoll::mod(int fd, std::uint32_t events, std::uint64_t data) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = data;
  if (::epoll_ctl(epfd_.fd(), EPOLL_CTL_MOD, fd, &ev) < 0) {
    return errno_status("epoll_ctl(MOD)");
  }
  return Status::ok();
}

Status Epoll::del(int fd) {
  if (::epoll_ctl(epfd_.fd(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
    return errno_status("epoll_ctl(DEL)");
  }
  return Status::ok();
}

StatusOr<std::size_t> Epoll::wait(std::span<Event> out, std::chrono::milliseconds timeout) {
  if (out.empty()) return std::size_t{0};
  epoll_event events[64];
  const int want = static_cast<int>(std::min(out.size(), std::size(events)));
  const int rc = ::epoll_wait(epfd_.fd(), events, want, static_cast<int>(timeout.count()));
  if (rc < 0) {
    if (errno == EINTR) return std::size_t{0};
    return errno_status("epoll_wait");
  }
  for (int i = 0; i < rc; ++i) {
    out[static_cast<std::size_t>(i)] = Event{events[i].data.u64, events[i].events};
  }
  return static_cast<std::size_t>(rc);
}

StatusOr<EventFd> EventFd::create() {
  Socket efd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!efd.valid()) return errno_status("eventfd");
  return EventFd(std::move(efd));
}

void EventFd::signal() noexcept {
  if (!valid()) return;
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending
  // wakeup; any other failure here has no recovery path worth taking.
  [[maybe_unused]] ssize_t rc = ::write(efd_.fd(), &one, sizeof(one));
}

void EventFd::drain() noexcept {
  if (!valid()) return;
  std::uint64_t count = 0;
  [[maybe_unused]] ssize_t rc = ::read(efd_.fd(), &count, sizeof(count));
}

StatusOr<TcpStream> tcp_connect(const std::string& host, std::uint16_t port,
                                std::chrono::milliseconds timeout) {
  StatusOr<sockaddr_in> addr = resolve(host, port);
  if (!addr.ok()) return addr.status();

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");

  // Non-blocking connect bounded by poll, then back to blocking mode
  // (everything downstream relies on SO_RCVTIMEO semantics).
  if (Status s = set_fd_nonblocking(sock.fd(), true); !s.is_ok()) return s;
  const sockaddr_in& sa = addr.value();
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    if (errno != EINPROGRESS) return errno_status("connect");
    pollfd pfd{sock.fd(), POLLOUT, 0};
    const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (rc < 0) return errno_status("poll(connect)");
    if (rc == 0) return Status(StatusCode::kDeadlineExceeded, "connect timed out");
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &err_len) < 0) {
      return errno_status("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status(StatusCode::kUnavailable,
                    std::string("connect failed: ") + std::strerror(err));
    }
  }
  if (Status s = set_fd_nonblocking(sock.fd(), false); !s.is_ok()) return s;

  // Frames are written whole; Nagle only adds latency here.
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(sock));
}

StatusOr<TcpListener> TcpListener::bind(const std::string& host, std::uint16_t port,
                                        int backlog) {
  StatusOr<sockaddr_in> addr = resolve(host, port);
  if (!addr.ok()) return addr.status();

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return errno_status("socket");
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in& sa = addr.value();
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) < 0) {
    return errno_status("bind");
  }
  if (::listen(sock.fd(), backlog) < 0) return errno_status("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    return errno_status("getsockname");
  }
  return TcpListener(std::move(sock), ntohs(bound.sin_port));
}

StatusOr<TcpStream> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (!valid()) return Status(StatusCode::kUnavailable, "listener closed");
  pollfd pfd{sock_.fd(), POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (rc < 0) {
    if (errno == EINTR) return Status(StatusCode::kDeadlineExceeded, "accept interrupted");
    return errno_status("poll(accept)");
  }
  if (rc == 0) return Status(StatusCode::kDeadlineExceeded, "accept timed out");
  const int fd = ::accept(sock_.fd(), nullptr, nullptr);
  if (fd < 0) {
    // Transient accept errors (the connection died in the backlog) are
    // not listener failures; report a timeout so the loop just retries.
    if (errno == ECONNABORTED || errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status(StatusCode::kDeadlineExceeded, "connection aborted in backlog");
    }
    return errno_status("accept");
  }
  Socket conn(fd);
  const int one = 1;
  ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(conn));
}

}  // namespace hmm::net
