#pragma once
/// \file wire.hpp
/// \brief The HMMP framing layer: length-prefixed, checksummed binary
///        frames with explicit little-endian serialization.
///
/// Every message on a permd connection is one frame:
///
///   offset  size  field
///        0     4  magic        'H' 'M' 'M' 'P'
///        4     2  version      u16 LE (currently 1)
///        6     2  kind         u16 LE (protocol.hpp enumerates kinds)
///        8     8  request_id   u64 LE (echoed verbatim in the response)
///       16     4  payload_len  u32 LE (bounded by the peer's limit)
///       20     8  checksum     u64 LE, FNV-1a64 over the payload bytes
///       28     …  payload
///
/// The framing layer treats `kind` and the payload as opaque; it owns
/// exactly the properties a byte stream can violate: truncation, a
/// foreign magic, an unknown framing version, a length that exceeds the
/// receiver's budget, and payload corruption (the checksum reuses
/// `runtime::Fnv1a64`, the same hash the plan cache keys on). Decoding
/// is strict and bounds-checked — no field is read past the end of the
/// buffer, and every rejection is a distinct `FrameError` so tests and
/// metrics can tell a short read from a corrupt one.
///
/// `ByteWriter`/`ByteReader` are the only serialization primitives the
/// protocol layer uses; both commit to little-endian byte order
/// explicitly (byte shifts, not memcpy-of-host-integers), so the wire
/// format is identical across architectures.

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hmm::net {

/// "HMMP" as a little-endian u32 (bytes on the wire: 'H','M','M','P').
inline constexpr std::uint32_t kMagic = 0x504d4d48u;
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 28;
/// Default per-frame payload budget (requests carry whole arrays).
inline constexpr std::uint32_t kDefaultMaxPayload = 64u << 20;

/// One decoded frame. The payload is owned (frames outlive the socket
/// buffer they were parsed from).
struct Frame {
  std::uint16_t kind = 0;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Why a frame failed to decode. Ordered roughly by how early in the
/// header the problem sits.
enum class FrameError {
  kOk = 0,
  kShortHeader,   ///< fewer than kHeaderBytes available
  kBadMagic,      ///< not an HMMP stream
  kBadVersion,    ///< framing version this build does not speak
  kOversized,     ///< payload_len exceeds the receiver's budget
  kShortPayload,  ///< header promises more payload than is present
  kBadChecksum,   ///< payload bytes do not hash to the header checksum
};

[[nodiscard]] std::string_view to_string(FrameError e) noexcept;

/// FNV-1a64 over a byte span (the frame checksum).
[[nodiscard]] std::uint64_t checksum_bytes(std::span<const std::uint8_t> bytes) noexcept;

/// Streaming form of the frame checksum, for scatter-gather senders
/// that never materialize the payload as one buffer:
/// `checksum_extend(checksum_extend(seed, a), b) == checksum_bytes(a ++ b)`.
[[nodiscard]] std::uint64_t checksum_seed() noexcept;
[[nodiscard]] std::uint64_t checksum_extend(std::uint64_t state,
                                            std::span<const std::uint8_t> bytes) noexcept;

/// Serialize a frame (header + payload) into a fresh buffer.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Strict decode of one frame from `buf`. On kOk, `out` holds the frame
/// and `consumed` the number of bytes it occupied. On any error, `out`
/// and `consumed` are untouched. `max_payload` is the receiver's budget
/// (a frame promising more is rejected before any payload is read).
[[nodiscard]] FrameError decode_frame(std::span<const std::uint8_t> buf, Frame& out,
                                      std::size_t& consumed,
                                      std::uint32_t max_payload = kDefaultMaxPayload);

/// Append-only little-endian serializer for frame payloads.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }
  void put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v));
    put_u8(static_cast<std::uint8_t>(v >> 8));
  }
  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }
  void put_u32_span(std::span<const std::uint32_t> words) {
    // The wire is little-endian; on an LE host the in-memory words are
    // already wire bytes, so bulk-append instead of shifting per word.
    if constexpr (std::endian::native == std::endian::little) {
      const auto* raw = reinterpret_cast<const std::uint8_t*>(words.data());
      buf_.insert(buf_.end(), raw, raw + words.size() * 4);
    } else {
      buf_.reserve(buf_.size() + words.size() * 4);
      for (std::uint32_t w : words) put_u32(w);
    }
  }
  void put_string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian cursor over a payload. Every getter
/// returns false (leaving the output untouched) instead of reading past
/// the end, so a malformed payload can never over-read.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> buf) : buf_(buf) {}

  [[nodiscard]] bool get_u8(std::uint8_t& out) noexcept {
    if (remaining() < 1) return false;
    out = buf_[pos_++];
    return true;
  }
  [[nodiscard]] bool get_u16(std::uint16_t& out) noexcept {
    if (remaining() < 2) return false;
    out = static_cast<std::uint16_t>(buf_[pos_] | (buf_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  [[nodiscard]] bool get_u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) out |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return true;
  }
  [[nodiscard]] bool get_u64(std::uint64_t& out) noexcept {
    if (remaining() < 8) return false;
    out = 0;
    for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return true;
  }
  /// View of the next `len` bytes (no copy); false if fewer remain.
  [[nodiscard]] bool get_bytes(std::size_t len, std::span<const std::uint8_t>& out) noexcept {
    if (remaining() < len) return false;
    out = buf_.subspan(pos_, len);
    pos_ += len;
    return true;
  }
  /// The rest of the payload as a string (error messages, JSON).
  [[nodiscard]] std::string rest_as_string() {
    std::string s(reinterpret_cast<const char*>(buf_.data() + pos_), remaining());
    pos_ = buf_.size();
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return buf_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace hmm::net
