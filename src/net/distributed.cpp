#include "net/distributed.hpp"

#include <thread>
#include <utility>

#include "net/frame_io.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

namespace {

/// Outcome slot of one shard thread. Written by exactly one thread,
/// read after the join barrier — no locking needed.
struct ShardOutcome {
  Status status = Status::ok();
  bool transport = false;  ///< connect/send/recv failure vs typed answer
  DistributedPermuter::Band band;
};

/// Run one shard end to end: connect, ship the band, block until the
/// shard finished its three passes (the response *is* the completion
/// signal), gather the band response into pooled storage.
void run_shard(const DistributedPermuter::Config& config, std::uint64_t session_id,
               std::uint64_t plan_id, std::uint32_t deadline_ms, std::uint64_t rows,
               std::uint64_t cols, const std::vector<ShardPeer>& peers, std::uint32_t shard,
               std::span<const std::uint8_t> band_bytes, std::uint64_t band_elems,
               ShardOutcome& out) {
  const auto transport_fail = [&](Status why) {
    out.status = std::move(why);
    out.transport = true;
  };

  StatusOr<TcpStream> conn =
      tcp_connect(peers[shard].host, peers[shard].port, config.connect_timeout);
  if (!conn.ok()) return transport_fail(conn.status());
  TcpStream stream = std::move(conn).value();
  (void)stream.set_io_timeout(config.io_timeout, config.io_timeout);

  ShardExecRequest req;
  req.session_id = session_id;
  req.plan_id = plan_id;
  req.deadline_ms = deadline_ms;
  req.shard_index = shard;
  req.rows = rows;
  req.cols = cols;
  req.peers = peers;
  const std::vector<std::uint8_t> prefix = req.encode_prefix(band_elems);
  const ConstBuffer parts[] = {{prefix.data(), prefix.size()},
                               {band_bytes.data(), band_bytes.size()}};
  if (Status sent = write_frame_parts(stream, static_cast<std::uint16_t>(MsgKind::kShardExec),
                                      session_id, parts);
      !sent.is_ok()) {
    return transport_fail(std::move(sent));
  }

  util::BufferPool& pool = util::BufferPool::global();
  StatusOr<FrameView> response =
      read_frame_view(stream, pool, out.band.storage, config.max_payload_bytes);
  if (!response.ok()) return transport_fail(response.status());
  const FrameView& frame = response.value();
  if (static_cast<MsgKind>(frame.kind) == MsgKind::kError) {
    StatusOr<ErrorResponse> err = ErrorResponse::decode(frame.payload);
    out.status = err.ok() ? err.value().to_status()
                          : Status(StatusCode::kUnavailable,
                                   "malformed ERROR frame from shard");
    out.transport = !err.ok();
    return;
  }
  if (static_cast<MsgKind>(frame.kind) != MsgKind::kShardExecOk ||
      frame.request_id != session_id) {
    return transport_fail(
        Status(StatusCode::kUnavailable, "shard response does not answer SHARD_EXEC"));
  }
  StatusOr<WordsResponseView> band =
      WordsResponseView::decode(frame.payload, config.max_payload_bytes / kElemBytes);
  if (!band.ok()) return transport_fail(band.status());
  if (band.value().data.count != band_elems) {
    return transport_fail(Status(StatusCode::kUnavailable,
                                 "shard returned a band of the wrong size"));
  }
  out.band.bytes = band.value().data.bytes;
  out.band.elements = band_elems;
}

}  // namespace

StatusOr<DistributedPermuter::Result> DistributedPermuter::execute(
    const Config& config, std::uint64_t session_id, std::uint64_t plan_id,
    std::uint32_t deadline_ms, std::uint64_t rows, std::uint64_t cols,
    std::span<const std::uint8_t> data_bytes, std::span<const ShardTarget> targets,
    const std::function<void(std::size_t)>& on_transport_failure) {
  const auto shards = static_cast<std::uint32_t>(targets.size());
  StatusOr<runtime::BandPlan> bands_or = runtime::BandPlan::build(rows, cols, shards);
  if (!bands_or.ok()) return bands_or.status();
  const runtime::BandPlan& bands = bands_or.value();
  if (data_bytes.size() != rows * cols * kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "distributed permute: element count does not match the matrix shape");
  }

  std::vector<ShardPeer> peers;
  peers.reserve(shards);
  for (const ShardTarget& t : targets) peers.push_back(ShardPeer{t.host, t.port});

  // One thread per shard: every SHARD_EXEC must be in flight
  // concurrently — the shards rendezvous with each other mid-request,
  // so shipping the bands serially would deadlock on the first
  // exchange round.
  std::vector<ShardOutcome> outcomes(shards);
  std::vector<std::thread> threads;
  threads.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t offset_bytes = bands.band_offset(s) * kElemBytes;
    const std::uint64_t band_elems = bands.band_elements(s);
    const std::span<const std::uint8_t> band_bytes =
        data_bytes.subspan(offset_bytes, band_elems * kElemBytes);
    threads.emplace_back([&config, session_id, plan_id, deadline_ms, rows, cols, &peers, s,
                          band_bytes, band_elems, &outcomes] {
      run_shard(config, session_id, plan_id, deadline_ms, rows, cols, peers, s, band_bytes,
                band_elems, outcomes[s]);
    });
  }
  for (std::thread& t : threads) t.join();

  // Prefer a typed shard answer over transport noise: when one shard
  // dies, its peers' timeouts are a *consequence* — the root cause is
  // the transport failure, but a typed kInvalidArgument (bad plan,
  // shape mismatch) from any shard explains the failure better than
  // "peer unreachable" collateral.
  Status first_transport = Status::ok();
  Status first_typed = Status::ok();
  for (std::uint32_t s = 0; s < shards; ++s) {
    if (outcomes[s].status.is_ok()) continue;
    if (outcomes[s].transport) {
      on_transport_failure(targets[s].caller_index);
      if (first_transport.is_ok()) first_transport = outcomes[s].status;
    } else if (first_typed.is_ok()) {
      first_typed = outcomes[s].status;
    }
  }
  if (!first_typed.is_ok() || !first_transport.is_ok()) {
    if (!first_typed.is_ok() && first_typed.code() != StatusCode::kUnavailable) {
      return first_typed;
    }
    Status root = !first_transport.is_ok() ? first_transport : first_typed;
    return Status(StatusCode::kUnavailable,
                  "distributed permute failed: " + root.message());
  }

  Result result;
  result.bands.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    result.total_elements += outcomes[s].band.elements;
    result.bands.push_back(std::move(outcomes[s].band));
  }
  return result;
}

}  // namespace hmm::net
