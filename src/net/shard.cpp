#include "net/shard.hpp"

#include <string>
#include <utility>

#include "net/protocol.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

static_assert(runtime::kMaxShards == kMaxWireShards,
              "wire shard bound must mirror the band-plan bound");

ShardSession::ShardSession(runtime::BandPlan plan, std::uint32_t shard_index,
                           util::PooledBuffer z, util::PooledBuffer x)
    : plan_(std::move(plan)),
      shard_index_(shard_index),
      z_(std::move(z)),
      x_(std::move(x)) {
  claimed_[0].assign(plan_.shards(), 0);
  claimed_[1].assign(plan_.shards(), 0);
}

std::span<std::uint32_t> ShardSession::z_span() noexcept {
  return {reinterpret_cast<std::uint32_t*>(z_.data()),
          plan_.transposed_elements(shard_index_)};
}

std::span<std::uint32_t> ShardSession::x_span() noexcept {
  return {reinterpret_cast<std::uint32_t*>(x_.data()), plan_.band_elements(shard_index_)};
}

Status ShardSession::accept_block(std::uint32_t round, std::uint32_t src,
                                  std::span<const std::uint32_t> block) {
  if (round != 1 && round != 2) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: round must be 1 or 2");
  }
  if (src >= plan_.shards()) {
    return Status(StatusCode::kInvalidArgument,
                  "SHARD_XCHG: source shard out of range for this session");
  }
  const runtime::BlockTransfer& t = plan_.block(round, src, shard_index_);
  if (block.size() != t.elements()) {
    return Status(StatusCode::kInvalidArgument,
                  "SHARD_XCHG: block size does not match the exchange schedule");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!aborted_.is_ok()) return aborted_;
    if (claimed_[round - 1][src]) {
      return Status(StatusCode::kInvalidArgument,
                    "SHARD_XCHG: duplicate block for this round and source");
    }
    claimed_[round - 1][src] = 1;
  }
  // Blocks from distinct sources land in disjoint staging regions, so
  // the scatter itself runs unlocked.
  if (round == 1) {
    runtime::scatter_block_round1(plan_, src, shard_index_, block, z_span());
  } else {
    runtime::scatter_block_round2(plan_, src, shard_index_, block, x_span());
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!aborted_.is_ok()) return aborted_;
    ++arrived_[round - 1];
  }
  cv_.notify_all();
  return Status::ok();
}

Status ShardSession::wait_round(std::uint32_t round,
                                std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  const std::uint32_t want = plan_.shards();
  cv_.wait_until(lock, deadline, [&] {
    return !aborted_.is_ok() || arrived_[round - 1] >= want;
  });
  if (!aborted_.is_ok()) return aborted_;
  if (arrived_[round - 1] >= want) return Status::ok();
  return Status(StatusCode::kUnavailable,
                "shard exchange round " + std::to_string(round) +
                    " timed out waiting for peer blocks");
}

void ShardSession::abort(Status why) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!aborted_.is_ok()) return;  // first reason wins
    aborted_ = std::move(why);
  }
  cv_.notify_all();
}

StatusOr<std::shared_ptr<ShardSession>> ShardSessionRegistry::create(
    std::uint64_t id, runtime::BandPlan plan, std::uint32_t shard_index) {
  // Acquire staging outside the lock: pool pressure must not stall
  // unrelated sessions' rendezvous.
  util::PooledBuffer z =
      pool_.try_acquire(plan.transposed_elements(shard_index) * sizeof(std::uint32_t));
  util::PooledBuffer x =
      pool_.try_acquire(plan.band_elements(shard_index) * sizeof(std::uint32_t));
  if (!z.valid() || !x.valid()) {
    return Status(StatusCode::kResourceExhausted,
                  "SHARD_EXEC: buffer pool refused the exchange staging buffers");
  }
  auto session = std::make_shared<ShardSession>(std::move(plan), shard_index, std::move(z),
                                                std::move(x));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (sessions_.size() >= config_.max_sessions) {
      return Status(StatusCode::kResourceExhausted,
                    "SHARD_EXEC: too many concurrent shard sessions");
    }
    if (!sessions_.emplace(id, session).second) {
      return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: duplicate session id");
    }
  }
  cv_.notify_all();
  return session;
}

std::shared_ptr<ShardSession> ShardSessionRegistry::await(
    std::uint64_t id, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::shared_ptr<ShardSession> found;
  cv_.wait_until(lock, deadline, [&] {
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return false;
    found = it->second;
    return true;
  });
  return found;
}

std::shared_ptr<ShardSession> ShardSessionRegistry::find(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

void ShardSessionRegistry::Hold::release() noexcept {
  if (registry_ != nullptr) {
    registry_->held_bytes_.fetch_sub(bytes_, std::memory_order_relaxed);
    registry_ = nullptr;
    bytes_ = 0;
  }
}

StatusOr<ShardSessionRegistry::Hold> ShardSessionRegistry::try_hold(std::uint64_t bytes) {
  // CAS loop so two racing holds cannot both sneak under the cap.
  std::uint64_t current = held_bytes_.load(std::memory_order_relaxed);
  for (;;) {
    if (current + bytes > config_.max_pending_hold_bytes) {
      hold_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status(StatusCode::kResourceExhausted,
                    "SHARD_XCHG: early-arrival hold budget exhausted; retry later");
    }
    if (held_bytes_.compare_exchange_weak(current, current + bytes,
                                          std::memory_order_relaxed)) {
      return Hold(this, bytes);
    }
  }
}

void ShardSessionRegistry::erase(std::uint64_t id) {
  std::shared_ptr<ShardSession> victim;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    victim = std::move(it->second);
    sessions_.erase(it);
  }
  // Unblock any XCHG thread still waiting on this session's rounds.
  victim->abort(Status(StatusCode::kUnavailable, "shard session closed"));
}

std::size_t ShardSessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

}  // namespace hmm::net
