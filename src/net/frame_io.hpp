#pragma once
/// \file frame_io.hpp
/// \brief Reading/writing HMMP frames over a TcpStream.
///
/// The stream variant of wire.hpp's buffer codec: the header is read
/// first (fixed 28 bytes), validated, and only then is the payload —
/// already bounded by `max_payload` — pulled off the socket. A frame
/// that fails validation is a **protocol error** (`kInvalidArgument`
/// carrying the FrameError text); both peers respond by dropping the
/// connection, because after a framing violation the stream position is
/// unrecoverable. Transport failures keep their socket.hpp taxonomy
/// (`kUnavailable` peer-gone, `kDeadlineExceeded` timeout).

#include <cstdint>
#include <span>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"

namespace hmm::net {

/// Send one frame (header + payload) in full.
runtime::Status write_frame(TcpStream& stream, const Frame& frame);

/// Zero-copy frame send: the header goes on a 28-byte stack buffer, the
/// checksum is streamed across `parts`, and header + parts leave in one
/// `send_vectored` call — the payload is never concatenated. The parts
/// are borrowed for the duration of the call only.
runtime::Status write_frame_parts(TcpStream& stream, std::uint16_t kind,
                                  std::uint64_t request_id,
                                  std::span<const ConstBuffer> parts);

/// Receive one full frame. Error taxonomy:
///  - kInvalidArgument: framing violation (bad magic/version, oversized
///    or corrupt payload) — close the connection;
///  - kUnavailable / kDeadlineExceeded: transport-level, from socket.hpp.
runtime::StatusOr<Frame> read_frame(TcpStream& stream,
                                    std::uint32_t max_payload = kDefaultMaxPayload);

/// A decoded frame whose payload borrows the caller's storage (valid
/// until the storage is reused for the next read).
struct FrameView {
  std::uint16_t kind = 0;
  std::uint64_t request_id = 0;
  std::span<const std::uint8_t> payload;
};

/// `read_frame` into pooled, reused storage: the payload lands in
/// `storage` (acquired from `pool` and grown only when a larger frame
/// arrives — steady-state reads touch no allocator at all) and the view
/// borrows it. Exactly read_frame's error taxonomy, plus
/// kResourceExhausted when the pool refuses the payload buffer.
runtime::StatusOr<FrameView> read_frame_view(TcpStream& stream, util::BufferPool& pool,
                                             util::PooledBuffer& storage,
                                             std::uint32_t max_payload = kDefaultMaxPayload);

}  // namespace hmm::net
