#pragma once
/// \file frame_io.hpp
/// \brief Reading/writing HMMP frames over a TcpStream.
///
/// The stream variant of wire.hpp's buffer codec: the header is read
/// first (fixed 28 bytes), validated, and only then is the payload —
/// already bounded by `max_payload` — pulled off the socket. A frame
/// that fails validation is a **protocol error** (`kInvalidArgument`
/// carrying the FrameError text); both peers respond by dropping the
/// connection, because after a framing violation the stream position is
/// unrecoverable. Transport failures keep their socket.hpp taxonomy
/// (`kUnavailable` peer-gone, `kDeadlineExceeded` timeout).

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"

namespace hmm::net {

/// Send one frame (header + payload) in full.
runtime::Status write_frame(TcpStream& stream, const Frame& frame);

/// Zero-copy frame send: the header goes on a 28-byte stack buffer, the
/// checksum is streamed across `parts`, and header + parts leave in one
/// `send_vectored` call — the payload is never concatenated. The parts
/// are borrowed for the duration of the call only.
runtime::Status write_frame_parts(TcpStream& stream, std::uint16_t kind,
                                  std::uint64_t request_id,
                                  std::span<const ConstBuffer> parts);

/// Receive one full frame. Error taxonomy:
///  - kInvalidArgument: framing violation (bad magic/version, oversized
///    or corrupt payload) — close the connection;
///  - kUnavailable / kDeadlineExceeded: transport-level, from socket.hpp.
runtime::StatusOr<Frame> read_frame(TcpStream& stream,
                                    std::uint32_t max_payload = kDefaultMaxPayload);

/// A decoded frame whose payload borrows the caller's storage (valid
/// until the storage is reused for the next read).
struct FrameView {
  std::uint16_t kind = 0;
  std::uint64_t request_id = 0;
  std::span<const std::uint8_t> payload;
};

/// `read_frame` into pooled, reused storage: the payload lands in
/// `storage` (acquired from `pool` and grown only when a larger frame
/// arrives — steady-state reads touch no allocator at all) and the view
/// borrows it. Exactly read_frame's error taxonomy, plus
/// kResourceExhausted when the pool refuses the payload buffer.
runtime::StatusOr<FrameView> read_frame_view(TcpStream& stream, util::BufferPool& pool,
                                             util::PooledBuffer& storage,
                                             std::uint32_t max_payload = kDefaultMaxPayload);

// ---------------------------------------------------------------------------
// Resumable frame machines for nonblocking streams (the reactor server).
// Same validation, same error taxonomy, same pooled grow-only storage as
// the blocking calls above — but each pump does at most what the socket
// will take right now and parks mid-frame instead of sleeping.
// ---------------------------------------------------------------------------

/// Incremental HMMP decoder over a nonblocking stream. Feed it
/// readiness via `poll()`; it assembles header-then-payload across any
/// number of partial reads (a slow-loris peer trickling one byte per
/// round costs one buffered byte per round, not a blocked thread).
///
/// `poll()` returns OK(true) when a full, checksum-verified frame is
/// ready in `view()`; OK(false) when the socket would block (re-arm
/// EPOLLIN and come back); otherwise the read_frame error taxonomy
/// (kInvalidArgument protocol violation, kResourceExhausted pool
/// refusal, kUnavailable peer gone — with EOF between frames kept
/// distinguishable via `mid_frame()`). After consuming the view, call
/// `consume()` to rearm for the next frame; the payload storage is
/// reused grow-only across frames.
class FrameReader {
 public:
  explicit FrameReader(util::BufferPool& pool,
                       std::uint32_t max_payload = kDefaultMaxPayload) noexcept
      : pool_(&pool), max_payload_(max_payload) {}

  runtime::StatusOr<bool> poll(TcpStream& stream);

  /// Valid only after poll() returned OK(true) and before consume().
  [[nodiscard]] FrameView view() const noexcept;
  void consume() noexcept;

  /// True while a frame is partially assembled (≥1 byte consumed toward
  /// the next frame). EOF here is a torn frame; EOF otherwise is a
  /// quiet close. Also the anchor for slow-read deadlines: the caller
  /// timestamps the transition into mid-frame.
  [[nodiscard]] bool mid_frame() const noexcept {
    return state_ == State::kPayload || (state_ == State::kHeader && have_ > 0);
  }

  /// Hand the payload storage back (e.g. to sample gauges in tests).
  [[nodiscard]] const util::PooledBuffer& storage() const noexcept { return storage_; }

 private:
  enum class State : std::uint8_t { kHeader, kPayload, kReady };

  util::BufferPool* pool_;
  std::uint32_t max_payload_;
  State state_ = State::kHeader;
  std::size_t have_ = 0;  // bytes assembled in the current state
  std::array<std::uint8_t, kHeaderBytes> header_{};
  std::uint16_t kind_ = 0;
  std::uint64_t request_id_ = 0;
  std::uint32_t payload_len_ = 0;
  std::uint64_t checksum_ = 0;
  util::PooledBuffer storage_;
};

/// One queued outbound frame: the 28-byte wire header plus a small
/// inline payload head (e.g. PERMUTE_OK's 8-byte count header) live in
/// `prefix`; the bulk payload rides as a pooled buffer and/or an owned
/// vector, never copied. `tag` is an opaque caller label reported back
/// on completion (the server uses it to split ok/error counters at the
/// moment the frame actually reaches the wire).
struct OutboundFrame {
  std::array<std::uint8_t, kHeaderBytes + 24> prefix{};
  std::size_t prefix_len = 0;
  util::PooledBuffer pooled;
  std::size_t pooled_len = 0;
  std::vector<std::uint8_t> owned;
  std::size_t offset = 0;  // flush progress across the concatenation
  std::uint8_t tag = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return prefix_len + pooled_len + owned.size();
  }
};

/// Build an OutboundFrame. Payload = inline_payload ∥ pooled[0,
/// pooled_len) ∥ owned; the checksum is streamed across all three.
/// `inline_payload.size()` must fit the prefix tail (≤ 24 bytes).
runtime::StatusOr<OutboundFrame> make_outbound_frame(
    std::uint16_t kind, std::uint64_t request_id,
    std::span<const std::uint8_t> inline_payload, util::PooledBuffer pooled,
    std::size_t pooled_len, std::vector<std::uint8_t> owned, std::uint8_t tag = 0);

/// Incremental scatter-gather flusher for a nonblocking stream: a FIFO
/// of OutboundFrames drained with at most one sendmsg per pump round,
/// resuming mid-frame across partial writes. `flush()` returns OK(true)
/// when the queue is empty, OK(false) when the socket would block
/// (arm EPOLLOUT and come back), or the transport error. `on_complete`
/// (optional) fires once per frame the moment its last byte is
/// accepted by the kernel.
class FrameWriter {
 public:
  void enqueue(OutboundFrame frame) {
    pending_bytes_ += frame.total();
    queue_.push_back(std::move(frame));
  }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return pending_bytes_; }

  using CompletionFn = void (*)(void* ctx, const OutboundFrame& frame);
  runtime::StatusOr<bool> flush(TcpStream& stream, CompletionFn on_complete = nullptr,
                                void* ctx = nullptr);

 private:
  std::deque<OutboundFrame> queue_;
  std::size_t pending_bytes_ = 0;
};

}  // namespace hmm::net
