#pragma once
/// \file frame_io.hpp
/// \brief Reading/writing HMMP frames over a TcpStream.
///
/// The stream variant of wire.hpp's buffer codec: the header is read
/// first (fixed 28 bytes), validated, and only then is the payload —
/// already bounded by `max_payload` — pulled off the socket. A frame
/// that fails validation is a **protocol error** (`kInvalidArgument`
/// carrying the FrameError text); both peers respond by dropping the
/// connection, because after a framing violation the stream position is
/// unrecoverable. Transport failures keep their socket.hpp taxonomy
/// (`kUnavailable` peer-gone, `kDeadlineExceeded` timeout).

#include <cstdint>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "runtime/status.hpp"

namespace hmm::net {

/// Send one frame (header + payload) in full.
runtime::Status write_frame(TcpStream& stream, const Frame& frame);

/// Receive one full frame. Error taxonomy:
///  - kInvalidArgument: framing violation (bad magic/version, oversized
///    or corrupt payload) — close the connection;
///  - kUnavailable / kDeadlineExceeded: transport-level, from socket.hpp.
runtime::StatusOr<Frame> read_frame(TcpStream& stream,
                                    std::uint32_t max_payload = kDefaultMaxPayload);

}  // namespace hmm::net
