#include "net/protocol.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

std::string_view to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kPing: return "PING";
    case MsgKind::kSubmitPlan: return "SUBMIT_PLAN";
    case MsgKind::kPermute: return "PERMUTE";
    case MsgKind::kStats: return "STATS";
    case MsgKind::kExecuteProgram: return "EXECUTE_PROGRAM";
    case MsgKind::kPingOk: return "PING_OK";
    case MsgKind::kPlanOk: return "PLAN_OK";
    case MsgKind::kPermuteOk: return "PERMUTE_OK";
    case MsgKind::kStatsOk: return "STATS_OK";
    case MsgKind::kProgramOk: return "PROGRAM_OK";
    case MsgKind::kError: return "ERROR";
  }
  return "UNKNOWN";
}

bool is_request_kind(std::uint16_t kind) noexcept {
  switch (static_cast<MsgKind>(kind)) {
    case MsgKind::kPing:
    case MsgKind::kSubmitPlan:
    case MsgKind::kPermute:
    case MsgKind::kStats:
    case MsgKind::kExecuteProgram:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(WireError e) noexcept {
  switch (e) {
    case WireError::kOk: return "OK";
    case WireError::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireError::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireError::kRetryLater: return "RETRY_LATER";
    case WireError::kPlanBuildFailed: return "PLAN_BUILD_FAILED";
    case WireError::kCancelled: return "CANCELLED";
    case WireError::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

WireError to_wire(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return WireError::kOk;
    case StatusCode::kInvalidArgument: return WireError::kInvalidArgument;
    case StatusCode::kDeadlineExceeded: return WireError::kDeadlineExceeded;
    case StatusCode::kResourceExhausted: return WireError::kRetryLater;
    case StatusCode::kPlanBuildFailed: return WireError::kPlanBuildFailed;
    case StatusCode::kCancelled: return WireError::kCancelled;
    case StatusCode::kUnavailable: return WireError::kUnavailable;
  }
  return WireError::kUnavailable;
}

StatusCode from_wire(std::uint32_t code) noexcept {
  switch (static_cast<WireError>(code)) {
    case WireError::kOk: return StatusCode::kOk;
    case WireError::kInvalidArgument: return StatusCode::kInvalidArgument;
    case WireError::kDeadlineExceeded: return StatusCode::kDeadlineExceeded;
    case WireError::kRetryLater: return StatusCode::kResourceExhausted;
    case WireError::kPlanBuildFailed: return StatusCode::kPlanBuildFailed;
    case WireError::kCancelled: return StatusCode::kCancelled;
    case WireError::kUnavailable: return StatusCode::kUnavailable;
  }
  return StatusCode::kUnavailable;
}

namespace {

/// Shared tail decoder for "u64 count + count u32 words" payloads.
/// `max_elements` bounds allocation before it happens — a hostile
/// header cannot make the receiver reserve count*4 bytes blindly.
StatusOr<std::vector<std::uint32_t>> decode_words(ByteReader& r, std::uint64_t count,
                                                  std::uint64_t max_elements,
                                                  std::string_view what) {
  if (count == 0) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": empty element array");
  }
  if (count > max_elements) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": element count exceeds the receiver's limit");
  }
  if (r.remaining() != count * kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": payload length does not match element count");
  }
  std::vector<std::uint32_t> words(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!r.get_u32(words[i])) {
      return Status(StatusCode::kInvalidArgument, std::string(what) + ": truncated elements");
    }
  }
  return words;
}

/// View-form of decode_words: identical validation, but the element
/// bytes are borrowed instead of copied into a fresh vector.
StatusOr<WordsView> decode_words_view(ByteReader& r, std::uint64_t count,
                                      std::uint64_t max_elements, std::string_view what) {
  if (count == 0) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": empty element array");
  }
  if (count > max_elements) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": element count exceeds the receiver's limit");
  }
  if (r.remaining() != count * kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": payload length does not match element count");
  }
  WordsView view;
  view.count = count;
  if (!r.get_bytes(count * kElemBytes, view.bytes)) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": truncated elements");
  }
  return view;
}

}  // namespace

void WordsView::copy_to(std::span<std::uint32_t> out) const noexcept {
  if (out.size() != count) return;  // contract violation; never partial-write
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), bytes.data(), count * kElemBytes);
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t* b = bytes.data() + i * kElemBytes;
      out[i] = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }
  }
}

std::vector<std::uint8_t> SubmitPlanRequest::encode() const {
  ByteWriter w;
  w.put_u64(mapping.size());
  w.put_u32_span(mapping);
  return w.take();
}

StatusOr<SubmitPlanRequest> SubmitPlanRequest::decode(std::span<const std::uint8_t> payload,
                                                      std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t n = 0;
  if (!r.get_u64(n)) {
    return Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: truncated header");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, n, max_elements, "SUBMIT_PLAN");
  if (!words.ok()) return words.status();
  SubmitPlanRequest req;
  req.mapping = std::move(words).value();
  return req;
}

StatusOr<SubmitPlanRequestView> SubmitPlanRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t n = 0;
  if (!r.get_u64(n)) {
    return Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: truncated header");
  }
  StatusOr<WordsView> words = decode_words_view(r, n, max_elements, "SUBMIT_PLAN");
  if (!words.ok()) return words.status();
  SubmitPlanRequestView view;
  view.mapping = words.value();
  return view;
}

std::vector<std::uint8_t> PermuteRequest::encode() const {
  ByteWriter w;
  w.put_u64(plan_id);
  w.put_u32(deadline_ms);
  w.put_u32(kElemBytes);
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<PermuteRequest> PermuteRequest::decode(std::span<const std::uint8_t> payload,
                                                std::uint64_t max_elements) {
  ByteReader r(payload);
  PermuteRequest req;
  std::uint32_t elem_bytes = 0;
  std::uint64_t count = 0;
  if (!r.get_u64(req.plan_id) || !r.get_u32(req.deadline_ms) || !r.get_u32(elem_bytes) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE: unsupported element width (v1 speaks 4-byte elements)");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "PERMUTE");
  if (!words.ok()) return words.status();
  req.data = std::move(words).value();
  return req;
}

StatusOr<PermuteRequestView> PermuteRequestView::decode(std::span<const std::uint8_t> payload,
                                                        std::uint64_t max_elements) {
  ByteReader r(payload);
  PermuteRequestView view;
  std::uint32_t elem_bytes = 0;
  std::uint64_t count = 0;
  if (!r.get_u64(view.plan_id) || !r.get_u32(view.deadline_ms) || !r.get_u32(elem_bytes) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE: unsupported element width (v1 speaks 4-byte elements)");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "PERMUTE");
  if (!words.ok()) return words.status();
  view.data = words.value();
  return view;
}

std::vector<std::uint8_t> PermuteResponse::encode() const {
  ByteWriter w;
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<PermuteResponse> PermuteResponse::decode(std::span<const std::uint8_t> payload,
                                                  std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE_OK: truncated header");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "PERMUTE_OK");
  if (!words.ok()) return words.status();
  PermuteResponse resp;
  resp.data = std::move(words).value();
  return resp;
}

Status PermuteResponse::decode_into(std::span<const std::uint8_t> payload,
                                    std::span<std::uint32_t> out) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE_OK: truncated header");
  }
  if (count != out.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE_OK: element count does not match the request");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, out.size(), "PERMUTE_OK");
  if (!words.ok()) return words.status();
  words.value().copy_to(out);
  return Status::ok();
}

namespace {

/// Shared EXECUTE_PROGRAM prefix decoder: everything before the element
/// region. On success `count_out` holds the wire element count and `r`
/// sits at the first element byte. Strict: any malformed field is a
/// typed kInvalidArgument, never an exception or a partial decode.
Status decode_program_prefix(ByteReader& r, std::uint32_t& deadline_ms, std::uint32_t& flags,
                             std::vector<runtime::ProgramOp>& ops, std::uint64_t& count_out) {
  std::uint32_t elem_bytes = 0;
  std::uint32_t op_count = 0;
  if (!r.get_u32(deadline_ms) || !r.get_u32(elem_bytes) || !r.get_u32(flags) ||
      !r.get_u32(op_count)) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: unsupported element width (v1 speaks 4-byte elements)");
  }
  if ((flags & ~kProgramFlagsMask) != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: unknown flag bits (reserved bits must be zero)");
  }
  if (op_count == 0) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: empty program");
  }
  if (op_count > runtime::kMaxProgramOps) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: program op count exceeds the limit");
  }
  ops.clear();
  ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    std::uint32_t opcode = 0;
    std::uint32_t reserved = 0;
    std::uint64_t arg = 0;
    if (!r.get_u32(opcode) || !r.get_u32(reserved) || !r.get_u64(arg)) {
      return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated op list");
    }
    if (reserved != 0) {
      return Status(StatusCode::kInvalidArgument,
                    "EXECUTE_PROGRAM: reserved op field must be zero");
    }
    if (!runtime::is_known_opcode(opcode)) {
      return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: unknown program opcode");
    }
    ops.push_back(runtime::ProgramOp{static_cast<runtime::ProgramOpCode>(opcode), arg});
  }
  if (!r.get_u64(count_out)) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated element count");
  }
  return Status::ok();
}

}  // namespace

std::vector<std::uint8_t> ExecuteProgramRequest::encode() const {
  ByteWriter w;
  w.put_u32(deadline_ms);
  w.put_u32(kElemBytes);
  w.put_u32(flags);
  w.put_u32(static_cast<std::uint32_t>(ops.size()));
  for (const runtime::ProgramOp& op : ops) {
    w.put_u32(static_cast<std::uint32_t>(op.op));
    w.put_u32(0);  // reserved
    w.put_u64(op.arg);
  }
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<ExecuteProgramRequest> ExecuteProgramRequest::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ExecuteProgramRequest req;
  std::uint64_t count = 0;
  Status prefix = decode_program_prefix(r, req.deadline_ms, req.flags, req.ops, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<std::vector<std::uint32_t>> words =
      decode_words(r, count, max_elements, "EXECUTE_PROGRAM");
  if (!words.ok()) return words.status();
  req.data = std::move(words).value();
  return req;
}

StatusOr<ExecuteProgramRequestView> ExecuteProgramRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ExecuteProgramRequestView view;
  std::uint64_t count = 0;
  Status prefix = decode_program_prefix(r, view.deadline_ms, view.flags, view.ops, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "EXECUTE_PROGRAM");
  if (!words.ok()) return words.status();
  view.data = words.value();
  return view;
}

std::vector<std::uint8_t> ErrorResponse::encode() const {
  ByteWriter w;
  w.put_u32(code);
  w.put_string(message);
  return w.take();
}

StatusOr<ErrorResponse> ErrorResponse::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ErrorResponse resp;
  if (!r.get_u32(resp.code)) {
    return Status(StatusCode::kInvalidArgument, "ERROR: truncated code");
  }
  resp.message = r.rest_as_string();
  return resp;
}

Status ErrorResponse::to_status() const {
  const StatusCode sc = from_wire(code);
  if (sc == StatusCode::kOk) {
    // An ERROR frame claiming OK is itself a protocol violation.
    return Status(StatusCode::kUnavailable, "peer sent an ERROR frame with code OK");
  }
  return Status(sc, message);
}

Frame make_ok_frame(std::uint64_t request_id, MsgKind kind, std::vector<std::uint8_t> payload) {
  Frame f;
  f.kind = static_cast<std::uint16_t>(kind);
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

Frame make_error_frame(std::uint64_t request_id, const Status& status) {
  ErrorResponse err;
  err.code = static_cast<std::uint32_t>(to_wire(status.code()));
  err.message = status.message();
  Frame f;
  f.kind = static_cast<std::uint16_t>(MsgKind::kError);
  f.request_id = request_id;
  f.payload = err.encode();
  return f;
}

}  // namespace hmm::net
