#include "net/protocol.hpp"

namespace hmm::net {

using runtime::Status;
using runtime::StatusCode;
using runtime::StatusOr;

std::string_view to_string(MsgKind kind) noexcept {
  switch (kind) {
    case MsgKind::kPing: return "PING";
    case MsgKind::kSubmitPlan: return "SUBMIT_PLAN";
    case MsgKind::kPermute: return "PERMUTE";
    case MsgKind::kStats: return "STATS";
    case MsgKind::kExecuteProgram: return "EXECUTE_PROGRAM";
    case MsgKind::kShardExec: return "SHARD_EXEC";
    case MsgKind::kShardXchg: return "SHARD_XCHG";
    case MsgKind::kPingOk: return "PING_OK";
    case MsgKind::kPlanOk: return "PLAN_OK";
    case MsgKind::kPermuteOk: return "PERMUTE_OK";
    case MsgKind::kStatsOk: return "STATS_OK";
    case MsgKind::kProgramOk: return "PROGRAM_OK";
    case MsgKind::kShardExecOk: return "SHARD_EXEC_OK";
    case MsgKind::kShardXchgOk: return "SHARD_XCHG_OK";
    case MsgKind::kError: return "ERROR";
  }
  return "UNKNOWN";
}

bool is_request_kind(std::uint16_t kind) noexcept {
  switch (static_cast<MsgKind>(kind)) {
    case MsgKind::kPing:
    case MsgKind::kSubmitPlan:
    case MsgKind::kPermute:
    case MsgKind::kStats:
    case MsgKind::kExecuteProgram:
    case MsgKind::kShardExec:
    case MsgKind::kShardXchg:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(WireError e) noexcept {
  switch (e) {
    case WireError::kOk: return "OK";
    case WireError::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireError::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case WireError::kRetryLater: return "RETRY_LATER";
    case WireError::kPlanBuildFailed: return "PLAN_BUILD_FAILED";
    case WireError::kCancelled: return "CANCELLED";
    case WireError::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

WireError to_wire(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return WireError::kOk;
    case StatusCode::kInvalidArgument: return WireError::kInvalidArgument;
    case StatusCode::kDeadlineExceeded: return WireError::kDeadlineExceeded;
    case StatusCode::kResourceExhausted: return WireError::kRetryLater;
    case StatusCode::kPlanBuildFailed: return WireError::kPlanBuildFailed;
    case StatusCode::kCancelled: return WireError::kCancelled;
    case StatusCode::kUnavailable: return WireError::kUnavailable;
  }
  return WireError::kUnavailable;
}

StatusCode from_wire(std::uint32_t code) noexcept {
  switch (static_cast<WireError>(code)) {
    case WireError::kOk: return StatusCode::kOk;
    case WireError::kInvalidArgument: return StatusCode::kInvalidArgument;
    case WireError::kDeadlineExceeded: return StatusCode::kDeadlineExceeded;
    case WireError::kRetryLater: return StatusCode::kResourceExhausted;
    case WireError::kPlanBuildFailed: return StatusCode::kPlanBuildFailed;
    case WireError::kCancelled: return StatusCode::kCancelled;
    case WireError::kUnavailable: return StatusCode::kUnavailable;
  }
  return StatusCode::kUnavailable;
}

namespace {

/// Shared tail decoder for "u64 count + count u32 words" payloads.
/// `max_elements` bounds allocation before it happens — a hostile
/// header cannot make the receiver reserve count*4 bytes blindly.
StatusOr<std::vector<std::uint32_t>> decode_words(ByteReader& r, std::uint64_t count,
                                                  std::uint64_t max_elements,
                                                  std::string_view what) {
  if (count == 0) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": empty element array");
  }
  if (count > max_elements) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": element count exceeds the receiver's limit");
  }
  if (r.remaining() != count * kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": payload length does not match element count");
  }
  std::vector<std::uint32_t> words(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!r.get_u32(words[i])) {
      return Status(StatusCode::kInvalidArgument, std::string(what) + ": truncated elements");
    }
  }
  return words;
}

/// View-form of decode_words: identical validation, but the element
/// bytes are borrowed instead of copied into a fresh vector.
StatusOr<WordsView> decode_words_view(ByteReader& r, std::uint64_t count,
                                      std::uint64_t max_elements, std::string_view what) {
  if (count == 0) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": empty element array");
  }
  if (count > max_elements) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": element count exceeds the receiver's limit");
  }
  if (r.remaining() != count * kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  std::string(what) + ": payload length does not match element count");
  }
  WordsView view;
  view.count = count;
  if (!r.get_bytes(count * kElemBytes, view.bytes)) {
    return Status(StatusCode::kInvalidArgument, std::string(what) + ": truncated elements");
  }
  return view;
}

}  // namespace

void WordsView::copy_to(std::span<std::uint32_t> out) const noexcept {
  if (out.size() != count) return;  // contract violation; never partial-write
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), bytes.data(), count * kElemBytes);
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t* b = bytes.data() + i * kElemBytes;
      out[i] = static_cast<std::uint32_t>(b[0]) | (static_cast<std::uint32_t>(b[1]) << 8) |
               (static_cast<std::uint32_t>(b[2]) << 16) |
               (static_cast<std::uint32_t>(b[3]) << 24);
    }
  }
}

std::vector<std::uint8_t> SubmitPlanRequest::encode() const {
  ByteWriter w;
  w.put_u64(mapping.size());
  w.put_u32_span(mapping);
  return w.take();
}

StatusOr<SubmitPlanRequest> SubmitPlanRequest::decode(std::span<const std::uint8_t> payload,
                                                      std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t n = 0;
  if (!r.get_u64(n)) {
    return Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: truncated header");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, n, max_elements, "SUBMIT_PLAN");
  if (!words.ok()) return words.status();
  SubmitPlanRequest req;
  req.mapping = std::move(words).value();
  return req;
}

StatusOr<SubmitPlanRequestView> SubmitPlanRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t n = 0;
  if (!r.get_u64(n)) {
    return Status(StatusCode::kInvalidArgument, "SUBMIT_PLAN: truncated header");
  }
  StatusOr<WordsView> words = decode_words_view(r, n, max_elements, "SUBMIT_PLAN");
  if (!words.ok()) return words.status();
  SubmitPlanRequestView view;
  view.mapping = words.value();
  return view;
}

std::vector<std::uint8_t> PermuteRequest::encode() const {
  ByteWriter w;
  w.put_u64(plan_id);
  w.put_u32(deadline_ms);
  w.put_u32(kElemBytes);
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<PermuteRequest> PermuteRequest::decode(std::span<const std::uint8_t> payload,
                                                std::uint64_t max_elements) {
  ByteReader r(payload);
  PermuteRequest req;
  std::uint32_t elem_bytes = 0;
  std::uint64_t count = 0;
  if (!r.get_u64(req.plan_id) || !r.get_u32(req.deadline_ms) || !r.get_u32(elem_bytes) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE: unsupported element width (v1 speaks 4-byte elements)");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "PERMUTE");
  if (!words.ok()) return words.status();
  req.data = std::move(words).value();
  return req;
}

StatusOr<PermuteRequestView> PermuteRequestView::decode(std::span<const std::uint8_t> payload,
                                                        std::uint64_t max_elements) {
  ByteReader r(payload);
  PermuteRequestView view;
  std::uint32_t elem_bytes = 0;
  std::uint64_t count = 0;
  if (!r.get_u64(view.plan_id) || !r.get_u32(view.deadline_ms) || !r.get_u32(elem_bytes) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE: unsupported element width (v1 speaks 4-byte elements)");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "PERMUTE");
  if (!words.ok()) return words.status();
  view.data = words.value();
  return view;
}

std::vector<std::uint8_t> PermuteResponse::encode() const {
  ByteWriter w;
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<PermuteResponse> PermuteResponse::decode(std::span<const std::uint8_t> payload,
                                                  std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE_OK: truncated header");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "PERMUTE_OK");
  if (!words.ok()) return words.status();
  PermuteResponse resp;
  resp.data = std::move(words).value();
  return resp;
}

Status PermuteResponse::decode_into(std::span<const std::uint8_t> payload,
                                    std::span<std::uint32_t> out) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE_OK: truncated header");
  }
  if (count != out.size()) {
    return Status(StatusCode::kInvalidArgument,
                  "PERMUTE_OK: element count does not match the request");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, out.size(), "PERMUTE_OK");
  if (!words.ok()) return words.status();
  words.value().copy_to(out);
  return Status::ok();
}

namespace {

/// Shared SHARD_EXEC prefix decoder: fixed header, peer table, and the
/// zero padding that puts the band on an 8-byte payload offset. On
/// success `count_out` holds the band element count and `r` sits at the
/// first band byte. Strict: every malformed field is a typed
/// kInvalidArgument.
Status decode_shard_exec_prefix(ByteReader& r, std::size_t payload_len,
                                std::uint64_t& session_id, std::uint64_t& plan_id,
                                std::uint32_t& deadline_ms, std::uint32_t& shard_index,
                                std::uint64_t& rows, std::uint64_t& cols,
                                std::vector<ShardPeer>& peers, std::uint64_t& count_out) {
  std::uint32_t version = 0;
  std::uint32_t elem_bytes = 0;
  std::uint32_t shard_count = 0;
  std::uint32_t reserved = 0;
  if (!r.get_u32(version) || !r.get_u32(elem_bytes) || !r.get_u64(session_id) ||
      !r.get_u64(plan_id) || !r.get_u32(deadline_ms) || !r.get_u32(shard_index) ||
      !r.get_u32(shard_count) || !r.get_u32(reserved) || !r.get_u64(rows) ||
      !r.get_u64(cols)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: truncated header");
  }
  if (version != kShardProtocolVersion) {
    return Status(StatusCode::kInvalidArgument,
                  "SHARD_EXEC: unsupported shard protocol version");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "SHARD_EXEC: unsupported element width (v1 speaks 4-byte elements)");
  }
  if (reserved != 0) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: reserved field must be zero");
  }
  if (shard_count == 0 || shard_count > kMaxWireShards) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: shard count out of range");
  }
  if (shard_index >= shard_count) {
    return Status(StatusCode::kInvalidArgument,
                  "SHARD_EXEC: shard index out of range for the shard count");
  }
  if (rows == 0 || cols == 0 || rows > (1ull << 32) || cols > (1ull << 32)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: matrix shape out of range");
  }
  peers.clear();
  peers.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    std::uint16_t port = 0;
    std::uint16_t host_len = 0;
    std::span<const std::uint8_t> host;
    if (!r.get_u16(port) || !r.get_u16(host_len) ||
        !r.get_bytes(host_len, host)) {
      return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: truncated peer table");
    }
    if (port == 0) {
      return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: peer port must be nonzero");
    }
    if (host_len == 0 || host_len > kMaxShardHostLen) {
      return Status(StatusCode::kInvalidArgument,
                    "SHARD_EXEC: peer host length out of range");
    }
    peers.push_back(ShardPeer{
        std::string(reinterpret_cast<const char*>(host.data()), host.size()), port});
  }
  const std::size_t consumed = payload_len - r.remaining();
  const std::size_t pad = (8 - consumed % 8) % 8;
  std::span<const std::uint8_t> pad_bytes;
  if (!r.get_bytes(pad, pad_bytes)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: truncated padding");
  }
  for (std::uint8_t b : pad_bytes) {
    if (b != 0) {
      return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: padding must be zero");
    }
  }
  if (!r.get_u64(count_out)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_EXEC: truncated element count");
  }
  return Status::ok();
}

/// Everything of a SHARD_EXEC frame before the band bytes.
std::vector<std::uint8_t> encode_shard_exec_prefix(
    std::uint64_t session_id, std::uint64_t plan_id, std::uint32_t deadline_ms,
    std::uint32_t shard_index, std::uint64_t rows, std::uint64_t cols,
    std::span<const ShardPeer> peers, std::uint64_t count) {
  ByteWriter w;
  w.put_u32(kShardProtocolVersion);
  w.put_u32(kElemBytes);
  w.put_u64(session_id);
  w.put_u64(plan_id);
  w.put_u32(deadline_ms);
  w.put_u32(shard_index);
  w.put_u32(static_cast<std::uint32_t>(peers.size()));
  w.put_u32(0);  // reserved
  w.put_u64(rows);
  w.put_u64(cols);
  std::size_t offset = 56;
  for (const ShardPeer& peer : peers) {
    w.put_u16(peer.port);
    w.put_u16(static_cast<std::uint16_t>(peer.host.size()));
    w.put_string(peer.host);
    offset += 4 + peer.host.size();
  }
  const std::size_t pad = (8 - offset % 8) % 8;
  for (std::size_t i = 0; i < pad; ++i) w.put_u8(0);
  w.put_u64(count);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> ShardExecRequest::encode() const {
  std::vector<std::uint8_t> out = encode_prefix(band.size());
  ByteWriter w;
  w.put_u32_span(band);
  std::vector<std::uint8_t> data = w.take();
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::vector<std::uint8_t> ShardExecRequest::encode_prefix(std::uint64_t count) const {
  return encode_shard_exec_prefix(session_id, plan_id, deadline_ms, shard_index, rows, cols,
                                  peers, count);
}

StatusOr<ShardExecRequest> ShardExecRequest::decode(std::span<const std::uint8_t> payload,
                                                    std::uint64_t max_elements) {
  ByteReader r(payload);
  ShardExecRequest req;
  std::uint64_t count = 0;
  Status prefix = decode_shard_exec_prefix(r, payload.size(), req.session_id, req.plan_id,
                                           req.deadline_ms, req.shard_index, req.rows,
                                           req.cols, req.peers, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "SHARD_EXEC");
  if (!words.ok()) return words.status();
  req.band = std::move(words).value();
  return req;
}

StatusOr<ShardExecRequestView> ShardExecRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ShardExecRequestView view;
  std::uint64_t count = 0;
  Status prefix = decode_shard_exec_prefix(r, payload.size(), view.session_id, view.plan_id,
                                           view.deadline_ms, view.shard_index, view.rows,
                                           view.cols, view.peers, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "SHARD_EXEC");
  if (!words.ok()) return words.status();
  view.band = words.value();
  return view;
}

std::vector<std::uint8_t> ShardXchgRequest::encode() const {
  std::vector<std::uint8_t> out = encode_prefix(block.size());
  ByteWriter w;
  w.put_u32_span(block);
  std::vector<std::uint8_t> data = w.take();
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::vector<std::uint8_t> ShardXchgRequest::encode_prefix(std::uint64_t count) const {
  ByteWriter w;
  w.put_u64(session_id);
  w.put_u32(round);
  w.put_u32(src_shard);
  w.put_u64(count);
  return w.take();
}

StatusOr<ShardXchgRequest> ShardXchgRequest::decode(std::span<const std::uint8_t> payload,
                                                    std::uint64_t max_elements) {
  ByteReader r(payload);
  ShardXchgRequest req;
  std::uint64_t count = 0;
  if (!r.get_u64(req.session_id) || !r.get_u32(req.round) || !r.get_u32(req.src_shard) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: truncated header");
  }
  if (req.round != 1 && req.round != 2) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: round must be 1 or 2");
  }
  if (req.src_shard >= kMaxWireShards) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: source shard out of range");
  }
  StatusOr<std::vector<std::uint32_t>> words = decode_words(r, count, max_elements, "SHARD_XCHG");
  if (!words.ok()) return words.status();
  req.block = std::move(words).value();
  return req;
}

StatusOr<ShardXchgRequestView> ShardXchgRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ShardXchgRequestView view;
  std::uint64_t count = 0;
  if (!r.get_u64(view.session_id) || !r.get_u32(view.round) || !r.get_u32(view.src_shard) ||
      !r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: truncated header");
  }
  if (view.round != 1 && view.round != 2) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: round must be 1 or 2");
  }
  if (view.src_shard >= kMaxWireShards) {
    return Status(StatusCode::kInvalidArgument, "SHARD_XCHG: source shard out of range");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "SHARD_XCHG");
  if (!words.ok()) return words.status();
  view.block = words.value();
  return view;
}

StatusOr<WordsResponseView> WordsResponseView::decode(std::span<const std::uint8_t> payload,
                                                      std::uint64_t max_elements) {
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.get_u64(count)) {
    return Status(StatusCode::kInvalidArgument, "PERMUTE_OK: truncated header");
  }
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "PERMUTE_OK");
  if (!words.ok()) return words.status();
  WordsResponseView view;
  view.data = words.value();
  return view;
}

namespace {

/// Shared EXECUTE_PROGRAM prefix decoder: everything before the element
/// region. On success `count_out` holds the wire element count and `r`
/// sits at the first element byte. Strict: any malformed field is a
/// typed kInvalidArgument, never an exception or a partial decode.
Status decode_program_prefix(ByteReader& r, std::uint32_t& deadline_ms, std::uint32_t& flags,
                             std::vector<runtime::ProgramOp>& ops, std::uint64_t& count_out) {
  std::uint32_t elem_bytes = 0;
  std::uint32_t op_count = 0;
  if (!r.get_u32(deadline_ms) || !r.get_u32(elem_bytes) || !r.get_u32(flags) ||
      !r.get_u32(op_count)) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated header");
  }
  if (elem_bytes != kElemBytes) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: unsupported element width (v1 speaks 4-byte elements)");
  }
  if ((flags & ~kProgramFlagsMask) != 0) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: unknown flag bits (reserved bits must be zero)");
  }
  if (op_count == 0) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: empty program");
  }
  if (op_count > runtime::kMaxProgramOps) {
    return Status(StatusCode::kInvalidArgument,
                  "EXECUTE_PROGRAM: program op count exceeds the limit");
  }
  ops.clear();
  ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    std::uint32_t opcode = 0;
    std::uint32_t reserved = 0;
    std::uint64_t arg = 0;
    if (!r.get_u32(opcode) || !r.get_u32(reserved) || !r.get_u64(arg)) {
      return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated op list");
    }
    if (reserved != 0) {
      return Status(StatusCode::kInvalidArgument,
                    "EXECUTE_PROGRAM: reserved op field must be zero");
    }
    if (!runtime::is_known_opcode(opcode)) {
      return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: unknown program opcode");
    }
    ops.push_back(runtime::ProgramOp{static_cast<runtime::ProgramOpCode>(opcode), arg});
  }
  if (!r.get_u64(count_out)) {
    return Status(StatusCode::kInvalidArgument, "EXECUTE_PROGRAM: truncated element count");
  }
  return Status::ok();
}

}  // namespace

std::vector<std::uint8_t> ExecuteProgramRequest::encode() const {
  ByteWriter w;
  w.put_u32(deadline_ms);
  w.put_u32(kElemBytes);
  w.put_u32(flags);
  w.put_u32(static_cast<std::uint32_t>(ops.size()));
  for (const runtime::ProgramOp& op : ops) {
    w.put_u32(static_cast<std::uint32_t>(op.op));
    w.put_u32(0);  // reserved
    w.put_u64(op.arg);
  }
  w.put_u64(data.size());
  w.put_u32_span(data);
  return w.take();
}

StatusOr<ExecuteProgramRequest> ExecuteProgramRequest::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ExecuteProgramRequest req;
  std::uint64_t count = 0;
  Status prefix = decode_program_prefix(r, req.deadline_ms, req.flags, req.ops, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<std::vector<std::uint32_t>> words =
      decode_words(r, count, max_elements, "EXECUTE_PROGRAM");
  if (!words.ok()) return words.status();
  req.data = std::move(words).value();
  return req;
}

StatusOr<ExecuteProgramRequestView> ExecuteProgramRequestView::decode(
    std::span<const std::uint8_t> payload, std::uint64_t max_elements) {
  ByteReader r(payload);
  ExecuteProgramRequestView view;
  std::uint64_t count = 0;
  Status prefix = decode_program_prefix(r, view.deadline_ms, view.flags, view.ops, count);
  if (!prefix.is_ok()) return prefix;
  StatusOr<WordsView> words = decode_words_view(r, count, max_elements, "EXECUTE_PROGRAM");
  if (!words.ok()) return words.status();
  view.data = words.value();
  return view;
}

std::vector<std::uint8_t> ErrorResponse::encode() const {
  ByteWriter w;
  w.put_u32(code);
  w.put_string(message);
  return w.take();
}

StatusOr<ErrorResponse> ErrorResponse::decode(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  ErrorResponse resp;
  if (!r.get_u32(resp.code)) {
    return Status(StatusCode::kInvalidArgument, "ERROR: truncated code");
  }
  resp.message = r.rest_as_string();
  return resp;
}

Status ErrorResponse::to_status() const {
  const StatusCode sc = from_wire(code);
  if (sc == StatusCode::kOk) {
    // An ERROR frame claiming OK is itself a protocol violation.
    return Status(StatusCode::kUnavailable, "peer sent an ERROR frame with code OK");
  }
  return Status(sc, message);
}

Frame make_ok_frame(std::uint64_t request_id, MsgKind kind, std::vector<std::uint8_t> payload) {
  Frame f;
  f.kind = static_cast<std::uint16_t>(kind);
  f.request_id = request_id;
  f.payload = std::move(payload);
  return f;
}

Frame make_error_frame(std::uint64_t request_id, const Status& status) {
  ErrorResponse err;
  err.code = static_cast<std::uint32_t>(to_wire(status.code()));
  err.message = status.message();
  Frame f;
  f.kind = static_cast<std::uint16_t>(MsgKind::kError);
  f.request_id = request_id;
  f.payload = err.encode();
  return f;
}

}  // namespace hmm::net
