#pragma once
/// \file shard.hpp
/// \brief Shard-side state of a distributed PERMUTE: the session
///        registry that pairs one SHARD_EXEC execution with the
///        SHARD_XCHG blocks its peers push at it.
///
/// A distributed execution is keyed by a coordinator-chosen session id.
/// The SHARD_EXEC handler creates the session (allocating both exchange
/// staging buffers from the shared BufferPool up front), runs the three
/// band-local passes, and between them waits for the session to collect
/// all `shards` blocks of the active round. SHARD_XCHG connections
/// arrive on independent server threads — possibly *before* the local
/// SHARD_EXEC has been decoded — so `await` blocks (bounded) for the
/// session to appear, then scatters the block straight into staging.
///
/// Failure discipline: every exit path erases the session, and the
/// staging buffers are pooled RAII handles — a shard that aborts
/// mid-exchange (peer died, deadline passed, malformed block) releases
/// every staged byte, which the tests verify via pool-stats deltas.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "runtime/distributed.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"

namespace hmm::net {

/// One in-flight distributed execution on this shard. Thread-safe: the
/// exec thread and any number of SHARD_XCHG connection threads share
/// it. Blocks from distinct sources land in disjoint staging regions,
/// so scatters run outside the lock; arrival bookkeeping is locked.
class ShardSession {
 public:
  ShardSession(runtime::BandPlan plan, std::uint32_t shard_index, util::PooledBuffer z,
               util::PooledBuffer x);

  [[nodiscard]] const runtime::BandPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint32_t shard_index() const noexcept { return shard_index_; }

  /// Shard's slice of the transposed view (round-1 target, pass-2 input).
  [[nodiscard]] std::span<std::uint32_t> z_span() noexcept;
  /// Shard's pass-3 input (round-2 target).
  [[nodiscard]] std::span<std::uint32_t> x_span() noexcept;

  /// Scatter one round-`round` block from `src` into staging and mark
  /// it arrived. Exactly-once: a duplicate (round, src) block, a wrong
  /// block size, or an out-of-range source is a typed kInvalidArgument;
  /// a block for an aborted session reports the abort reason.
  [[nodiscard]] runtime::Status accept_block(std::uint32_t round, std::uint32_t src,
                                             std::span<const std::uint32_t> block);

  /// Block until all `shards` blocks of `round` arrived, the session
  /// aborted, or `deadline` passed (kUnavailable — a missing peer block
  /// is a transient fleet condition, not a caller bug).
  [[nodiscard]] runtime::Status wait_round(std::uint32_t round,
                                           std::chrono::steady_clock::time_point deadline);

  /// Fail the session: pending and future waits/accepts observe `why`.
  void abort(runtime::Status why);

 private:
  runtime::BandPlan plan_;
  std::uint32_t shard_index_ = 0;
  util::PooledBuffer z_;
  util::PooledBuffer x_;

  std::mutex mutex_;
  std::condition_variable cv_;
  runtime::Status aborted_;  ///< OK = live
  std::vector<std::uint8_t> claimed_[2];
  std::uint32_t arrived_[2] = {0, 0};
};

/// The shard's session table. Sessions are created by SHARD_EXEC and
/// erased on every exit path of the exec handler; SHARD_XCHG handlers
/// rendezvous through `await`.
class ShardSessionRegistry {
 public:
  struct Config {
    /// Bound on waiting for peer blocks (exec side) and for the local
    /// SHARD_EXEC to create the session (xchg side).
    std::chrono::milliseconds exchange_timeout{10'000};
    /// Concurrent distributed executions this shard admits.
    std::uint32_t max_sessions = 32;
    /// Cap on pooled bytes pinned by *early-arrival* SHARD_XCHG blocks
    /// — blocks whose session has not been created yet and whose
    /// handler would otherwise sit in `await` holding the payload for
    /// the full exchange timeout. A hostile peer spraying blocks at
    /// never-created sessions hits this bound and gets a typed
    /// RETRY_LATER instead of pinning the pool dry.
    std::uint64_t max_pending_hold_bytes = 256ull << 20;
  };

  explicit ShardSessionRegistry(Config config, util::BufferPool& pool)
      : config_(config), pool_(pool) {}

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Create the session for `id`, acquiring both staging buffers from
  /// the pool. kResourceExhausted at the session cap or when the pool
  /// refuses; kInvalidArgument for a duplicate id.
  [[nodiscard]] runtime::StatusOr<std::shared_ptr<ShardSession>> create(
      std::uint64_t id, runtime::BandPlan plan, std::uint32_t shard_index);

  /// Wait up to `deadline` for session `id` (SHARD_XCHG can outrace the
  /// local SHARD_EXEC). nullptr = never appeared.
  [[nodiscard]] std::shared_ptr<ShardSession> await(
      std::uint64_t id, std::chrono::steady_clock::time_point deadline);

  /// Non-blocking lookup: the session if it exists right now. The fast
  /// path for SHARD_XCHG when the local exec already won the race — no
  /// hold needed, the block scatters straight through.
  [[nodiscard]] std::shared_ptr<ShardSession> find(std::uint64_t id);

  /// RAII accounting for bytes an early-arrival SHARD_XCHG handler
  /// pins while blocked in `await`. Releases on destruction.
  class Hold {
   public:
    Hold() = default;
    ~Hold() { release(); }
    Hold(Hold&& other) noexcept : registry_(other.registry_), bytes_(other.bytes_) {
      other.registry_ = nullptr;
      other.bytes_ = 0;
    }
    Hold& operator=(Hold&& other) noexcept {
      if (this != &other) {
        release();
        registry_ = other.registry_;
        bytes_ = other.bytes_;
        other.registry_ = nullptr;
        other.bytes_ = 0;
      }
      return *this;
    }
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;
    void release() noexcept;

   private:
    friend class ShardSessionRegistry;
    Hold(ShardSessionRegistry* registry, std::uint64_t bytes) noexcept
        : registry_(registry), bytes_(bytes) {}
    ShardSessionRegistry* registry_ = nullptr;
    std::uint64_t bytes_ = 0;
  };

  /// Reserve `bytes` against `max_pending_hold_bytes`. Over the cap →
  /// kResourceExhausted (RETRY_LATER on the wire) and the rejection
  /// counter ticks; the peer re-sends once the local exec catches up.
  [[nodiscard]] runtime::StatusOr<Hold> try_hold(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t held_bytes() const noexcept {
    return held_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hold_rejections() const noexcept {
    return hold_rejections_.load(std::memory_order_relaxed);
  }

  /// Drop the session. Staging is released when the last holder lets
  /// go of the shared_ptr (an in-flight scatter finishes safely first).
  void erase(std::uint64_t id);

  [[nodiscard]] std::size_t size() const;

 private:
  Config config_;
  util::BufferPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ShardSession>> sessions_;
  std::atomic<std::uint64_t> held_bytes_{0};
  std::atomic<std::uint64_t> hold_rejections_{0};
};

}  // namespace hmm::net
