#pragma once
/// \file buffer_pool.hpp
/// \brief Size-classed, thread-safe free list of 128-byte-aligned
///        buffers for the serving hot path.
///
/// The paper's offline plan exists so the online phase pays no
/// per-request planning cost; this pool exists so it pays no
/// per-request *allocation* cost either. Every steady-state PERMUTE
/// needs the same three transient buffers — executor scratch, the
/// decoded request elements, and the response elements — and their
/// sizes repeat as long as the plan mix repeats. The pool turns those
/// allocations into a mutex-guarded free-list pop (a "hit") after the
/// first request of each size warms it up.
///
/// Design:
///  - **Size classes** are powers of two, floored at
///    `Config::min_class_bytes`. A request is rounded up to its class,
///    so a buffer released by one request is reusable by any request
///    within 2x of its size — the worst-case internal fragmentation the
///    classing costs.
///  - **Alignment** is fixed at `kBufferAlignment` (128 bytes), the
///    same boundary `util::aligned_vector` uses, so pooled scratch is
///    interchangeable with the kernels' expectations (and comfortably
///    above the 64-byte floor the SIMD kernel tier's full-width vector
///    loads want).
///  - **NUMA.** Free lists are kept per node: a block released on node
///    n is only recycled by acquires targeting node n, so its pages —
///    bound to n's memory when that node's workers first touched them
///    — never silently migrate a request's scratch across sockets. A
///    miss allocates fresh (untouched) memory instead of stealing from
///    a remote node's list, so first-touch by the acquiring node's
///    pinned workers binds it locally. Single-node machines collapse
///    to one list set with no extra cost.
///  - **Caps.** `max_outstanding_bytes` bounds live (acquired) bytes:
///    at the cap `try_acquire` returns an invalid buffer and `acquire`
///    throws `std::bad_alloc` (the executor maps either to
///    `kResourceExhausted`). `max_pooled_bytes` bounds *cached* free
///    bytes: beyond it a released buffer is freed instead of pooled
///    (counted in `Stats::trims`), so one burst of giant requests
///    cannot pin memory forever.
///  - **Stats** are relaxed atomics (advisory, never synchronization),
///    cheap enough to stay on in production; the serving metrics
///    snapshot surfaces the global pool's stats. The miss counter is
///    the zero-allocation acceptance test: at steady state it stays
///    flat while requests flow.
///  - **Sanitizers.** Under ASan, cached (free-listed) blocks are
///    poisoned while they sit in the pool, so a use-after-release of a
///    pooled buffer reports like a heap use-after-free instead of
///    silently reading recycled bytes.
///
/// `PooledBuffer` is the move-only RAII handle; destruction returns
/// the block to its pool. Buffers must not outlive the pool that
/// issued them (the process-wide `BufferPool::global()` makes that
/// trivial for the serving stack; scoped pools in tests own their
/// buffers' lifetimes).
///
/// Layering: util cannot see the runtime's FaultInjector, so the
/// `pool.exhausted` fault site is armed by *callers* (executor, net)
/// before they touch the pool — see runtime/fault_injector.hpp.

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <mutex>
#include <new>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace hmm::util {

/// Alignment of every pooled buffer: matches `util::aligned_vector`'s
/// 128-byte boundary (two cache lines; SIMD- and DMA-friendly).
inline constexpr std::size_t kBufferAlignment = 128;
static_assert(kBufferAlignment >= 64,
              "pooled buffers guarantee at least 64-byte (vector-width) alignment "
              "for the SIMD kernel tier");

class BufferPool;

/// Move-only RAII handle to one pooled block. An invalid (default or
/// moved-from) handle owns nothing; `reset()` releases early.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { reset(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), data_(other.data_), capacity_(other.capacity_),
        node_(other.node_) {
    other.pool_ = nullptr;
    other.data_ = nullptr;
    other.capacity_ = 0;
    other.node_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      data_ = other.data_;
      capacity_ = other.capacity_;
      node_ = other.node_;
      other.pool_ = nullptr;
      other.data_ = nullptr;
      other.capacity_ = 0;
      other.node_ = 0;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  /// True for a handle that owns a block (zero-byte acquires are valid
  /// and own nothing but still report valid()).
  [[nodiscard]] bool valid() const noexcept { return pool_ != nullptr; }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  /// Usable bytes: the size class, >= the requested size.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// NUMA node this block's free-list home is on (0 on single-node
  /// machines; the node's pinned workers first-touched its pages).
  [[nodiscard]] int node() const noexcept { return node_; }

  /// View the block as `count` elements of T. The caller asserts the
  /// fit; the pool's class rounding guarantees it for the acquire size.
  template <class T>
  [[nodiscard]] std::span<T> as_span(std::size_t count) noexcept {
    HMM_CHECK(count * sizeof(T) <= capacity_);
    return {reinterpret_cast<T*>(data_), count};
  }

  /// Return the block to the pool now (idempotent).
  void reset() noexcept;

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, std::uint8_t* data, std::size_t capacity,
               int node) noexcept
      : pool_(pool), data_(data), capacity_(capacity), node_(node) {}

  BufferPool* pool_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t capacity_ = 0;
  int node_ = 0;
};

class BufferPool {
 public:
  struct Config {
    /// Smallest size class (power of two). Requests below it share one
    /// class so tiny header buffers don't fragment the classing.
    std::size_t min_class_bytes = 4096;
    /// Cached-free-bytes cap: a release that would exceed it frees the
    /// block instead of pooling it (counted in Stats::trims).
    std::size_t max_pooled_bytes = 256ull << 20;
    /// Live-bytes cap: an acquire that would exceed it fails
    /// (try_acquire -> invalid handle, acquire -> std::bad_alloc).
    /// 0 = unbounded.
    std::size_t max_outstanding_bytes = 0;
  };

  /// Point-in-time counters (relaxed reads; advisory).
  struct Stats {
    std::uint64_t hits = 0;              ///< acquires served from the free list
    std::uint64_t misses = 0;            ///< acquires that hit the allocator
    std::uint64_t releases = 0;          ///< blocks returned (pooled or trimmed)
    std::uint64_t trims = 0;             ///< releases freed because of max_pooled_bytes
    std::uint64_t acquire_failures = 0;  ///< acquires refused at max_outstanding_bytes
    std::uint64_t outstanding_bytes = 0; ///< live (acquired, unreleased) bytes
    std::uint64_t pooled_bytes = 0;      ///< cached free-list bytes
  };

  BufferPool() : BufferPool(Config{}) {}
  explicit BufferPool(Config config);

  /// Frees every cached block. Outstanding buffers must already be
  /// released — a PooledBuffer must not outlive its pool.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Acquire a block of at least `bytes` (rounded up to its size
  /// class). Returns an invalid handle when the outstanding-bytes cap
  /// would be exceeded. `bytes == 0` returns a valid, empty handle
  /// without touching the pool. On NUMA machines this prefers the
  /// calling thread's node (see `try_acquire_on_node`).
  [[nodiscard]] PooledBuffer try_acquire(std::size_t bytes);

  /// `try_acquire` targeting a specific NUMA node's free list. A hit
  /// returns a block whose pages were first-touched (hence bound) by
  /// that node's workers; a miss allocates fresh memory whose pages
  /// bind to whichever node first writes them — so callers that pin
  /// work to `node` get node-local scratch either way. Out-of-range
  /// nodes clamp to 0; on single-node machines this is `try_acquire`.
  [[nodiscard]] PooledBuffer try_acquire_on_node(std::size_t bytes, int node);

  /// `try_acquire` that throws `std::bad_alloc` on cap exhaustion, for
  /// paths whose error channel is already an exception.
  [[nodiscard]] PooledBuffer acquire(std::size_t bytes);

  /// Free every cached block (outstanding buffers are unaffected).
  void trim();

  [[nodiscard]] Stats stats() const noexcept;
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The size class `bytes` rounds up to under `min_class_bytes`.
  [[nodiscard]] static std::size_t class_bytes(std::size_t bytes,
                                               std::size_t min_class_bytes) noexcept;

  /// Process-wide pool the serving stack (executor scratch, server
  /// payload/element buffers) shares by default.
  [[nodiscard]] static BufferPool& global();

 private:
  friend class PooledBuffer;
  void release(std::uint8_t* data, std::size_t capacity, int node) noexcept;

  [[nodiscard]] std::size_t class_index(std::size_t class_size) const noexcept;

  Config config_;
  mutable std::mutex mutex_;
  /// Free lists indexed [node][class] (class_bytes = min << index).
  /// Blocks go home to the node they were acquired for, so recycled
  /// pages stay on the socket that first touched them.
  std::vector<std::vector<std::vector<std::uint8_t*>>> free_lists_;
  std::size_t pooled_bytes_ = 0;  ///< guarded by mutex_

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> releases_{0};
  std::atomic<std::uint64_t> trims_{0};
  std::atomic<std::uint64_t> acquire_failures_{0};
  std::atomic<std::uint64_t> outstanding_bytes_{0};
};

inline void PooledBuffer::reset() noexcept {
  if (pool_ != nullptr && data_ != nullptr) pool_->release(data_, capacity_, node_);
  pool_ = nullptr;
  data_ = nullptr;
  capacity_ = 0;
  node_ = 0;
}

}  // namespace hmm::util
