#pragma once
/// \file bits.hpp
/// \brief Bit-manipulation helpers for power-of-two address arithmetic.
///
/// The memory-machine models index banks and address groups with
/// power-of-two widths, so every module leans on these helpers.

#include <bit>
#include <cstdint>

#include "util/check.hpp"

namespace hmm::util {

/// True iff \p x is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t x) noexcept { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)); requires x > 0.
constexpr unsigned log2_floor(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// log2 of an exact power of two.
constexpr unsigned log2_exact(std::uint64_t x) {
  HMM_CHECK_MSG(is_pow2(x), "log2_exact requires a power of two");
  return log2_floor(x);
}

/// Smallest power of two >= x (x <= 2^63).
constexpr std::uint64_t ceil_pow2(std::uint64_t x) noexcept {
  return x <= 1 ? 1 : std::bit_ceil(x);
}

/// ceil(a / b) for positive b.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Reverse the low \p bits bits of \p x (the FFT bit-reversal index map).
constexpr std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < bits; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

/// Left-rotate the low \p bits bits of \p x by one position
/// (the "shuffle" index map: b_{k-1} b_{k-2} ... b_0 -> b_{k-2} ... b_0 b_{k-1}).
constexpr std::uint64_t rotate_left_bits(std::uint64_t x, unsigned bits) noexcept {
  if (bits == 0) return x;
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t body = x & mask;
  return ((body << 1) | (body >> (bits - 1))) & mask;
}

/// Right-rotate the low \p bits bits of \p x by one position (unshuffle).
constexpr std::uint64_t rotate_right_bits(std::uint64_t x, unsigned bits) noexcept {
  if (bits == 0) return x;
  const std::uint64_t mask = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t body = x & mask;
  return ((body >> 1) | ((body & 1u) << (bits - 1))) & mask;
}

/// Binary-reflected Gray code.
constexpr std::uint64_t gray_code(std::uint64_t x) noexcept { return x ^ (x >> 1); }

/// Integer square root of a perfect square; checked.
constexpr std::uint64_t isqrt_exact(std::uint64_t n) {
  std::uint64_t r = 0;
  // For the power-of-two sizes we use, log2/2 is exact; fall back to a scan.
  if (is_pow2(n) && log2_floor(n) % 2 == 0) {
    r = 1ull << (log2_floor(n) / 2);
  } else {
    while ((r + 1) * (r + 1) <= n) ++r;
  }
  HMM_CHECK_MSG(r * r == n, "isqrt_exact requires a perfect square");
  return r;
}

}  // namespace hmm::util
