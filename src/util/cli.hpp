#pragma once
/// \file cli.hpp
/// \brief Minimal `--flag value` command-line parser for the bench and
///        example binaries (keeps them dependency-free).

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hmm::util {

/// Parses `--key value` and `--key=value` pairs; bare `--key` is "true".
/// Positional arguments are collected in order.
class Cli {
 public:
  Cli(int argc, char** argv);

  /// Validate the parsed flags against this program's complete flag
  /// list. A flag outside `known` (a typo like `--fautl-rate`) prints
  /// `unknown flag --x` plus a usage dump of the known flags to `err`
  /// and returns false — drivers exit instead of silently running with
  /// the flag ignored. Call once, right after parsing.
  [[nodiscard]] bool expect_flags(std::initializer_list<std::string_view> known,
                                  std::ostream& err) const;

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hmm::util
