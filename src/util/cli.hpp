#pragma once
/// \file cli.hpp
/// \brief Minimal `--flag value` command-line parser for the bench and
///        example binaries (keeps them dependency-free).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hmm::util {

/// Parses `--key value` and `--key=value` pairs; bare `--key` is "true".
/// Positional arguments are collected in order.
class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace hmm::util
