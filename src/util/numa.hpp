#pragma once
/// \file numa.hpp
/// \brief Minimal NUMA topology discovery and thread/node placement.
///
/// The serving hot path touches three memory streams per request —
/// input elements, scratch, and the plan's schedule arrays — and a
/// cross-socket hop on any of them costs more than the kernels' whole
/// L1 discipline saves. This layer gives the pool and thread pool just
/// enough topology to keep a request on one socket: which node each
/// CPU belongs to, which node the calling thread is on right now, and
/// a way to pin a worker to a node's CPU set.
///
/// Discovery reads sysfs (`/sys/devices/system/node/node*/cpulist`) —
/// no libnuma dependency — and collapses to one node holding every CPU
/// when sysfs is absent (non-Linux, containers with masked sysfs).
/// On a single-node machine `aware()` is false and every placement
/// helper degenerates to a no-op, so the NUMA-aware code paths cost
/// nothing where they cannot help. `HMM_NUMA=0` forces that off state
/// for A/B runs on multi-socket boxes.

#include <vector>

namespace hmm::util::numa {

/// Immutable machine topology, discovered once.
struct Topology {
  /// CPU ids per node, indexed by node id; at least one node with at
  /// least one CPU (the single-node fallback claims every CPU).
  std::vector<std::vector<int>> node_cpus;
  /// node id per CPU id (flat inverse of node_cpus; -1 = unknown CPU).
  std::vector<int> cpu_node;

  [[nodiscard]] int nodes() const noexcept { return static_cast<int>(node_cpus.size()); }
};

/// The discovered topology (sysfs, read once per process).
[[nodiscard]] const Topology& topology() noexcept;

/// Number of NUMA nodes (>= 1).
[[nodiscard]] int node_count() noexcept;

/// True when placement decisions matter: more than one node and the
/// `HMM_NUMA` env toggle is not "0".
[[nodiscard]] bool aware() noexcept;

/// Node the calling thread is executing on right now (0 when unknown).
/// A hint, not a contract: an unpinned thread can migrate right after.
[[nodiscard]] int current_node() noexcept;

/// Node owning `cpu` (0 when unknown).
[[nodiscard]] int node_of_cpu(int cpu) noexcept;

/// Restrict the calling thread to `node`'s CPU set. Returns false
/// (and leaves affinity untouched) for unknown nodes, empty CPU sets,
/// or when the kernel refuses.
bool pin_current_thread_to_node(int node) noexcept;

}  // namespace hmm::util::numa
