#pragma once
/// \file table.hpp
/// \brief ASCII table / CSV printers used by the benchmark harnesses to
///        render the paper's tables.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hmm::util {

/// A simple column-aligned table. Rows are vectors of preformatted
/// cells; the printer right-aligns numeric-looking cells and
/// left-aligns text.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; it may be shorter than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  /// Render with box-drawing separators.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (no quoting of commas; cells are plain).
  void print_csv(std::ostream& os) const;

  /// Render as JSON Lines: one object per data row, keyed by the header
  /// (the `BENCH_*.json` trajectory format). Numeric-looking cells are
  /// emitted as numbers, everything else as escaped strings; separator
  /// rows are skipped. `extra` is a prefix of preformatted
  /// "\"key\":value" members copied into every object (e.g. the bench
  /// name), or empty.
  void print_json_rows(std::ostream& os, const std::string& extra = "") const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector == separator
};

/// Format helpers (GCC 12 lacks std::format; keep these centralized).
std::string format_double(double v, int precision = 2);
std::string format_ms(double ms);      ///< milliseconds with adaptive precision
std::string format_count(std::uint64_t v);
std::string format_bytes(std::uint64_t bytes);

}  // namespace hmm::util
