#include "util/buffer_pool.hpp"

#include <algorithm>
#include <bit>

#include "util/numa.hpp"

// ASan manual poisoning: cached blocks are poisoned while they sit in
// the free list so a use-after-release reads like a use-after-free.
#if defined(__SANITIZE_ADDRESS__)
#define HMM_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HMM_POOL_ASAN 1
#endif
#endif
#if defined(HMM_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#define HMM_POOL_POISON(ptr, size) __asan_poison_memory_region((ptr), (size))
#define HMM_POOL_UNPOISON(ptr, size) __asan_unpoison_memory_region((ptr), (size))
#else
#define HMM_POOL_POISON(ptr, size) ((void)0)
#define HMM_POOL_UNPOISON(ptr, size) ((void)0)
#endif

namespace hmm::util {

BufferPool::BufferPool(Config config) : config_(config) {
  HMM_CHECK(config_.min_class_bytes > 0 && std::has_single_bit(config_.min_class_bytes));
  // One free-list set per NUMA node (a single set on UMA machines),
  // with one list per possible power-of-two class above
  // min_class_bytes; 64 covers every representable size.
  const int nodes = std::max(1, numa::node_count());
  free_lists_.resize(static_cast<std::size_t>(nodes));
  for (auto& per_class : free_lists_) per_class.resize(64);
}

BufferPool::~BufferPool() { trim(); }

std::size_t BufferPool::class_bytes(std::size_t bytes, std::size_t min_class_bytes) noexcept {
  if (bytes <= min_class_bytes) return min_class_bytes;
  return std::bit_ceil(bytes);
}

std::size_t BufferPool::class_index(std::size_t class_size) const noexcept {
  return static_cast<std::size_t>(std::countr_zero(class_size)) -
         static_cast<std::size_t>(std::countr_zero(config_.min_class_bytes));
}

PooledBuffer BufferPool::try_acquire(std::size_t bytes) {
  // On NUMA machines, prefer blocks whose pages already live on the
  // caller's node; on UMA this resolves to node 0 with zero overhead.
  return try_acquire_on_node(bytes, numa::aware() ? numa::current_node() : 0);
}

PooledBuffer BufferPool::try_acquire_on_node(std::size_t bytes, int node) {
  if (node < 0 || static_cast<std::size_t>(node) >= free_lists_.size()) node = 0;
  if (bytes == 0) return PooledBuffer(this, nullptr, 0, node);
  const std::size_t size = class_bytes(bytes, config_.min_class_bytes);

  if (config_.max_outstanding_bytes != 0) {
    // Optimistic reserve: back it out if over the cap. Two racing
    // acquires can both fail at the boundary; the cap stays honored.
    const std::uint64_t now =
        outstanding_bytes_.fetch_add(size, std::memory_order_relaxed) + size;
    if (now > config_.max_outstanding_bytes) {
      outstanding_bytes_.fetch_sub(size, std::memory_order_relaxed);
      acquire_failures_.fetch_add(1, std::memory_order_relaxed);
      return {};
    }
  } else {
    outstanding_bytes_.fetch_add(size, std::memory_order_relaxed);
  }

  {
    std::lock_guard lock(mutex_);
    std::vector<std::uint8_t*>& list =
        free_lists_[static_cast<std::size_t>(node)][class_index(size)];
    if (!list.empty()) {
      std::uint8_t* block = list.back();
      list.pop_back();
      pooled_bytes_ -= size;
      hits_.fetch_add(1, std::memory_order_relaxed);
      HMM_POOL_UNPOISON(block, size);
      return PooledBuffer(this, block, size, node);
    }
  }

  // Miss: allocate fresh rather than stealing another node's cached
  // block — fresh pages bind to whichever node first touches them
  // (the caller's pinned workers), while a stolen block's pages are
  // already bound to the wrong socket for the rest of its life.
  misses_.fetch_add(1, std::memory_order_relaxed);
  try {
    auto* block = static_cast<std::uint8_t*>(
        ::operator new(size, std::align_val_t{kBufferAlignment}));
    return PooledBuffer(this, block, size, node);
  } catch (...) {
    outstanding_bytes_.fetch_sub(size, std::memory_order_relaxed);
    throw;
  }
}

PooledBuffer BufferPool::acquire(std::size_t bytes) {
  PooledBuffer buf = try_acquire(bytes);
  if (!buf.valid()) throw std::bad_alloc();
  return buf;
}

void BufferPool::release(std::uint8_t* data, std::size_t capacity, int node) noexcept {
  if (node < 0 || static_cast<std::size_t>(node) >= free_lists_.size()) node = 0;
  outstanding_bytes_.fetch_sub(capacity, std::memory_order_relaxed);
  releases_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mutex_);
    if (pooled_bytes_ + capacity <= config_.max_pooled_bytes) {
      // push_back can allocate list capacity; amortized zero at steady
      // state, and a failure here must not lose the block.
      try {
        free_lists_[static_cast<std::size_t>(node)][class_index(capacity)].push_back(data);
        pooled_bytes_ += capacity;
        HMM_POOL_POISON(data, capacity);
        return;
      } catch (...) {
        // fall through to free
      }
    }
  }
  trims_.fetch_add(1, std::memory_order_relaxed);
  ::operator delete(data, std::align_val_t{kBufferAlignment});
}

void BufferPool::trim() {
  std::lock_guard lock(mutex_);
  for (auto& per_class : free_lists_) {
    for (std::size_t i = 0; i < per_class.size(); ++i) {
      const std::size_t size = config_.min_class_bytes << i;
      for (std::uint8_t* block : per_class[i]) {
        HMM_POOL_UNPOISON(block, size);
        ::operator delete(block, std::align_val_t{kBufferAlignment});
      }
      per_class[i].clear();
    }
  }
  pooled_bytes_ = 0;
}

BufferPool::Stats BufferPool::stats() const noexcept {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  s.trims = trims_.load(std::memory_order_relaxed);
  s.acquire_failures = acquire_failures_.load(std::memory_order_relaxed);
  s.outstanding_bytes = outstanding_bytes_.load(std::memory_order_relaxed);
  {
    // pooled_bytes_ is mutex-guarded, not atomic; stats() is cold.
    std::lock_guard lock(mutex_);
    s.pooled_bytes = pooled_bytes_;
  }
  return s;
}

BufferPool& BufferPool::global() {
  static BufferPool pool;
  return pool;
}

}  // namespace hmm::util
