#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with a blocking parallel_for and
///        a futures-based task submission API.
///
/// The CPU backend launches its "CUDA blocks" through this pool. The
/// pool is deliberately simple (single mutex-protected deque): kernel
/// granularity here is whole matrix rows or tile strips, so queue
/// contention is negligible compared to the work item cost.
///
/// Two usage layers share the worker threads:
///  - `parallel_for` / `parallel_for_chunks`: blocking data-parallel
///    loops used by the CPU kernels. Exceptions thrown by the loop body
///    are captured and rethrown on the calling thread (first one wins).
///  - `submit_task`: fire-and-forget task submission returning a
///    `std::future` (exceptions propagate through the future). The
///    runtime executor (src/runtime/executor.hpp) drains its request
///    queue through this API.
///
/// Nested use is safe: when `parallel_for` is called *from a worker
/// thread of the same pool* (e.g. a submitted task executing a
/// permutation kernel), the caller helps drain the queue instead of
/// blocking idle, so submitted tasks that fan out onto the pool cannot
/// deadlock it.
///
/// NUMA placement (multi-node machines only): workers are pinned to
/// nodes in contiguous blocks, and the queue splits per node. A task
/// is enqueued under the submitting thread's node — so the chunks a
/// pinned worker fans out land back on its own node's queue — and
/// workers pop their node's queue first, stealing from other nodes
/// only when theirs is empty. Locality is a preference, not a fence:
/// a saturated node's overflow is stolen by remote workers rather
/// than left idle. Single-node machines collapse to one queue and the
/// exact pre-NUMA behavior.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/numa.hpp"

namespace hmm::util {

class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (min 1).
  /// \param pin_workers split the workers into contiguous per-node
  ///   groups and pin each group to its node's CPU set, so a request
  ///   whose scratch lives on one node is executed by threads that
  ///   stay there (first-touch then binds fresh pool pages locally).
  ///   Defaults on only when placement matters (`numa::aware()`:
  ///   multiple nodes and HMM_NUMA != 0); single-node machines keep
  ///   today's unpinned behavior.
  explicit ThreadPool(unsigned num_threads = 0, bool pin_workers = numa::aware());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// True when workers were pinned per NUMA node at construction.
  [[nodiscard]] bool workers_pinned() const noexcept { return pinned_; }

  /// Node worker `i` was pinned to (0 when unpinned or out of range).
  [[nodiscard]] int worker_node(unsigned i) const noexcept {
    return i < worker_nodes_.size() ? worker_nodes_[i] : 0;
  }

  /// Run fn(i) for i in [begin, end), split into ~`chunks_per_thread`
  /// contiguous chunks per worker; blocks until every index is done.
  /// With a single worker (or a tiny range) this degrades to a serial
  /// loop on the calling thread — no task overhead. If any invocation
  /// of `fn` throws, the first captured exception is rethrown here
  /// after all chunks have finished.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t)>& fn,
                    unsigned chunks_per_thread = 4);

  /// Run fn(chunk_begin, chunk_end) over a blocked partition of the range.
  /// Same exception semantics as `parallel_for`.
  void parallel_for_chunks(std::uint64_t begin, std::uint64_t end,
                           const std::function<void(std::uint64_t, std::uint64_t)>& fn,
                           unsigned chunks_per_thread = 4);

  /// Enqueue a callable and return a future for its result. Exceptions
  /// thrown by the callable are delivered through the future. The task
  /// may itself call `parallel_for` on this pool (see header comment).
  template <class F>
  auto submit_task(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

  /// True iff the calling thread is a worker of *this* pool.
  [[nodiscard]] bool on_worker_thread() const noexcept;

  /// Global pool shared by the CPU backend (constructed on first use).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop(int node);
  void submit(std::function<void()> fn);

  /// Pop one queued task and run it; returns false if every queue was
  /// empty. Prefers the calling worker's node queue.
  bool run_one_task();

  /// Pop from `preferred`'s queue, stealing from the others when it is
  /// empty. Pre: mutex_ held and pending_ > 0.
  Task pop_locked(int preferred);

  /// Node hint for a task submitted by the calling thread.
  [[nodiscard]] int submit_node() const noexcept;

  std::vector<std::thread> workers_;
  std::vector<int> worker_nodes_;  ///< node per worker (set iff pinned_)
  bool pinned_ = false;
  /// One task queue per node (a single queue when unpinned).
  std::vector<std::deque<Task>> queues_;
  std::size_t pending_ = 0;  ///< total queued tasks, guarded by mutex_
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hmm::util
