#pragma once
/// \file thread_pool.hpp
/// \brief Small fixed-size thread pool with a blocking parallel_for.
///
/// The CPU backend launches its "CUDA blocks" through this pool. The
/// pool is deliberately simple (single mutex-protected deque): kernel
/// granularity here is whole matrix rows or tile strips, so queue
/// contention is negligible compared to the work item cost.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hmm::util {

class ThreadPool {
 public:
  /// \param num_threads 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept { return static_cast<unsigned>(workers_.size()); }

  /// Run fn(i) for i in [begin, end), split into ~`chunks_per_thread`
  /// contiguous chunks per worker; blocks until every index is done.
  /// With a single worker (or a tiny range) this degrades to a serial
  /// loop on the calling thread — no task overhead.
  void parallel_for(std::uint64_t begin, std::uint64_t end,
                    const std::function<void(std::uint64_t)>& fn,
                    unsigned chunks_per_thread = 4);

  /// Run fn(chunk_begin, chunk_end) over a blocked partition of the range.
  void parallel_for_chunks(std::uint64_t begin, std::uint64_t end,
                           const std::function<void(std::uint64_t, std::uint64_t)>& fn,
                           unsigned chunks_per_thread = 4);

  /// Global pool shared by the CPU backend (constructed on first use).
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void submit(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hmm::util
