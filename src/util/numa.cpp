#include "util/numa.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#endif

namespace hmm::util::numa {
namespace {

/// Parse a sysfs cpulist ("0-3,8-11,15") into CPU ids. Returns an
/// empty list on malformed input (the caller skips the node).
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    char* end = nullptr;
    const long lo = std::strtol(text.c_str() + pos, &end, 10);
    if (end == text.c_str() + pos || lo < 0) return {};
    long hi = lo;
    pos = static_cast<std::size_t>(end - text.c_str());
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      hi = std::strtol(text.c_str() + pos, &end, 10);
      if (end == text.c_str() + pos || hi < lo) return {};
      pos = static_cast<std::size_t>(end - text.c_str());
    }
    for (long c = lo; c <= hi; ++c) cpus.push_back(static_cast<int>(c));
    if (pos < text.size()) {
      if (text[pos] != ',' && text[pos] != '\n' && text[pos] != ' ') return {};
      ++pos;
    }
  }
  return cpus;
}

Topology discover() {
  Topology topo;
#if defined(__linux__)
  for (int node = 0;; ++node) {
    std::ifstream in("/sys/devices/system/node/node" + std::to_string(node) +
                     "/cpulist");
    if (!in.is_open()) break;
    std::string line;
    std::getline(in, line);
    std::vector<int> cpus = parse_cpulist(line);
    // A node can legitimately be memory-only (empty cpulist); keep it
    // so node ids stay aligned with sysfs numbering.
    topo.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (topo.node_cpus.empty()) {
    // Single-node fallback: every CPU on node 0.
    const unsigned n = std::max(1u, std::thread::hardware_concurrency());
    std::vector<int> cpus(n);
    for (unsigned i = 0; i < n; ++i) cpus[i] = static_cast<int>(i);
    topo.node_cpus.push_back(std::move(cpus));
  }
  int max_cpu = -1;
  for (const auto& cpus : topo.node_cpus)
    for (int c : cpus) max_cpu = std::max(max_cpu, c);
  topo.cpu_node.assign(static_cast<std::size_t>(max_cpu + 1), -1);
  for (std::size_t node = 0; node < topo.node_cpus.size(); ++node)
    for (int c : topo.node_cpus[node])
      topo.cpu_node[static_cast<std::size_t>(c)] = static_cast<int>(node);
  return topo;
}

}  // namespace

const Topology& topology() noexcept {
  static const Topology topo = discover();
  return topo;
}

int node_count() noexcept { return topology().nodes(); }

bool aware() noexcept {
  static const bool on = [] {
    if (node_count() <= 1) return false;
    const char* env = std::getenv("HMM_NUMA");
    return env == nullptr || std::strcmp(env, "0") != 0;
  }();
  return on;
}

int current_node() noexcept {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return node_of_cpu(cpu);
#endif
  return 0;
}

int node_of_cpu(int cpu) noexcept {
  const Topology& topo = topology();
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= topo.cpu_node.size()) return 0;
  const int node = topo.cpu_node[static_cast<std::size_t>(cpu)];
  return node < 0 ? 0 : node;
}

bool pin_current_thread_to_node(int node) noexcept {
#if defined(__linux__)
  const Topology& topo = topology();
  if (node < 0 || node >= topo.nodes()) return false;
  const std::vector<int>& cpus = topo.node_cpus[static_cast<std::size_t>(node)];
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

}  // namespace hmm::util::numa
