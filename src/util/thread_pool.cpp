#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

#include "util/check.hpp"

namespace hmm::util {

namespace {
/// Set while a thread runs a worker_loop; identifies "my" pool so
/// nested parallel_for calls can help-drain instead of blocking.
thread_local const ThreadPool* tls_worker_pool = nullptr;
/// The node the current worker was pinned to (0 when unpinned).
thread_local int tls_worker_node = 0;
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads, bool pin_workers) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  pinned_ = pin_workers && numa::node_count() > 1;
  queues_.resize(pinned_ ? static_cast<std::size_t>(numa::node_count()) : 1);
  workers_.reserve(num_threads);
  worker_nodes_.reserve(num_threads);
  const unsigned nodes = static_cast<unsigned>(numa::node_count());
  for (unsigned i = 0; i < num_threads; ++i) {
    // Contiguous worker blocks per node, proportional to pool size:
    // worker i of n lands on node floor(i * nodes / n). Pinning
    // happens on the worker thread itself, before it takes any task,
    // so every kernel chunk it runs (and every pool page it
    // first-touches) stays on its node.
    const int node = pinned_ ? static_cast<int>((static_cast<std::uint64_t>(i) * nodes) /
                                                num_threads)
                             : 0;
    worker_nodes_.push_back(node);
    workers_.emplace_back([this, node] {
      if (pinned_) numa::pin_current_thread_to_node(node);
      worker_loop(node);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::on_worker_thread() const noexcept { return tls_worker_pool == this; }

ThreadPool::Task ThreadPool::pop_locked(int preferred) {
  const std::size_t n = queues_.size();
  std::size_t q = static_cast<std::size_t>(preferred) < n
                      ? static_cast<std::size_t>(preferred)
                      : 0;
  // Own node first, then round-robin steal: remote work beats idling.
  for (std::size_t tried = 0; tried < n; ++tried, q = (q + 1) % n) {
    if (!queues_[q].empty()) break;
  }
  Task task = std::move(queues_[q].front());
  queues_[q].pop_front();
  --pending_;
  return task;
}

int ThreadPool::submit_node() const noexcept {
  if (queues_.size() <= 1) return 0;
  // A pinned worker requeues onto its own node (so fanned-out chunks
  // stay local); an external thread lands on whichever node it is
  // currently running on.
  return tls_worker_pool == this ? tls_worker_node : numa::current_node();
}

void ThreadPool::worker_loop(int node) {
  tls_worker_pool = this;
  tls_worker_node = node;
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
      if (stop_ && pending_ == 0) return;
      task = pop_locked(node);
    }
    task.fn();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    std::size_t q = static_cast<std::size_t>(submit_node());
    if (q >= queues_.size()) q = 0;
    queues_[q].push_back(Task{std::move(fn)});
    ++pending_;
  }
  cv_.notify_one();
}

bool ThreadPool::run_one_task() {
  Task task;
  {
    std::lock_guard lock(mutex_);
    if (pending_ == 0) return false;
    task = pop_locked(tls_worker_pool == this ? tls_worker_node : 0);
  }
  task.fn();
  return true;
}

void ThreadPool::parallel_for_chunks(std::uint64_t begin, std::uint64_t end,
                                     const std::function<void(std::uint64_t, std::uint64_t)>& fn,
                                     unsigned chunks_per_thread) {
  if (begin >= end) return;
  const std::uint64_t total = end - begin;
  const std::uint64_t max_chunks =
      static_cast<std::uint64_t>(size()) * std::max(1u, chunks_per_thread);
  const std::uint64_t chunks = std::min<std::uint64_t>(total, std::max<std::uint64_t>(1, max_chunks));

  if (chunks == 1 || size() <= 1) {
    fn(begin, end);  // exceptions propagate directly
    return;
  }

  const std::uint64_t step = (total + chunks - 1) / chunks;
  const std::uint64_t n_tasks = (total + step - 1) / step;  // non-empty chunks

  // The completion state must live on the heap, jointly owned by the
  // chunk tasks: the worker that finishes the last chunk still touches
  // the mutex/cv *after* the decrement that releases the waiting
  // caller, so anything on the caller's stack may be gone by then.
  // Sharing `fn` by reference is safe, in contrast — every invocation
  // returns before `remaining` can reach zero, i.e. while the caller
  // is still blocked here.
  struct Completion {
    std::atomic<std::uint64_t> remaining;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr first_error;  // guarded by mutex
  };
  auto done = std::make_shared<Completion>();
  done->remaining.store(n_tasks, std::memory_order_relaxed);
  const auto* body = &fn;

  auto run_chunk = [done, body](std::uint64_t lo, std::uint64_t hi) {
    try {
      (*body)(lo, hi);
    } catch (...) {
      std::lock_guard lock(done->mutex);
      if (!done->first_error) done->first_error = std::current_exception();
    }
    if (done->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Lock-then-notify pairs with the waiters' predicate recheck
      // under the same mutex: a waiter either observes zero before
      // sleeping or is asleep when this notify fires.
      std::lock_guard lock(done->mutex);
      done->cv.notify_all();
    }
  };

  for (std::uint64_t c = 0; c < n_tasks; ++c) {
    const std::uint64_t lo = begin + c * step;
    const std::uint64_t hi = std::min(end, lo + step);
    submit([run_chunk, lo, hi] { run_chunk(lo, hi); });
  }

  if (on_worker_thread()) {
    // Called from inside one of our own workers (a submitted task that
    // fans out). Blocking here could park every worker while the chunk
    // tasks sit in the queue — so help drain it instead. When the queue
    // is momentarily empty but chunks are still running elsewhere, poll
    // briefly rather than wiring an extra notification channel.
    while (done->remaining.load(std::memory_order_acquire) != 0) {
      if (run_one_task()) continue;
      std::unique_lock lock(done->mutex);
      done->cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
        return done->remaining.load(std::memory_order_acquire) == 0;
      });
    }
  } else {
    std::unique_lock lock(done->mutex);
    done->cv.wait(lock,
                  [&] { return done->remaining.load(std::memory_order_acquire) == 0; });
  }

  // The acq_rel decrements order every first_error store before the
  // acquire load that observed zero, so this read needs no lock.
  if (done->first_error) std::rethrow_exception(done->first_error);
}

void ThreadPool::parallel_for(std::uint64_t begin, std::uint64_t end,
                              const std::function<void(std::uint64_t)>& fn,
                              unsigned chunks_per_thread) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::uint64_t lo, std::uint64_t hi) {
        for (std::uint64_t i = lo; i < hi; ++i) fn(i);
      },
      chunks_per_thread);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hmm::util
