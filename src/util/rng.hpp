#pragma once
/// \file rng.hpp
/// \brief Deterministic, fast PRNG (xoshiro256**) used by generators,
///        property tests, and benchmark workloads.
///
/// A fixed seed gives fully reproducible experiment tables; the engine
/// satisfies the `std::uniform_random_bit_generator` concept so it can
/// drive `std::shuffle`-style code, but we provide our own unbiased
/// bounded sampler to keep results identical across standard libraries.

#include <cstdint>

namespace hmm::util {

/// SplitMix64 — used to expand a 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x1234abcd5678ef90ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  std::uint64_t operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Unbiased uniform draw in [0, bound) via Lemire rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Long-jump: advance 2^192 steps (for carving independent streams).
  void long_jump() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace hmm::util
