#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>

namespace hmm::util {
namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != '%' && c != 'x') {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_separator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& row, bool align_right) {
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      const std::size_t pad = width[c] - cell.size();
      const bool right = align_right && looks_numeric(cell);
      os << ' ' << (right ? std::string(pad, ' ') + cell : cell + std::string(pad, ' '))
         << ' ' << '|';
    }
    os << '\n';
  };

  rule();
  emit(header_, false);
  rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      rule();
    } else {
      emit(row, true);
    }
  }
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (c) os << ',';
      if (c < row.size()) os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
}

void Table::print_json_rows(std::ostream& os, const std::string& extra) const {
  // A cell is a bare JSON number only if it matches the strict grammar
  // -?digits(.digits)?([eE][+-]?digits)?. strtod would also consume
  // "inf", "nan", and hex forms like "0x1A", which are not valid JSON
  // tokens and must stay quoted strings.
  auto is_json_number = [](const std::string& s) {
    const std::size_t n = s.size();
    std::size_t i = 0;
    auto digits = [&] {
      const std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
      return i > start;
    };
    if (i < n && s[i] == '-') ++i;
    if (!digits()) return false;
    if (i < n && s[i] == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return i == n;
  };
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char ch : s) {
      const auto c = static_cast<unsigned char>(ch);
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (c < 0x20) {  // control chars are illegal inside JSON strings
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += ch;
      }
    }
    return out;
  };
  for (const auto& row : rows_) {
    if (row.empty()) continue;  // separator
    os << '{';
    bool first = true;
    if (!extra.empty()) {
      os << extra;
      first = false;
    }
    for (std::size_t c = 0; c < header_.size(); ++c) {
      if (!first) os << ',';
      first = false;
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << '"' << escape(header_[c]) << "\":";
      if (is_json_number(cell)) {
        os << cell;
      } else {
        os << '"' << escape(cell) << '"';
      }
    }
    os << "}\n";
  }
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string format_ms(double ms) {
  char buf[64];
  if (ms < 0.1) {
    std::snprintf(buf, sizeof buf, "%.4f", ms);
  } else if (ms < 10) {
    std::snprintf(buf, sizeof buf, "%.3f", ms);
  } else if (ms < 1000) {
    std::snprintf(buf, sizeof buf, "%.1f", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", ms);
  }
  return buf;
}

std::string format_count(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ull << 30)) {
    std::snprintf(buf, sizeof buf, "%.1fGiB", static_cast<double>(bytes) / (1ull << 30));
  } else if (bytes >= (1ull << 20)) {
    std::snprintf(buf, sizeof buf, "%.1fMiB", static_cast<double>(bytes) / (1ull << 20));
  } else if (bytes >= (1ull << 10)) {
    std::snprintf(buf, sizeof buf, "%.1fKiB", static_cast<double>(bytes) / (1ull << 10));
  } else {
    std::snprintf(buf, sizeof buf, "%lluB", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace hmm::util
