#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

namespace hmm::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool Cli::expect_flags(std::initializer_list<std::string_view> known,
                       std::ostream& err) const {
  bool ok = true;
  for (const auto& [key, value] : flags_) {
    (void)value;
    if (std::find(known.begin(), known.end(), key) == known.end()) {
      err << program_ << ": unknown flag --" << key << "\n";
      ok = false;
    }
  }
  if (!ok) {
    err << "usage: " << program_;
    for (std::string_view k : known) err << " [--" << k << "]";
    err << "\n";
  }
  return ok;
}

bool Cli::has(const std::string& key) const { return flags_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  // Accept suffixes K/M/G (binary).
  const std::string& v = it->second;
  char* end = nullptr;
  std::int64_t base = std::strtoll(v.c_str(), &end, 0);
  if (end && *end) {
    switch (*end) {
      case 'k': case 'K': base <<= 10; break;
      case 'm': case 'M': base <<= 20; break;
      case 'g': case 'G': base <<= 30; break;
      default: break;
    }
  }
  return base;
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on" || it->second.empty();
}

}  // namespace hmm::util
