#include "util/rng.hpp"

namespace hmm::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
}

std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection sampler.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull,
                                            0x77710069854ee241ull, 0x39109bb02acbe635ull};
  std::uint64_t t[4] = {0, 0, 0, 0};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      next();
    }
  }
  s_[0] = t[0];
  s_[1] = t[1];
  s_[2] = t[2];
  s_[3] = t[3];
}

}  // namespace hmm::util
