#pragma once
/// \file stopwatch.hpp
/// \brief Wall-clock stopwatch for the benchmark harnesses.

#include <chrono>

namespace hmm::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  using clock = std::chrono::steady_clock;

  Stopwatch() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed time in seconds.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

  /// Elapsed time in nanoseconds.
  [[nodiscard]] double nanos() const noexcept { return seconds() * 1e9; }

 private:
  clock::time_point start_;
};

}  // namespace hmm::util
