#pragma once
/// \file aligned_vector.hpp
/// \brief Cache-line/“memory-row” aligned storage for kernel buffers.
///
/// Kernel arrays are aligned to 128 bytes so that element 0 begins a
/// cacheline (host backend) and an address group (simulator backend):
/// the coalescing analysis assumes array base addresses are
/// group-aligned exactly like `cudaMalloc` guarantees on real GPUs.
///
/// The SIMD kernel tier additionally relies on a 64-byte floor: a
/// full-width AVX-512 vector load of element 0 must not split a
/// cacheline. The kernels themselves only use unaligned load/store
/// instructions (correctness never depends on alignment), but the
/// floor keeps the aligned fast path on every buffer that flows
/// through `aligned_vector` or the `BufferPool` (whose
/// `kBufferAlignment` shares the same 128-byte boundary).

#include <cstddef>
#include <memory>
#include <vector>

namespace hmm::util {

/// Minimal over-aligned allocator.
template <class T, std::size_t Align = 128>
struct AlignedAllocator {
  static_assert(Align >= 64 && (Align & (Align - 1)) == 0,
                "kernel buffers guarantee at least 64-byte (vector-width) alignment");
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  /// Explicit rebind: the automatic one does not apply because `Align`
  /// is a non-type template parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), alignment));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, alignment); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// 128-byte-aligned vector; the standard buffer type for kernel data.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hmm::util
