#pragma once
/// \file aligned_vector.hpp
/// \brief Cache-line/“memory-row” aligned storage for kernel buffers.
///
/// Kernel arrays are aligned to 128 bytes so that element 0 begins a
/// cacheline (host backend) and an address group (simulator backend):
/// the coalescing analysis assumes array base addresses are
/// group-aligned exactly like `cudaMalloc` guarantees on real GPUs.

#include <cstddef>
#include <memory>
#include <vector>

namespace hmm::util {

/// Minimal over-aligned allocator.
template <class T, std::size_t Align = 128>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t alignment{Align};

  /// Explicit rebind: the automatic one does not apply because `Align`
  /// is a non-type template parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), alignment));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, alignment); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// 128-byte-aligned vector; the standard buffer type for kernel data.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hmm::util
