#pragma once
/// \file check.hpp
/// \brief Lightweight runtime check macros used throughout the library.
///
/// `HMM_CHECK` is always on (argument validation on public entry points);
/// `HMM_DCHECK` compiles away in release builds and guards internal
/// invariants on hot paths.

#include <cstdio>
#include <cstdlib>

namespace hmm::util {

/// Print a diagnostic and abort. Out-of-line so the macro stays tiny.
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "[hmm] check failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace hmm::util

#define HMM_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::hmm::util::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HMM_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::hmm::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define HMM_DCHECK(expr) ((void)0)
#else
#define HMM_DCHECK(expr) HMM_CHECK(expr)
#endif
