#pragma once
/// \file check.hpp
/// \brief Lightweight runtime check macros used throughout the library.
///
/// `HMM_CHECK` is always on (argument validation on public entry points);
/// `HMM_DCHECK` compiles away in release builds and guards internal
/// invariants on hot paths.
///
/// Scope note (the error taxonomy, see also runtime/status.hpp): these
/// macros are for *programmer errors and broken invariants only* — a
/// non-bijective "permutation", a schedule entry outside its row, a
/// wait on a pool worker that would deadlock. They abort because no
/// caller can meaningfully recover. **Operational** failures a serving
/// process must survive — malformed requests, plan-build failures,
/// allocation pressure, deadlines, cancellation — must instead return
/// `hmm::runtime::Status` / `StatusOr<T>` through the serving-path
/// entry points (`PlanCache::try_acquire`, `Executor::try_submit`,
/// `RobustPermuteService::submit`, `load_plan_checked`). Adding an
/// HMM_CHECK on a path reachable by untrusted request input is a bug.

#include <cstdio>
#include <cstdlib>

namespace hmm::util {

/// Print a diagnostic and abort. Out-of-line so the macro stays tiny.
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "[hmm] check failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace hmm::util

#define HMM_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr)) ::hmm::util::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HMM_CHECK_MSG(expr, msg)                                         \
  do {                                                                   \
    if (!(expr)) ::hmm::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define HMM_DCHECK(expr) ((void)0)
#else
#define HMM_DCHECK(expr) HMM_CHECK(expr)
#endif
