#pragma once
/// \file executor.hpp
/// \brief Batched async executor: a futures-based request front-end
///        over `util::ThreadPool`.
///
/// `submit(permuter, a, b)` enqueues one permutation request and
/// returns a `std::future<void>` that becomes ready when `b` holds the
/// permuted data (or carries the exception that aborted the request).
/// Requests drain onto the shared thread pool via
/// `ThreadPool::submit_task`; each request then fans its kernels out
/// on the same pool (`parallel_for` help-drains when called from a
/// worker, so this nesting cannot deadlock — see thread_pool.hpp).
///
/// Concurrency model: one compiled plan may serve many in-flight
/// requests at once — the executor allocates a per-request scratch
/// buffer and uses the permuter's const execute path, which touches no
/// shared mutable state. Distinct plans naturally compile/execute in
/// parallel because plan compilation (PlanCache misses) happens on the
/// submitting threads while older requests execute on the pool.
///
/// The caller keeps ownership of `a` and `b` and must keep them alive
/// and un-mutated until the future is ready (standard async-IO
/// contract). The permuter handle is a shared_ptr, so a cache eviction
/// cannot invalidate an in-flight request.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>

#include "core/permuter.hpp"
#include "runtime/metrics.hpp"
#include "util/aligned_vector.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::runtime {

class Executor {
 public:
  explicit Executor(util::ThreadPool& pool, ServiceMetrics* metrics = nullptr)
      : pool_(pool), metrics_(metrics) {}

  /// Destruction waits for every in-flight request (their tasks hold
  /// spans owned by callers; letting them outlive the executor is fine,
  /// but draining makes teardown ordering obvious).
  ~Executor() { wait_idle(); }

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue b[P(i)] = a[i] under the compiled permuter `h`.
  template <class T>
  std::future<void> submit(std::shared_ptr<const core::OfflinePermuter<T>> h,
                           std::span<const T> a, std::span<T> b) {
    HMM_CHECK(h != nullptr);
    const std::uint64_t depth = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    std::future<void> fut;
    try {
      fut = pool_.submit_task([this, h = std::move(h), a, b] {
        Completion done(*this);  // decrements in_flight_ even on throw
        util::Stopwatch clock;
        bool ok = false;
        try {
          util::aligned_vector<T> scratch(h->scratch_elements());
          h->permute(a, b, std::span<T>(scratch.data(), scratch.size()));
          ok = true;
        } catch (...) {
          if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
          throw;  // delivered through the future
        }
        if (metrics_ && ok) {
          metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
        }
      });
    } catch (...) {
      // Enqueue failed (packaged_task / queue allocation): the task
      // will never run, so its Completion never fires — roll the count
      // back or wait_idle() and the destructor would block forever.
      finish_one();
      throw;
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Requests submitted but not yet finished.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Block until every submitted request has finished. Callers that
  /// keep futures can equivalently wait on those; this is the bulk
  /// barrier for fire-and-forget batches.
  void wait_idle();

 private:
  /// RAII completion marker so the in-flight count stays correct on
  /// every exit path of a request task. The decrement happens under
  /// idle_mutex_ so a wait_idle() caller (e.g. the destructor) can
  /// never observe zero and tear down while this thread is still about
  /// to touch the condition variable.
  struct Completion {
    explicit Completion(Executor& e) : exec(e) {}
    ~Completion() { exec.finish_one(); }
    Executor& exec;
  };

  void finish_one() noexcept {
    std::lock_guard lock(idle_mutex_);
    if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      idle_cv_.notify_all();
    }
  }

  util::ThreadPool& pool_;
  ServiceMetrics* metrics_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace hmm::runtime
