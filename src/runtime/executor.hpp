#pragma once
/// \file executor.hpp
/// \brief Batched async executor: a futures-based request front-end
///        over `util::ThreadPool`, with admission control, per-request
///        deadlines, and cooperative cancellation.
///
/// `submit(permuter, a, b)` enqueues one permutation request and
/// returns a `std::future<void>` that becomes ready when `b` holds the
/// permuted data (or carries the exception that aborted the request).
/// `try_submit(permuter, a, b, opts)` is the serving-path variant: it
/// never throws request-level failures, reporting them as a typed
/// `Status` instead — synchronously when the request is refused
/// (admission bound hit, deadline already expired, cancelled before
/// enqueue) and through the returned `std::future<Status>` after that.
///
/// Request lifecycle controls:
///  - **Admission**: `Config::max_in_flight` bounds the number of
///    admitted-but-unfinished requests. At the bound, `try_submit`
///    either rejects with `kResourceExhausted` (Admission::kReject) or
///    blocks the submitter until a slot frees or the request deadline
///    passes (Admission::kBlock). The legacy `submit` always blocks.
///  - **Deadlines**: checked before admission, at dequeue (a request
///    that waited out its deadline in the queue resolves
///    `kDeadlineExceeded` without executing), and between the kernel
///    phases of the permuter via its phase gate.
///  - **Cancellation**: a `CancelToken` is polled at the same three
///    stages; a cancelled request resolves `kCancelled`.
///
/// Requests drain onto the shared thread pool via
/// `ThreadPool::submit_task`; each request then fans its kernels out
/// on the same pool (`parallel_for` help-drains when called from a
/// worker, so this nesting cannot deadlock — see thread_pool.hpp).
///
/// Concurrency model: one compiled plan may serve many in-flight
/// requests at once — the executor allocates a per-request scratch
/// buffer and uses the permuter's const execute path, which touches no
/// shared mutable state. The caller keeps ownership of `a` and `b` and
/// must keep them alive and un-mutated until the future is ready; a
/// request stopped by deadline/cancellation between kernel phases
/// leaves `b` partially written (treat it as garbage).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>

#include "core/permuter.hpp"
#include "runtime/cancel.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/status.hpp"
#include "util/aligned_vector.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::runtime {

class Executor {
 public:
  /// What to do with a try_submit that finds `max_in_flight` requests
  /// already admitted.
  enum class Admission {
    kBlock,   ///< wait for a slot (bounded by the request deadline)
    kReject,  ///< fail fast with kResourceExhausted
  };

  struct Config {
    std::uint64_t max_in_flight = 0;  ///< 0 = unbounded
    Admission admission = Admission::kBlock;
    /// Requests whose attributed phase time reaches this threshold get
    /// a rate-limited stderr line with their full phase breakdown.
    /// 0 = slow-request log disabled.
    std::chrono::milliseconds slow_log_threshold{0};
  };

  /// "No deadline": requests never expire.
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  struct SubmitOptions {
    std::chrono::steady_clock::time_point deadline = kNoDeadline;
    CancelToken cancel;
    /// Caller-chosen correlation id, echoed in the slow-request log.
    /// The net server passes the HMMP request_id through here.
    std::uint64_t trace_id = 0;
    /// Per-request phase accumulator. Callers that already attributed
    /// time (plan lookup/build in the service) hand their breakdown in;
    /// `try_submit` creates one otherwise. Once passed to `try_submit`
    /// the executor owns flushing it into the metrics — the caller must
    /// not record it again.
    std::shared_ptr<PhaseBreakdown> phases;
  };

  explicit Executor(util::ThreadPool& pool, ServiceMetrics* metrics = nullptr)
      : Executor(pool, metrics, Config{}) {}
  Executor(util::ThreadPool& pool, ServiceMetrics* metrics, Config config)
      : pool_(pool), metrics_(metrics), config_(config) {}

  /// Destruction waits for every in-flight request (their tasks hold
  /// spans owned by callers; letting them outlive the executor is fine,
  /// but draining makes teardown ordering obvious). If draining stalls
  /// past a threshold, a rate-limited warning names the number of
  /// requests still in flight — a stalled worker is otherwise invisible
  /// at teardown.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue b[P(i)] = a[i] under the compiled permuter `h`. Failures
  /// surface as exceptions through the future. Blocks for a slot when
  /// the in-flight bound is hit (regardless of the admission policy —
  /// this legacy entry point has no way to report a rejection).
  template <class T>
  std::future<void> submit(std::shared_ptr<const core::OfflinePermuter<T>> h,
                           std::span<const T> a, std::span<T> b) {
    HMM_CHECK(h != nullptr);
    const std::uint64_t depth = admit_blocking();
    std::future<void> fut;
    try {
      fut = pool_.submit_task([this, h = std::move(h), a, b] {
        Completion done(*this);  // decrements in_flight_ even on throw
        util::Stopwatch clock;
        bool ok = false;
        try {
          FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
          FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                                StatusCode::kResourceExhausted,
                                                "scratch allocation failure");
          util::aligned_vector<T> scratch(h->scratch_elements());
          h->permute(a, b, std::span<T>(scratch.data(), scratch.size()));
          ok = true;
        } catch (...) {
          if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
          throw;  // delivered through the future
        }
        if (metrics_ && ok) {
          metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
        }
      });
    } catch (...) {
      // Enqueue failed (packaged_task / queue allocation): the task
      // will never run, so its Completion never fires — roll the count
      // back or wait_idle() and the destructor would block forever.
      finish_one();
      throw;
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Serving-path submit: admission control + deadline + cancellation,
  /// all failures as typed Status. A synchronous error means the
  /// request was refused before enqueue and will never execute; an OK
  /// result carries the future that resolves with the request outcome.
  template <class T>
  StatusOr<std::future<Status>> try_submit(std::shared_ptr<const core::OfflinePermuter<T>> h,
                                           std::span<const T> a, std::span<T> b,
                                           SubmitOptions opts = {}) {
    if (h == nullptr) return Status(StatusCode::kInvalidArgument, "null permuter handle");
    if (a.size() != h->size() || b.size() != h->size()) {
      return Status(StatusCode::kInvalidArgument, "span sizes do not match the permuter");
    }
    if (!opts.phases) opts.phases = std::make_shared<PhaseBreakdown>();
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      finalize_request(opts);
      return Status(StatusCode::kCancelled, "cancelled before admission");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      finalize_request(opts);
      return Status(StatusCode::kDeadlineExceeded, "deadline expired before admission");
    }

    // The admission span is recorded unconditionally (an uncontended
    // admit is a near-zero sample): "waited 0 ns" is signal, while a
    // missing admission_wait series would read as an unwired timer.
    util::Stopwatch admit_clock;
    std::uint64_t depth = 0;
    Status admitted = admit(opts.deadline, depth);
    opts.phases->add(Phase::kAdmissionWait, static_cast<std::uint64_t>(admit_clock.nanos()));
    if (!admitted.is_ok()) {
      finalize_request(opts);
      return admitted;
    }

    std::future<Status> fut;
    const auto enqueued_at = std::chrono::steady_clock::now();
    try {
      fut = pool_.submit_task([this, h = std::move(h), a, b, opts, enqueued_at]() -> Status {
        return run_request<T>(*h, a, b, opts, enqueued_at);
      });
    } catch (...) {
      finish_one();
      throw;  // enqueue alloc failure: a process-level problem, not a request outcome
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Requests admitted but not yet finished.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Block until every submitted request has finished. Callers that
  /// keep futures can equivalently wait on those; this is the bulk
  /// barrier for fire-and-forget batches.
  void wait_idle();

  /// `wait_idle` with a timeout: returns true once idle, false if the
  /// timeout elapsed with requests still in flight. Lets teardown and
  /// tests detect stalled workers instead of blocking forever.
  [[nodiscard]] bool wait_idle_for(std::chrono::nanoseconds timeout);

 private:
  /// RAII completion marker so the in-flight count stays correct on
  /// every exit path of a request task. The decrement happens under
  /// idle_mutex_ so a wait_idle() caller (e.g. the destructor) can
  /// never observe zero and tear down while this thread is still about
  /// to touch the condition variable.
  struct Completion {
    explicit Completion(Executor& e) : exec(e) {}
    ~Completion() { exec.finish_one(); }
    Executor& exec;
  };

  static bool expired(std::chrono::steady_clock::time_point deadline) noexcept {
    return deadline != kNoDeadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// The request task body: dequeue-time checks, then the gated
  /// execute. Runs on a pool worker; every outcome is a Status. Every
  /// exit path flushes the request's phase breakdown into the metrics
  /// (and the slow-request log) exactly once.
  template <class T>
  Status run_request(const core::OfflinePermuter<T>& h, std::span<const T> a, std::span<T> b,
                     const SubmitOptions& opts,
                     std::chrono::steady_clock::time_point enqueued_at) {
    Completion done(*this);
    PhaseBreakdown* phases = opts.phases.get();
    if (phases) {
      const auto waited = std::chrono::steady_clock::now() - enqueued_at;
      phases->add(Phase::kQueueWait,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
    }
    const Status st = run_request_body(h, a, b, opts, phases);
    finalize_request(opts);
    return st;
  }

  template <class T>
  Status run_request_body(const core::OfflinePermuter<T>& h, std::span<const T> a,
                          std::span<T> b, const SubmitOptions& opts, PhaseBreakdown* phases) {
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      return Status(StatusCode::kCancelled, "cancelled while queued");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "queued past the request deadline");
    }
    core::KernelObserver observer;
    if (phases) {
      observer = [phases](unsigned kernel, std::uint64_t ns) {
        phases->add(phase_for_kernel(kernel), ns);
      };
    }
    util::Stopwatch clock;
    try {
      FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
      FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                            StatusCode::kResourceExhausted,
                                            "scratch allocation failure");
      util::aligned_vector<T> scratch(h.scratch_elements());
      const bool ran_to_completion = h.permute_timed(
          a, b, std::span<T>(scratch.data(), scratch.size()),
          [&opts] { return !opts.cancel.cancelled() && !expired(opts.deadline); }, observer);
      if (!ran_to_completion) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        if (opts.cancel.cancelled()) {
          if (metrics_) metrics_->record_cancelled();
          return Status(StatusCode::kCancelled, "cancelled between kernel phases");
        }
        if (metrics_) metrics_->record_deadline_exceeded();
        return Status(StatusCode::kDeadlineExceeded, "deadline exceeded between kernel phases");
      }
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
      return Status::ok();
    } catch (const FaultInjectedError& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(e.code, e.what());
    } catch (const std::bad_alloc&) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kResourceExhausted, "allocation failed during execute");
    } catch (const std::exception& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kUnavailable, e.what());
    }
  }

  /// Flush a request's phase breakdown into the per-phase histograms
  /// and, when armed and over threshold, the rate-limited slow log.
  void finalize_request(const SubmitOptions& opts) noexcept;

  /// Reserve an in-flight slot, honoring the admission policy. On
  /// success `depth_out` holds the in-flight count including this
  /// request (the queue-depth sample for metrics).
  Status admit(std::chrono::steady_clock::time_point deadline, std::uint64_t& depth_out);

  /// Legacy-path admission: block unconditionally for a slot.
  std::uint64_t admit_blocking();

  void finish_one() noexcept {
    std::lock_guard lock(idle_mutex_);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    // Wake both idle waiters and blocked admitters; admission waits on
    // the same condition variable.
    idle_cv_.notify_all();
  }

  [[nodiscard]] bool has_slot_locked() const noexcept {
    return config_.max_in_flight == 0 ||
           in_flight_.load(std::memory_order_acquire) < config_.max_in_flight;
  }

  util::ThreadPool& pool_;
  ServiceMetrics* metrics_;
  Config config_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
};

}  // namespace hmm::runtime
