#pragma once
/// \file executor.hpp
/// \brief Batched async executor: a futures-based request front-end
///        over `util::ThreadPool`, with admission control, per-request
///        deadlines, cooperative cancellation, pooled scratch, and
///        optional same-plan request batching.
///
/// `submit(permuter, a, b)` enqueues one permutation request and
/// returns a `std::future<void>` that becomes ready when `b` holds the
/// permuted data (or carries the exception that aborted the request).
/// `try_submit(permuter, a, b, opts)` is the serving-path variant: it
/// never throws request-level failures, reporting them as a typed
/// `Status` instead — synchronously when the request is refused
/// (admission bound hit, deadline already expired, cancelled before
/// enqueue) and through the returned `std::future<Status>` after that.
///
/// Request lifecycle controls:
///  - **Admission**: `Config::max_in_flight` bounds the number of
///    admitted-but-unfinished requests. At the bound, `try_submit`
///    either rejects with `kResourceExhausted` (Admission::kReject) or
///    blocks the submitter until a slot frees or the request deadline
///    passes (Admission::kBlock). The legacy `submit` always blocks.
///  - **Deadlines**: checked before admission, at dequeue (a request
///    that waited out its deadline in the queue resolves
///    `kDeadlineExceeded` without executing), and between the kernel
///    phases of the permuter via its phase gate.
///  - **Cancellation**: a `CancelToken` is polled at the same three
///    stages; a cancelled request resolves `kCancelled`.
///
/// **Scratch is pooled.** Every scheduled request needs an n-element
/// scratch buffer; instead of a per-request heap allocation the
/// executor draws it from a `util::BufferPool` (Config::pool, default
/// the process-wide pool) — at steady state the request path performs
/// zero heap allocations for scratch. Pool-cap exhaustion resolves
/// `kResourceExhausted`, and the `pool.exhausted` fault site injects
/// exactly that pressure for chaos runs.
///
/// **Same-plan batching** (Config::batch, off by default). Requests
/// that share a compiled scheduled plan are gathered — up to
/// `max_batch` of them, for at most `max_delay` — and executed as one
/// `core::scheduled_cpu_lean_batched` sweep: five thread-pool
/// fork/joins per *batch* instead of per request, the serving-side
/// image of the paper's batching lemma (many permutations along the
/// same plan amortize to optimal cost). Batching is invisible to
/// callers: each request keeps its own future, deadline, cancel token,
/// and phase breakdown, and a request gated off mid-batch (deadline or
/// cancel) leaves the rest of its batch unaffected. Requests are
/// admitted *before* gathering, so the in-flight bound keeps its
/// meaning; a full group flushes immediately, a partial one when its
/// gather window expires (a dedicated flusher thread owns the timer).
/// Conventional-strategy requests bypass gathering entirely.
///
/// Requests drain onto the shared thread pool via
/// `ThreadPool::submit_task`; each request then fans its kernels out
/// on the same pool (`parallel_for` help-drains when called from a
/// worker, so this nesting cannot deadlock — see thread_pool.hpp).
///
/// Concurrency model: one compiled plan may serve many in-flight
/// requests at once — the executor acquires per-request scratch and
/// uses the permuter's const execute path, which touches no shared
/// mutable state. The caller keeps ownership of `a` and `b` and must
/// keep them alive and un-mutated until the future is ready; a request
/// stopped by deadline/cancellation between kernel phases leaves `b`
/// partially written (treat it as garbage).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/permuter.hpp"
#include "core/scheduled.hpp"
#include "runtime/cancel.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/status.hpp"
#include "util/buffer_pool.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace hmm::runtime {

class Executor {
 public:
  /// What to do with a try_submit that finds `max_in_flight` requests
  /// already admitted.
  enum class Admission {
    kBlock,   ///< wait for a slot (bounded by the request deadline)
    kReject,  ///< fail fast with kResourceExhausted
  };

  /// Same-plan gathering bounds. Off by default: batching trades a
  /// bounded gather delay for amortized fork/join cost, and that trade
  /// is the operator's to make (`--batch-max` / `--batch-delay-us`).
  struct BatchOptions {
    /// Coalesce up to this many same-plan requests per kernel sweep.
    /// <= 1 disables batching entirely (no flusher thread).
    std::uint64_t max_batch = 1;
    /// Longest a gathered request waits for companions before its
    /// (partial) batch executes anyway.
    std::chrono::microseconds max_delay{200};
    /// Cache-residency budget for one fused sweep: input + output +
    /// scratch across every lane. Lane counts are capped so the batch
    /// fits (an unbatched request chains its five passes through a
    /// cache-resident buffer trio; a batch that overflows the cache
    /// loses that reuse and runs *slower* than sequential requests —
    /// measured crossover is ~256 KiB/lane on a 1.5 MiB budget). When
    /// the budget admits fewer than `kMinFusedLanes` lanes, the request
    /// skips gathering entirely.
    std::uint64_t cache_budget_bytes = 1536 << 10;
    /// Below this many lanes the quad-unrolled fused kernels degrade to
    /// the per-lane remainder path and amortize nothing; don't gather.
    static constexpr std::uint64_t kMinFusedLanes = 4;

    [[nodiscard]] bool enabled() const noexcept { return max_batch > 1; }

    /// Largest worthwhile batch for requests of `lane_bytes` (input +
    /// output + scratch for one lane); < kMinFusedLanes means "do not
    /// batch this size at all".
    [[nodiscard]] std::uint64_t lanes_for(std::uint64_t lane_bytes) const noexcept {
      if (lane_bytes == 0) return max_batch;
      return std::min<std::uint64_t>(max_batch, cache_budget_bytes / lane_bytes);
    }
  };

  struct Config {
    std::uint64_t max_in_flight = 0;  ///< 0 = unbounded
    Admission admission = Admission::kBlock;
    /// Requests whose attributed phase time reaches this threshold get
    /// a rate-limited stderr line with their full phase breakdown.
    /// 0 = slow-request log disabled.
    std::chrono::milliseconds slow_log_threshold{0};
    /// Same-plan request batching (see BatchOptions).
    BatchOptions batch;
    /// Scratch buffer pool; nullptr = `util::BufferPool::global()`.
    util::BufferPool* pool = nullptr;
  };

  /// "No deadline": requests never expire.
  static constexpr std::chrono::steady_clock::time_point kNoDeadline =
      std::chrono::steady_clock::time_point::max();

  struct SubmitOptions {
    std::chrono::steady_clock::time_point deadline = kNoDeadline;
    CancelToken cancel;
    /// Caller-chosen correlation id, echoed in the slow-request log.
    /// The net server passes the HMMP request_id through here.
    std::uint64_t trace_id = 0;
    /// Per-request phase accumulator. Callers that already attributed
    /// time (plan lookup/build in the service) hand their breakdown in;
    /// `try_submit` creates one otherwise. Once passed to `try_submit`
    /// the executor owns flushing it into the metrics — the caller must
    /// not record it again.
    std::shared_ptr<PhaseBreakdown> phases;
  };

  explicit Executor(util::ThreadPool& pool, ServiceMetrics* metrics = nullptr)
      : Executor(pool, metrics, Config{}) {}
  Executor(util::ThreadPool& pool, ServiceMetrics* metrics, Config config);

  /// Destruction flushes any gathering batches, joins the flusher, then
  /// waits for every in-flight request (their tasks hold spans owned by
  /// callers; letting them outlive the executor is fine, but draining
  /// makes teardown ordering obvious). If draining stalls past a
  /// threshold, a rate-limited warning names the number of requests
  /// still in flight — a stalled worker is otherwise invisible at
  /// teardown.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueue b[P(i)] = a[i] under the compiled permuter `h`. Failures
  /// surface as exceptions through the future. Blocks for a slot when
  /// the in-flight bound is hit (regardless of the admission policy —
  /// this legacy entry point has no way to report a rejection).
  template <class T>
  std::future<void> submit(std::shared_ptr<const core::OfflinePermuter<T>> h,
                           std::span<const T> a, std::span<T> b) {
    HMM_CHECK(h != nullptr);
    const std::uint64_t depth = admit_blocking();
    std::future<void> fut;
    try {
      fut = pool_.submit_task([this, h = std::move(h), a, b] {
        Completion done(*this);  // decrements in_flight_ even on throw
        util::Stopwatch clock;
        bool ok = false;
        try {
          FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
          FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                                StatusCode::kResourceExhausted,
                                                "scratch allocation failure");
          const std::uint64_t scratch_elems = h->scratch_elements();
          util::PooledBuffer scratch = buffer_pool_->acquire(scratch_elems * sizeof(T));
          h->permute(a, b, scratch.as_span<T>(scratch_elems));
          ok = true;
        } catch (...) {
          if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
          throw;  // delivered through the future
        }
        if (metrics_ && ok) {
          metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
        }
      });
    } catch (...) {
      // Enqueue failed (packaged_task / queue allocation): the task
      // will never run, so its Completion never fires — roll the count
      // back or wait_idle() and the destructor would block forever.
      finish_one();
      throw;
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Serving-path submit: admission control + deadline + cancellation,
  /// all failures as typed Status. A synchronous error means the
  /// request was refused before enqueue and will never execute; an OK
  /// result carries the future that resolves with the request outcome.
  template <class T>
  StatusOr<std::future<Status>> try_submit(std::shared_ptr<const core::OfflinePermuter<T>> h,
                                           std::span<const T> a, std::span<T> b,
                                           SubmitOptions opts = {}) {
    if (h == nullptr) return Status(StatusCode::kInvalidArgument, "null permuter handle");
    if (a.size() != h->size() || b.size() != h->size()) {
      return Status(StatusCode::kInvalidArgument, "span sizes do not match the permuter");
    }
    if (!opts.phases) opts.phases = std::make_shared<PhaseBreakdown>();
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      finalize_request(opts);
      return Status(StatusCode::kCancelled, "cancelled before admission");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      finalize_request(opts);
      return Status(StatusCode::kDeadlineExceeded, "deadline expired before admission");
    }

    // The admission span is recorded unconditionally (an uncontended
    // admit is a near-zero sample): "waited 0 ns" is signal, while a
    // missing admission_wait series would read as an unwired timer.
    util::Stopwatch admit_clock;
    std::uint64_t depth = 0;
    Status admitted = admit(opts.deadline, depth);
    opts.phases->add(Phase::kAdmissionWait, static_cast<std::uint64_t>(admit_clock.nanos()));
    if (!admitted.is_ok()) {
      finalize_request(opts);
      return admitted;
    }

    // Batched path: only scheduled-strategy requests coalesce (the
    // conventional kernels are one launch already, there is nothing to
    // amortize), and only when the cache budget admits a worthwhile
    // lane count (see BatchOptions::cache_budget_bytes). The group key
    // is the permuter object itself — the plan cache dedups compiled
    // plans, so one hot plan is one address.
    if (config_.batch.enabled() && h->strategy() == core::Strategy::kScheduled &&
        h->plan() != nullptr) {
      const std::uint64_t lane_bytes = 3 * a.size() * sizeof(T);  // a + b + scratch
      const std::uint64_t lanes = config_.batch.lanes_for(lane_bytes);
      if (lanes >= BatchOptions::kMinFusedLanes) {
        return enqueue_batched<T>(std::move(h), a, b, std::move(opts), depth, lanes);
      }
    }

    std::future<Status> fut;
    const auto enqueued_at = std::chrono::steady_clock::now();
    try {
      fut = pool_.submit_task([this, h = std::move(h), a, b, opts, enqueued_at]() -> Status {
        return run_request<T>(*h, a, b, opts, enqueued_at);
      });
    } catch (...) {
      finish_one();
      throw;  // enqueue alloc failure: a process-level problem, not a request outcome
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Staged program execution: run a validated chain of same-size
  /// permuters back-to-back as ONE admitted request (one in-flight
  /// slot, one future), ping-ponging through pooled intermediate
  /// buffers so a depth-k chain performs zero per-request heap
  /// allocations and intermediates never leave the process. The
  /// deadline/cancel pair is re-checked at every stage boundary (and
  /// between kernels inside each stage via the phase gate); the
  /// `program.stage` fault site injects a failure at exactly those
  /// boundaries. Pooled buffers are RAII handles, so every early exit
  /// (cancel, deadline, fault, pool exhaustion) releases them.
  ///
  /// This is the *staged fallback* of the program subsystem — the fused
  /// path compiles the composite permutation and goes through plain
  /// try_submit. Stage semantics: stage 0 reads `a`; the last stage
  /// writes `b`; a request stopped early leaves `b` garbage.
  template <class T>
  StatusOr<std::future<Status>> submit_program(
      std::vector<std::shared_ptr<const core::OfflinePermuter<T>>> stages,
      std::span<const T> a, std::span<T> b, SubmitOptions opts = {}) {
    if (stages.empty()) {
      return Status(StatusCode::kInvalidArgument, "program has no stages");
    }
    for (const auto& stage : stages) {
      if (stage == nullptr) {
        return Status(StatusCode::kInvalidArgument, "null permuter handle in program");
      }
      if (a.size() != stage->size() || b.size() != stage->size()) {
        return Status(StatusCode::kInvalidArgument,
                      "span sizes do not match the program stages");
      }
    }
    if (!opts.phases) opts.phases = std::make_shared<PhaseBreakdown>();
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      finalize_request(opts);
      return Status(StatusCode::kCancelled, "cancelled before admission");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      finalize_request(opts);
      return Status(StatusCode::kDeadlineExceeded, "deadline expired before admission");
    }

    util::Stopwatch admit_clock;
    std::uint64_t depth = 0;
    Status admitted = admit(opts.deadline, depth);
    opts.phases->add(Phase::kAdmissionWait, static_cast<std::uint64_t>(admit_clock.nanos()));
    if (!admitted.is_ok()) {
      finalize_request(opts);
      return admitted;
    }

    std::future<Status> fut;
    const auto enqueued_at = std::chrono::steady_clock::now();
    try {
      fut = pool_.submit_task(
          [this, stages = std::move(stages), a, b, opts, enqueued_at]() -> Status {
            return run_program<T>(stages, a, b, opts, enqueued_at);
          });
    } catch (...) {
      finish_one();
      throw;  // enqueue alloc failure: a process-level problem, not a request outcome
    }
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Requests admitted but not yet finished.
  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The scratch pool in use (Config::pool or the global pool).
  [[nodiscard]] util::BufferPool& buffer_pool() noexcept { return *buffer_pool_; }

  /// Block until every submitted request has finished. Callers that
  /// keep futures can equivalently wait on those; this is the bulk
  /// barrier for fire-and-forget batches.
  void wait_idle();

  /// `wait_idle` with a timeout: returns true once idle, false if the
  /// timeout elapsed with requests still in flight. Lets teardown and
  /// tests detect stalled workers instead of blocking forever.
  [[nodiscard]] bool wait_idle_for(std::chrono::nanoseconds timeout);

 private:
  /// RAII completion marker so the in-flight count stays correct on
  /// every exit path of a request task. The decrement happens under
  /// idle_mutex_ so a wait_idle() caller (e.g. the destructor) can
  /// never observe zero and tear down while this thread is still about
  /// to touch the condition variable.
  struct Completion {
    explicit Completion(Executor& e) : exec(e) {}
    ~Completion() { exec.finish_one(); }
    Executor& exec;
  };

  // --- Same-plan batching ------------------------------------------

  /// One gathered request: everything run_batch needs to execute and
  /// resolve it. Each item holds an admission slot from enqueue until
  /// its resolution calls finish_one().
  template <class T>
  struct BatchItem {
    std::span<const T> a;
    std::span<T> b;
    SubmitOptions opts;
    std::chrono::steady_clock::time_point enqueued_at;
    std::promise<Status> promise;
  };

  /// Type-erased gathering group so the flusher thread and map can
  /// hold batches of any element type.
  struct BatchGroupBase {
    virtual ~BatchGroupBase() = default;
    virtual void run(Executor& ex) = 0;
    /// Resolve every item with `st` without executing (dispatch
    /// failure during teardown or enqueue).
    virtual void refuse_all(Executor& ex, const Status& st) noexcept = 0;
    std::chrono::steady_clock::time_point flush_at;
    /// Flush-at-full threshold for this group (max_batch, possibly
    /// tightened by the cache budget for this plan's request size).
    std::uint64_t full_count = 0;
  };

  template <class T>
  struct BatchGroup final : BatchGroupBase {
    std::shared_ptr<const core::OfflinePermuter<T>> permuter;
    std::vector<BatchItem<T>> items;
    void run(Executor& ex) override { ex.run_batch<T>(*this); }
    void refuse_all(Executor& ex, const Status& st) noexcept override {
      for (BatchItem<T>& item : items) {
        if (ex.metrics_) ex.metrics_->record_execute(0, false);
        ex.resolve_item<T>(item, st);
      }
    }
  };

  static bool expired(std::chrono::steady_clock::time_point deadline) noexcept {
    return deadline != kNoDeadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Gather an admitted request into its plan's group; flush the group
  /// when it reaches max_batch (the flusher thread owns the max_delay
  /// timer for partial groups). The item keeps its admission slot.
  template <class T>
  StatusOr<std::future<Status>> enqueue_batched(
      std::shared_ptr<const core::OfflinePermuter<T>> h, std::span<const T> a, std::span<T> b,
      SubmitOptions opts, std::uint64_t depth, std::uint64_t full_count) {
    const auto enqueued_at = std::chrono::steady_clock::now();
    std::promise<Status> promise;
    std::future<Status> fut = promise.get_future();
    const void* key = h.get();
    std::shared_ptr<BatchGroupBase> full;
    {
      std::lock_guard lock(batch_mutex_);
      std::shared_ptr<BatchGroupBase>& slot = gathering_[key];
      if (!slot) {
        auto group = std::make_shared<BatchGroup<T>>();
        group->permuter = h;
        group->flush_at = enqueued_at + config_.batch.max_delay;
        group->full_count = full_count;
        slot = std::move(group);
        // A fresh group may move the earliest flush deadline forward.
        batch_cv_.notify_all();
      }
      // The group under this key holds a shared_ptr to the permuter at
      // address `key`, so the address cannot be recycled for a
      // different (differently-typed) permuter while the group lives —
      // the static downcast is sound.
      auto* group = static_cast<BatchGroup<T>*>(slot.get());
      group->items.push_back(
          BatchItem<T>{a, b, std::move(opts), enqueued_at, std::move(promise)});
      if (group->items.size() >= group->full_count) {
        full = std::move(slot);
        gathering_.erase(key);
      }
    }
    if (full) dispatch_group(std::move(full));
    if (metrics_) metrics_->record_submit(depth);
    return fut;
  }

  /// Resolve one gathered item: flush its phases, fulfil its promise,
  /// release its admission slot. Exactly once per item.
  template <class T>
  void resolve_item(BatchItem<T>& item, const Status& st) noexcept {
    finalize_request(item.opts);
    try {
      item.promise.set_value(st);
    } catch (...) {
      // set_value only throws on a broken/satisfied promise; neither
      // can happen here, but a batch must never die on one item.
    }
    finish_one();
  }

  /// Execute one gathered batch on a pool worker: per-item dequeue
  /// checks, pooled scratch, one fused five-kernel sweep, per-item
  /// resolution. Mirrors run_request_body's semantics per item.
  template <class T>
  void run_batch(BatchGroup<T>& group) {
    const core::OfflinePermuter<T>& h = *group.permuter;
    const auto now = std::chrono::steady_clock::now();
    util::Stopwatch clock;

    // Dequeue-time checks, then scratch acquisition, per item. Items
    // that fail here resolve immediately; survivors become lanes.
    std::vector<core::BatchLane<T>> lanes;
    std::vector<std::size_t> lane_items;
    std::vector<util::PooledBuffer> scratches;
    lanes.reserve(group.items.size());
    lane_items.reserve(group.items.size());
    scratches.reserve(group.items.size());
    const std::uint64_t scratch_elems = h.scratch_elements();
    for (std::size_t i = 0; i < group.items.size(); ++i) {
      BatchItem<T>& item = group.items[i];
      if (item.opts.phases) {
        const auto waited = now - item.enqueued_at;
        item.opts.phases->add(
            Phase::kQueueWait,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
      }
      if (item.opts.cancel.cancelled()) {
        if (metrics_) metrics_->record_cancelled();
        resolve_item<T>(item, Status(StatusCode::kCancelled, "cancelled while queued"));
        continue;
      }
      if (expired(item.opts.deadline)) {
        if (metrics_) metrics_->record_deadline_exceeded();
        resolve_item<T>(item,
                        Status(StatusCode::kDeadlineExceeded, "queued past the request deadline"));
        continue;
      }
      try {
        FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
        FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                              StatusCode::kResourceExhausted,
                                              "scratch allocation failure");
        FaultInjector::instance().maybe_throw(fault_sites::kPoolExhausted,
                                              StatusCode::kResourceExhausted,
                                              "buffer pool exhausted");
        // Node-local scratch: see the placement note in
        // run_request_body — every lane's scratch comes off the
        // batch-running worker's node, so the whole fused batch stays
        // on one socket.
        util::PooledBuffer scratch = buffer_pool_->try_acquire(scratch_elems * sizeof(T));
        if (!scratch.valid()) {
          if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
          resolve_item<T>(item,
                          Status(StatusCode::kResourceExhausted, "buffer pool cap exceeded"));
          continue;
        }
        core::BatchLane<T> lane;
        lane.a = item.a;
        lane.b = item.b;
        lane.scratch = scratch.template as_span<T>(scratch_elems);
        lane.gate = [&item] {
          return !item.opts.cancel.cancelled() && !expired(item.opts.deadline);
        };
        lanes.push_back(std::move(lane));
        lane_items.push_back(i);
        scratches.push_back(std::move(scratch));
      } catch (const FaultInjectedError& e) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        resolve_item<T>(item, Status(e.code, e.what()));
      } catch (const std::bad_alloc&) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        resolve_item<T>(item,
                        Status(StatusCode::kResourceExhausted, "allocation failed during execute"));
      } catch (const std::exception& e) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        resolve_item<T>(item, Status(StatusCode::kUnavailable, e.what()));
      }
    }
    if (lanes.empty()) return;

    // One fused sweep. The observer fans each kernel's span into every
    // lane still active during that kernel (a lane gated off at the
    // boundary after kernel k was still active *during* k, and its
    // `active` flag is cleared only after the observation).
    const core::KernelObserver observer = [&lanes, &group, &lane_items](unsigned kernel,
                                                                        std::uint64_t ns) {
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        if (!lanes[l].active) continue;
        PhaseBreakdown* phases = group.items[lane_items[l]].opts.phases.get();
        if (phases) phases->add(phase_for_kernel(kernel), ns);
      }
    };

    Status sweep_error = Status::ok();
    try {
      core::scheduled_cpu_lean_batched<T>(pool_, *h.plan(), lanes, observer);
    } catch (const std::bad_alloc&) {
      sweep_error = Status(StatusCode::kResourceExhausted, "allocation failed during execute");
    } catch (const std::exception& e) {
      sweep_error = Status(StatusCode::kUnavailable, e.what());
    }

    const auto batch_ns = static_cast<std::uint64_t>(clock.nanos());
    if (metrics_) metrics_->record_batch(lanes.size());

    // Release every lane's scratch BEFORE resolving any promise: the
    // instant the last item resolves, wait_idle() (and the destructor,
    // and process exit behind it) may proceed, so nothing on this
    // thread may touch the pool after that point. The released blocks
    // are already hits for the next batch's acquires.
    for (auto& lane : lanes) lane.scratch = {};
    scratches.clear();

    for (std::size_t l = 0; l < lanes.size(); ++l) {
      BatchItem<T>& item = group.items[lane_items[l]];
      if (!sweep_error.is_ok()) {
        if (metrics_) metrics_->record_execute(batch_ns, false);
        resolve_item<T>(item, sweep_error);
      } else if (lanes[l].active) {
        if (metrics_) metrics_->record_execute(batch_ns, true);
        resolve_item<T>(item, Status::ok());
      } else {
        // Gated off between kernels: same taxonomy as the single path.
        if (metrics_) metrics_->record_execute(batch_ns, false);
        if (item.opts.cancel.cancelled()) {
          if (metrics_) metrics_->record_cancelled();
          resolve_item<T>(item, Status(StatusCode::kCancelled, "cancelled between kernel phases"));
        } else {
          if (metrics_) metrics_->record_deadline_exceeded();
          resolve_item<T>(item, Status(StatusCode::kDeadlineExceeded,
                                       "deadline exceeded between kernel phases"));
        }
      }
    }
  }

  /// Hand a complete group to the pool. Failure to enqueue refuses
  /// every item (typed, never thrown).
  void dispatch_group(std::shared_ptr<BatchGroupBase> group);

  /// The flusher thread body: sleeps until the earliest gather window
  /// expires, flushes due groups; on stop, flushes everything left.
  void flusher_loop();

  /// Signal and join the flusher (idempotent).
  void stop_flusher();

  /// The request task body: dequeue-time checks, then the gated
  /// execute. Runs on a pool worker; every outcome is a Status. Every
  /// exit path flushes the request's phase breakdown into the metrics
  /// (and the slow-request log) exactly once.
  template <class T>
  Status run_request(const core::OfflinePermuter<T>& h, std::span<const T> a, std::span<T> b,
                     const SubmitOptions& opts,
                     std::chrono::steady_clock::time_point enqueued_at) {
    Completion done(*this);
    PhaseBreakdown* phases = opts.phases.get();
    if (phases) {
      const auto waited = std::chrono::steady_clock::now() - enqueued_at;
      phases->add(Phase::kQueueWait,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
    }
    const Status st = run_request_body(h, a, b, opts, phases);
    finalize_request(opts);
    return st;
  }

  template <class T>
  Status run_request_body(const core::OfflinePermuter<T>& h, std::span<const T> a,
                          std::span<T> b, const SubmitOptions& opts, PhaseBreakdown* phases) {
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      return Status(StatusCode::kCancelled, "cancelled while queued");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "queued past the request deadline");
    }
    core::KernelObserver observer;
    if (phases) {
      observer = [phases](unsigned kernel, std::uint64_t ns) {
        phases->add(phase_for_kernel(kernel), ns);
      };
    }
    util::Stopwatch clock;
    try {
      FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
      FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                            StatusCode::kResourceExhausted,
                                            "scratch allocation failure");
      FaultInjector::instance().maybe_throw(fault_sites::kPoolExhausted,
                                            StatusCode::kResourceExhausted,
                                            "buffer pool exhausted");
      const std::uint64_t scratch_elems = h.scratch_elements();
      // NUMA placement: this body runs on a pool worker that (on
      // multi-node machines) is pinned to one node, and try_acquire
      // resolves to that node's free list — so the request's scratch,
      // the kernel chunks the permute fans out (the pool's per-node
      // queues prefer the submitting worker's node), and the pages
      // first-touch-bound on a miss all share the worker's socket.
      util::PooledBuffer scratch = buffer_pool_->try_acquire(scratch_elems * sizeof(T));
      if (!scratch.valid()) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        return Status(StatusCode::kResourceExhausted, "buffer pool cap exceeded");
      }
      const bool ran_to_completion = h.permute_timed(
          a, b, scratch.template as_span<T>(scratch_elems),
          [&opts] { return !opts.cancel.cancelled() && !expired(opts.deadline); }, observer);
      if (!ran_to_completion) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        if (opts.cancel.cancelled()) {
          if (metrics_) metrics_->record_cancelled();
          return Status(StatusCode::kCancelled, "cancelled between kernel phases");
        }
        if (metrics_) metrics_->record_deadline_exceeded();
        return Status(StatusCode::kDeadlineExceeded, "deadline exceeded between kernel phases");
      }
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
      return Status::ok();
    } catch (const FaultInjectedError& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(e.code, e.what());
    } catch (const std::bad_alloc&) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kResourceExhausted, "allocation failed during execute");
    } catch (const std::exception& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kUnavailable, e.what());
    }
  }

  /// The staged-program task body (mirrors run_request): queue-wait
  /// attribution, then the gated multi-stage execute; flushes the phase
  /// breakdown exactly once.
  template <class T>
  Status run_program(const std::vector<std::shared_ptr<const core::OfflinePermuter<T>>>& stages,
                     std::span<const T> a, std::span<T> b, const SubmitOptions& opts,
                     std::chrono::steady_clock::time_point enqueued_at) {
    Completion done(*this);
    PhaseBreakdown* phases = opts.phases.get();
    if (phases) {
      const auto waited = std::chrono::steady_clock::now() - enqueued_at;
      phases->add(Phase::kQueueWait,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(waited).count()));
    }
    const Status st = run_program_body(stages, a, b, opts, phases);
    finalize_request(opts);
    return st;
  }

  template <class T>
  Status run_program_body(
      const std::vector<std::shared_ptr<const core::OfflinePermuter<T>>>& stages,
      std::span<const T> a, std::span<T> b, const SubmitOptions& opts,
      PhaseBreakdown* phases) {
    if (opts.cancel.cancelled()) {
      if (metrics_) metrics_->record_cancelled();
      return Status(StatusCode::kCancelled, "cancelled while queued");
    }
    if (expired(opts.deadline)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "queued past the request deadline");
    }
    core::KernelObserver observer;
    if (phases) {
      observer = [phases](unsigned kernel, std::uint64_t ns) {
        phases->add(phase_for_kernel(kernel), ns);
      };
    }
    util::Stopwatch clock;
    try {
      FaultInjector::instance().maybe_stall(fault_sites::kExecutorStall);
      FaultInjector::instance().maybe_throw(fault_sites::kExecutorAlloc,
                                            StatusCode::kResourceExhausted,
                                            "scratch allocation failure");
      FaultInjector::instance().maybe_throw(fault_sites::kPoolExhausted,
                                            StatusCode::kResourceExhausted,
                                            "buffer pool exhausted");
      const std::uint64_t n = a.size();
      const std::size_t k = stages.size();
      // One scratch block sized for the hungriest stage; each stage
      // views exactly its own scratch_elements() of it.
      std::uint64_t scratch_elems = 0;
      for (const auto& stage : stages) {
        scratch_elems = std::max(scratch_elems, stage->scratch_elements());
      }
      util::PooledBuffer scratch = buffer_pool_->try_acquire(scratch_elems * sizeof(T));
      // Ping-pong intermediates: none for k = 1 (straight a -> b), one
      // for k = 2, two for k >= 3. RAII handles: every exit path below
      // — including the typed failures and the catch blocks — releases
      // them back to the pool.
      util::PooledBuffer ping =
          k >= 2 ? buffer_pool_->try_acquire(n * sizeof(T)) : util::PooledBuffer{};
      util::PooledBuffer pong =
          k >= 3 ? buffer_pool_->try_acquire(n * sizeof(T)) : util::PooledBuffer{};
      if (!scratch.valid() || (k >= 2 && !ping.valid()) || (k >= 3 && !pong.valid())) {
        if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
        return Status(StatusCode::kResourceExhausted, "buffer pool cap exceeded");
      }
      std::span<const T> src = a;
      for (std::size_t i = 0; i < k; ++i) {
        if (i > 0) {
          // The between-stage gate: a chain must not ride through its
          // deadline on the back of stages that already ran.
          if (opts.cancel.cancelled()) {
            if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
            if (metrics_) metrics_->record_cancelled();
            return Status(StatusCode::kCancelled, "cancelled between program stages");
          }
          if (expired(opts.deadline)) {
            if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
            if (metrics_) metrics_->record_deadline_exceeded();
            return Status(StatusCode::kDeadlineExceeded,
                          "deadline exceeded between program stages");
          }
        }
        FaultInjector::instance().maybe_throw(fault_sites::kProgramStage,
                                              StatusCode::kUnavailable,
                                              "injected program stage failure");
        const std::span<T> dst = (i + 1 == k)
                                     ? b
                                     : (i % 2 == 0 ? ping.template as_span<T>(n)
                                                   : pong.template as_span<T>(n));
        const bool ran = stages[i]->permute_timed(
            src, dst, scratch.template as_span<T>(stages[i]->scratch_elements()),
            [&opts] { return !opts.cancel.cancelled() && !expired(opts.deadline); }, observer);
        if (!ran) {
          if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
          if (opts.cancel.cancelled()) {
            if (metrics_) metrics_->record_cancelled();
            return Status(StatusCode::kCancelled, "cancelled between kernel phases");
          }
          if (metrics_) metrics_->record_deadline_exceeded();
          return Status(StatusCode::kDeadlineExceeded, "deadline exceeded between kernel phases");
        }
        src = dst;
      }
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), true);
      return Status::ok();
    } catch (const FaultInjectedError& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(e.code, e.what());
    } catch (const std::bad_alloc&) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kResourceExhausted, "allocation failed during execute");
    } catch (const std::exception& e) {
      if (metrics_) metrics_->record_execute(static_cast<std::uint64_t>(clock.nanos()), false);
      return Status(StatusCode::kUnavailable, e.what());
    }
  }

  /// Flush a request's phase breakdown into the per-phase histograms
  /// and, when armed and over threshold, the rate-limited slow log.
  void finalize_request(const SubmitOptions& opts) noexcept;

  /// Reserve an in-flight slot, honoring the admission policy. On
  /// success `depth_out` holds the in-flight count including this
  /// request (the queue-depth sample for metrics).
  Status admit(std::chrono::steady_clock::time_point deadline, std::uint64_t& depth_out);

  /// Legacy-path admission: block unconditionally for a slot.
  std::uint64_t admit_blocking();

  void finish_one() noexcept {
    std::lock_guard lock(idle_mutex_);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    // Wake both idle waiters and blocked admitters; admission waits on
    // the same condition variable.
    idle_cv_.notify_all();
  }

  [[nodiscard]] bool has_slot_locked() const noexcept {
    return config_.max_in_flight == 0 ||
           in_flight_.load(std::memory_order_acquire) < config_.max_in_flight;
  }

  util::ThreadPool& pool_;
  ServiceMetrics* metrics_;
  Config config_;
  util::BufferPool* buffer_pool_;
  std::atomic<std::uint64_t> in_flight_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;

  // Batching state (untouched when Config::batch is disabled).
  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  std::unordered_map<const void*, std::shared_ptr<BatchGroupBase>> gathering_;
  bool flusher_stop_ = false;  ///< guarded by batch_mutex_
  std::thread flusher_;
};

}  // namespace hmm::runtime
