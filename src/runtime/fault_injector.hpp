#pragma once
/// \file fault_injector.hpp
/// \brief Deterministic fault injection for chaos-testing the serving
///        layer.
///
/// The serving code carries named injection points (see `fault_sites`)
/// at exactly the places a production deployment fails: plan
/// compilation, request scratch allocation, worker execution, plan-file
/// reads. When the injector is **disarmed** (the default) every check
/// is one relaxed atomic load; arming happens either programmatically
/// (tests, `ScopedFaultInjection`) or through environment variables so
/// a stock binary can run a chaos drill:
///
///   HMM_FAULT_RATE=0.3 HMM_FAULT_SEED=7 HMM_FAULT_SITES=plan_cache.build
///       ./permd_replay ...   (one command line)
///
/// Decisions are *deterministic*: whether the k-th check of a site
/// fires depends only on (seed, site name, k), never on wall-clock or
/// thread scheduling, so a failing chaos run replays exactly with the
/// same seed. Each site keeps check/fired counters for assertions.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>

#include "runtime/status.hpp"

namespace hmm::runtime {

/// Injection point names. String constants (not an enum) so tools can
/// pass them through `--fault-sites` / HMM_FAULT_SITES unchanged.
namespace fault_sites {
inline constexpr std::string_view kPlanBuild = "plan_cache.build";        ///< throw in offline compile
inline constexpr std::string_view kPlanBuildStall = "plan_cache.build_stall";  ///< stall the builder
inline constexpr std::string_view kExecutorAlloc = "executor.alloc";      ///< scratch allocation failure
inline constexpr std::string_view kExecutorStall = "executor.stall";      ///< worker stall before execute
inline constexpr std::string_view kPlanRead = "plan_io.read";             ///< corrupt plan-file bytes
inline constexpr std::string_view kPoolExhausted = "pool.exhausted";      ///< buffer-pool pressure
inline constexpr std::string_view kProgramStage = "program.stage";        ///< fail between program stages
}  // namespace fault_sites

/// The exception an armed `maybe_throw` site raises. Carries the
/// StatusCode the failure should surface as, so the catch site at the
/// subsystem boundary maps it without string matching.
struct FaultInjectedError : std::runtime_error {
  FaultInjectedError(StatusCode status_code, const std::string& what)
      : std::runtime_error(what), code(status_code) {}
  StatusCode code;
};

class FaultInjector {
 public:
  struct Config {
    bool enabled = false;
    std::uint64_t seed = 0;
    double rate = 0.0;            ///< per-check fire probability in [0, 1]
    std::uint32_t stall_ms = 50;  ///< sleep length for stall sites
    /// Comma-separated site filter; empty = every site participates.
    std::string sites;
  };

  /// Process-wide instance. The first call parses HMM_FAULT_RATE /
  /// HMM_FAULT_SEED / HMM_FAULT_SITES / HMM_FAULT_STALL_MS (the
  /// injector arms iff HMM_FAULT_RATE parses > 0).
  static FaultInjector& instance();

  void configure(const Config& config);
  void disarm();

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Deterministically decide whether this check of `site` fires, and
  /// bump the site counters. Disarmed: always false, counters untouched.
  bool should_fire(std::string_view site);

  /// Throw FaultInjectedError{code} if this check fires.
  void maybe_throw(std::string_view site, StatusCode code, const char* what) {
    if (!armed()) return;
    maybe_throw_slow(site, code, what);
  }

  /// Sleep `stall_ms` if this check fires (models a stalled worker or
  /// a pathologically slow build, without touching any clocks when
  /// disarmed).
  void maybe_stall(std::string_view site) {
    if (!armed()) return;
    maybe_stall_slow(site);
  }

  /// Times `site` was evaluated / actually fired since the last
  /// configure()/disarm() (both reset the counters).
  [[nodiscard]] std::uint64_t checks(std::string_view site) const;
  [[nodiscard]] std::uint64_t fired(std::string_view site) const;
  [[nodiscard]] std::uint64_t total_fired() const;

 private:
  FaultInjector();

  struct SiteState {
    std::uint64_t checks = 0;
    std::uint64_t fired = 0;
  };

  void maybe_throw_slow(std::string_view site, StatusCode code, const char* what);
  void maybe_stall_slow(std::string_view site);
  [[nodiscard]] bool site_enabled_locked(std::string_view site) const;

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  Config config_;
  std::unordered_map<std::string, SiteState> sites_;
};

/// RAII arming for tests: configures on construction, disarms on
/// destruction so no fault leaks into the next test case.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector::Config config) {
    config.enabled = true;
    FaultInjector::instance().configure(config);
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace hmm::runtime
