#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation for serving-path requests.
///
/// A `CancelSource` owns the flag; each request carries a cheap,
/// copyable `CancelToken` view of it. Cancellation is *cooperative*:
/// firing the source never interrupts a running kernel, it is observed
/// at the request checkpoints — admission, dequeue, and the gates
/// between kernel phases (see Executor::try_submit). A cancelled
/// request resolves its future with `StatusCode::kCancelled`; it is
/// never silently dropped.
///
/// The default-constructed token is permanently "not cancelled", so
/// fire-and-forget callers pay a single null-pointer test per check.

#include <atomic>
#include <memory>

namespace hmm::runtime {

class CancelToken;

/// Owner side: create, hand out tokens, fire once. Thread-safe;
/// `request_cancel()` is idempotent.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() noexcept { flag_->store(true, std::memory_order_release); }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

  [[nodiscard]] CancelToken token() const noexcept;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Request side: observe-only view. Copyable, outlives the source
/// safely (shared ownership of the flag).
class CancelToken {
 public:
  /// A token that can never be cancelled.
  CancelToken() = default;

  [[nodiscard]] bool cancelled() const noexcept {
    return flag_ && flag_->load(std::memory_order_acquire);
  }

  /// True iff this token is connected to a CancelSource at all.
  [[nodiscard]] bool can_be_cancelled() const noexcept { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

inline CancelToken CancelSource::token() const noexcept { return CancelToken(flag_); }

}  // namespace hmm::runtime
