#include "runtime/distributed.hpp"

#include <string>

#include "util/check.hpp"

namespace hmm::runtime {

namespace {

/// Even split of `total` rows into `parts` contiguous bands; the first
/// `total % parts` bands take one extra row.
std::vector<BandRange> split(std::uint64_t total, std::uint32_t parts) {
  std::vector<BandRange> bands(parts);
  const std::uint64_t base = total / parts;
  const std::uint64_t rem = total % parts;
  std::uint64_t at = 0;
  for (std::uint32_t s = 0; s < parts; ++s) {
    const std::uint64_t take = base + (s < rem ? 1 : 0);
    bands[s] = BandRange{at, at + take};
    at += take;
  }
  return bands;
}

}  // namespace

StatusOr<BandPlan> BandPlan::build(std::uint64_t rows, std::uint64_t cols,
                                   std::uint32_t shards) {
  if (shards == 0 || shards > kMaxShards) {
    return Status(StatusCode::kInvalidArgument,
                  "band plan: shard count must be in [1, " +
                      std::to_string(kMaxShards) + "]");
  }
  if (rows == 0 || cols == 0) {
    return Status(StatusCode::kInvalidArgument, "band plan: empty matrix");
  }
  if (shards > rows) {
    return Status(StatusCode::kInvalidArgument,
                  "band plan: more shards (" + std::to_string(shards) +
                      ") than matrix rows (" + std::to_string(rows) + ")");
  }
  BandPlan plan;
  plan.rows_ = rows;
  plan.cols_ = cols;
  plan.row_bands_ = split(rows, shards);
  plan.col_bands_ = split(cols, shards);
  plan.round1_.reserve(static_cast<std::size_t>(shards) * shards);
  plan.round2_.reserve(static_cast<std::size_t>(shards) * shards);
  for (std::uint32_t src = 0; src < shards; ++src) {
    for (std::uint32_t dst = 0; dst < shards; ++dst) {
      // Round 1: the sender's view is its rows x cols row band; the
      // receiver owns columns col_band(dst) of it.
      plan.round1_.push_back(BlockTransfer{
          .src = src,
          .dst = dst,
          .row_begin = plan.row_bands_[src].begin,
          .row_end = plan.row_bands_[src].end,
          .col_begin = plan.col_bands_[dst].begin,
          .col_end = plan.col_bands_[dst].end,
      });
      // Round 2: the sender's view is its cols x rows slice of the
      // transposed matrix; the receiver owns columns row_band(dst).
      plan.round2_.push_back(BlockTransfer{
          .src = src,
          .dst = dst,
          .row_begin = plan.col_bands_[src].begin,
          .row_end = plan.col_bands_[src].end,
          .col_begin = plan.row_bands_[dst].begin,
          .col_end = plan.row_bands_[dst].end,
      });
    }
  }
  return plan;
}

StatusOr<BandPlanner> BandPlanner::build(const core::ScheduledPlan& plan,
                                         std::uint32_t shards) {
  auto bands = BandPlan::build(plan.shape().rows, plan.shape().cols, shards);
  if (!bands.ok()) return bands.status();
  return BandPlanner(plan, std::move(bands).value());
}

void extract_block_round1(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> y_local,
                          std::span<std::uint32_t> block) {
  const BlockTransfer& t = plan.block(1, src, dst);
  const std::uint64_t br = t.row_end - t.row_begin;
  const std::uint64_t bw = t.col_end - t.col_begin;
  HMM_CHECK(y_local.size() == plan.band_elements(src) && block.size() == br * bw);
  const std::uint64_t cols = plan.cols();
  for (std::uint64_t i = 0; i < br; ++i) {
    const std::uint32_t* row = y_local.data() + i * cols + t.col_begin;
    std::uint32_t* out = block.data() + i * bw;
    for (std::uint64_t j = 0; j < bw; ++j) out[j] = row[j];
  }
}

void scatter_block_round1(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> block,
                          std::span<std::uint32_t> z_local) {
  const BlockTransfer& t = plan.block(1, src, dst);
  const std::uint64_t br = t.row_end - t.row_begin;
  const std::uint64_t bw = t.col_end - t.col_begin;
  HMM_CHECK(block.size() == br * bw && z_local.size() == plan.transposed_elements(dst));
  // Transpose 1 is z[j * rows + i] = y[i * cols + j]; the receiver's
  // z_local row 0 is global column col_begin, so the block lands at
  // z_local[(j - col_begin) * rows + (row_begin + i)].
  const std::uint64_t rows = plan.rows();
  for (std::uint64_t i = 0; i < br; ++i) {
    const std::uint32_t* in = block.data() + i * bw;
    std::uint32_t* out = z_local.data() + t.row_begin + i;
    for (std::uint64_t j = 0; j < bw; ++j) out[j * rows] = in[j];
  }
}

void extract_block_round2(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> w_local,
                          std::span<std::uint32_t> block) {
  const BlockTransfer& t = plan.block(2, src, dst);
  const std::uint64_t br = t.row_end - t.row_begin;
  const std::uint64_t bw = t.col_end - t.col_begin;
  HMM_CHECK(w_local.size() == plan.transposed_elements(src) && block.size() == br * bw);
  const std::uint64_t rows = plan.rows();
  for (std::uint64_t i = 0; i < br; ++i) {
    const std::uint32_t* row = w_local.data() + i * rows + t.col_begin;
    std::uint32_t* out = block.data() + i * bw;
    for (std::uint64_t j = 0; j < bw; ++j) out[j] = row[j];
  }
}

void scatter_block_round2(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> block,
                          std::span<std::uint32_t> x_local) {
  const BlockTransfer& t = plan.block(2, src, dst);
  const std::uint64_t br = t.row_end - t.row_begin;
  const std::uint64_t bw = t.col_end - t.col_begin;
  HMM_CHECK(block.size() == br * bw && x_local.size() == plan.band_elements(dst));
  // Transpose 2 is x[i * cols + j] = w[j * rows + i]; the receiver's
  // x_local row 0 is global row col_begin (= row_band(dst).begin), so
  // the block lands at x_local[(i - col_begin) * cols + (row_begin + j)].
  const std::uint64_t cols = plan.cols();
  for (std::uint64_t i = 0; i < br; ++i) {
    const std::uint32_t* in = block.data() + i * bw;
    std::uint32_t* out = x_local.data() + t.row_begin + i;
    for (std::uint64_t j = 0; j < bw; ++j) out[j * cols] = in[j];
  }
}

}  // namespace hmm::runtime
