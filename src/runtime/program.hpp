#pragma once
/// \file program.hpp
/// \brief The PROGRAM subsystem: a validated op-chain IR over
///        registered permutations, a fusion compiler, and the staged
///        fallback contract.
///
/// The paper's optimality result is per-permutation: any offline
/// permutation costs three passes on the HMM. A *chain* of k
/// permutations served naively therefore costs 3k passes plus k wire
/// round trips — yet the composite P_k ∘ … ∘ P_1 is itself one
/// permutation worth exactly three passes. This subsystem closes that
/// gap: a client ships the chain once (EXECUTE_PROGRAM), the service
/// folds it into one composite `perm::Permutation` via the existing
/// `compose()`/`inverse()` algebra, and the PlanCache compiles a single
/// scheduled plan for the composite. Affine index-permutation pipelines
/// (FFT stages, shuffle networks, tensor relayouts) are exactly this
/// shape.
///
/// The IR is deliberately tiny: an op is an opcode plus one u64
/// argument. Two opcodes reference plans the client registered via
/// SUBMIT_PLAN (by fingerprint — the wire plan id *is* the registry
/// key); the rest are parametric generators from perm/generators.hpp,
/// so common pipeline stages need no registration round trip at all.
///
/// Validation is the hostile-input boundary. Every structural error —
/// unknown opcode, unregistered fingerprint, generator precondition
/// (power-of-two, perfect square), and above all a *size-mismatched
/// chain* — is rejected with a typed `kInvalidArgument` **before** any
/// `Permutation::compose()` runs, because compose's own size check is
/// an HMM_CHECK process abort (an invariant backstop, not an input
/// validator). A hostile program must never reach it.
///
/// Execution semantics (fixed, and what the fused/staged differential
/// tests pin down): ops apply in list order. Stage 1 moves the element
/// at index i to P1(i), stage 2 moves it on to P2(P1(i)), so the
/// composite is C = Pk ∘ … ∘ P1 — built here as a left fold
/// `C = stage.compose(C)`. An INVERSE(fp) stage applies the inverse of
/// the registered permutation, so PERMUTE(fp) followed by INVERSE(fp)
/// composes to the identity (served by the identity fast-path without
/// touching the plan tier).
///
/// The composite *program fingerprint* is an order-sensitive FNV-1a
/// over (n, opcode, arg) triples. It identifies the program — the
/// composite-permutation cache in RobustPermuteService keys off it so
/// repeated programs skip re-resolution and re-composition — while the
/// PlanCache keys the compiled plan off the composite permutation's
/// own content fingerprint (identical composites from different op
/// spellings share one compiled plan, and the cache's single-flight
/// holds for concurrent first submissions).

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "perm/permutation.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/status.hpp"

namespace hmm::runtime {

/// Program opcodes. Wire values are frozen by docs/PROTOCOL.md —
/// append, never renumber.
enum class ProgramOpCode : std::uint32_t {
  kPermute = 1,      ///< apply a registered plan; arg = plan fingerprint
  kInverse = 2,      ///< apply the inverse of a registered plan; arg = fingerprint
  kTranspose = 3,    ///< square transpose; arg = 0; n must be a perfect square
  kReverse = 4,      ///< full reversal (bit complement); arg = 0; n a power of two
  kShuffle = 5,      ///< perfect shuffle; arg = 0; n a power of two
  kUnshuffle = 6,    ///< inverse perfect shuffle; arg = 0; n a power of two
  kBitReversal = 7,  ///< FFT bit-reversal; arg = 0; n a power of two
  kRotate = 8,       ///< cyclic rotation; arg = shift (taken mod n)
};

/// Snake-ish label for logs and the permd_client op vocabulary.
[[nodiscard]] std::string_view to_string(ProgramOpCode op) noexcept;

/// True iff `op` is a known opcode value (the decode-time gate; an
/// unknown opcode is a typed rejection, never UB on a switch).
[[nodiscard]] bool is_known_opcode(std::uint32_t op) noexcept;

/// One program step: an opcode plus its argument. For the plan-
/// referencing ops the argument is the registered mapping's
/// fingerprint; for kRotate it is the shift; the remaining generator
/// ops require arg == 0 (rejected otherwise, so the field can gain
/// meaning later without silently changing old traffic).
struct ProgramOp {
  ProgramOpCode op = ProgramOpCode::kPermute;
  std::uint64_t arg = 0;

  friend constexpr bool operator==(const ProgramOp&, const ProgramOp&) = default;
};

/// Op-count cap, shared by the wire decoder and the validator: deep
/// chains fuse to one permutation anyway, so the cap bounds hostile
/// resolution cost, not expressiveness.
inline constexpr std::uint32_t kMaxProgramOps = 16;

/// An op chain over n-element arrays. `ops` apply in order.
struct Program {
  std::vector<ProgramOp> ops;
};

/// Order-sensitive program identity: FNV-1a over (n, then each op's
/// opcode + arg in chain order). Two programs with the same ops in a
/// different order hash differently (composition does not commute);
/// the same ops at a different n hash differently too.
[[nodiscard]] Fingerprint program_fingerprint(std::span<const ProgramOp> ops,
                                              std::uint64_t n) noexcept;

/// Looks up a registered permutation by mapping fingerprint; nullptr =
/// unknown. The net server binds this to its SUBMIT_PLAN registry;
/// tests bind lambdas.
using PlanResolver =
    std::function<std::shared_ptr<const perm::Permutation>(std::uint64_t fingerprint)>;

/// A validated program: every op resolved to a concrete n-element
/// permutation (INVERSE ops already inverted, generator ops already
/// generated), ready to compose or to run staged.
struct ResolvedProgram {
  std::vector<std::shared_ptr<const perm::Permutation>> stages;
  Fingerprint fingerprint;  ///< program_fingerprint(ops, n)
};

/// Validate and resolve an op chain against `n`-element payloads.
/// Rejects with a typed kInvalidArgument — never an abort — on:
///  - empty chain, or more than kMaxProgramOps ops;
///  - unknown opcodes or nonzero args on zero-arg generator ops;
///  - unregistered plan fingerprints (PERMUTE/INVERSE);
///  - generator preconditions (power-of-two n for shuffle/unshuffle/
///    bit-reversal/reverse, perfect-square n for transpose);
///  - any referenced plan whose size differs from n (the mismatched-n
///    gate that keeps hostile chains away from compose()'s HMM_CHECK).
/// kResourceExhausted on allocation failure while generating.
[[nodiscard]] StatusOr<ResolvedProgram> resolve_program(const Program& program,
                                                        std::uint64_t n,
                                                        const PlanResolver& resolver);

/// Fuse a resolved chain into its composite permutation
/// (C = stage_k ∘ … ∘ stage_1, so C moves index i wherever the staged
/// run would). Stages must all share one size — guaranteed by
/// resolve_program, re-verified here (typed, not aborted) because this
/// is the last gate before compose(). kResourceExhausted on allocation
/// failure.
[[nodiscard]] StatusOr<perm::Permutation> fuse_program(const ResolvedProgram& resolved);

}  // namespace hmm::runtime
