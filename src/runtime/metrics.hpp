#pragma once
/// \file metrics.hpp
/// \brief Lock-cheap service counters for the permutation runtime.
///
/// Every hot-path record is one or two relaxed atomic RMWs — no mutex,
/// no allocation — so metrics can stay on in production. Latencies go
/// into a fixed 64-bucket log2 histogram (bucket = floor(log2(ns))),
/// which answers p50/p95/max questions to within a factor of two; that
/// resolution is plenty for the cold-compile vs warm-hit gap the cache
/// exists to create (roughly three orders of magnitude).
///
/// `snapshot()` reads everything into a plain struct; `to_json()` and
/// `to_table()` render that snapshot (the table via util/table.hpp so
/// the replay driver reports look like the bench harnesses).

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "runtime/phase.hpp"
#include "util/table.hpp"

namespace hmm::runtime {

/// Concurrent log2-bucketed histogram of nonnegative values (ns).
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;

  void record(std::uint64_t value) noexcept;

  /// Approximate q-quantile (q in [0,1]) from the bucket counts: the
  /// geometric midpoint of the bucket holding the q-th sample. Exact
  /// min/max are tracked separately. Returns 0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }

  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time digest of one per-phase latency histogram.
struct PhaseStats {
  std::uint64_t count = 0;
  std::uint64_t ns_sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
};

/// Point-in-time copy of every counter (plain integers, safe to format).
struct MetricsSnapshot {
  // Plan cache.
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes_evicted = 0;
  std::uint64_t plan_builds = 0;
  std::uint64_t plan_build_ns_total = 0;
  std::uint64_t plan_build_ns_max = 0;
  // Executor. `completed` and `failed` are disjoint: a request counts
  // in exactly one of them (completed = executed and succeeded), so
  // completed + failed = requests that ran to an outcome.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t queue_high_water = 0;
  std::uint64_t execute_count = 0;
  std::uint64_t execute_ns_sum = 0;
  std::uint64_t execute_ns_p50 = 0;
  std::uint64_t execute_ns_p95 = 0;
  std::uint64_t execute_ns_max = 0;
  // Robustness (admission / deadlines / degradation — see service.hpp).
  std::uint64_t rejected = 0;            ///< refused at admission (queue full)
  std::uint64_t cancelled = 0;           ///< resolved kCancelled at any stage
  std::uint64_t deadline_exceeded = 0;   ///< resolved kDeadlineExceeded at any stage
  std::uint64_t degraded_executions = 0; ///< served via the conventional fallback
  std::uint64_t build_retries = 0;       ///< transient plan-build failures retried
  // Same-plan batching (see Executor::BatchOptions). `batches_executed`
  // counts fused kernel sweeps; `batched_requests` counts the requests
  // those sweeps carried, so batched_requests / batches_executed is the
  // realized amortization factor.
  std::uint64_t batches_executed = 0;
  std::uint64_t batched_requests = 0;
  std::uint64_t batch_size_p50 = 0;
  std::uint64_t batch_size_max = 0;
  // Programs (see runtime/program.hpp). `programs_executed` counts every
  // accepted EXECUTE_PROGRAM/submit_program; each is additionally one of
  // fused (one composite plan), staged (back-to-back stages), or
  // identity (composite folded to P(i) = i; echoed without kernels).
  std::uint64_t programs_executed = 0;
  std::uint64_t programs_fused = 0;
  std::uint64_t programs_staged = 0;
  std::uint64_t programs_identity = 0;
  std::uint64_t program_stages_p50 = 0;
  std::uint64_t program_stages_max = 0;
  // Execution environment: which kernel tier the dispatcher selected
  // (scalar/avx2/avx512 — see cpu/dispatch.hpp) and the machine's NUMA
  // node count, so bench rows and production stats are attributable to
  // the code path that actually ran.
  std::string kernel_variant;
  std::uint32_t numa_nodes = 1;
  // Process-wide scratch buffer pool (util::BufferPool::global()).
  // Executors configured with a private pool are not reflected here.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_releases = 0;
  std::uint64_t pool_trims = 0;
  std::uint64_t pool_acquire_failures = 0;
  std::uint64_t pool_outstanding_bytes = 0;
  std::uint64_t pool_pooled_bytes = 0;
  // Per-phase latency digests, indexed by runtime::Phase.
  std::array<PhaseStats, kPhaseCount> phases{};

  [[nodiscard]] double hit_rate() const noexcept {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  [[nodiscard]] const PhaseStats& phase(Phase p) const noexcept {
    return phases[static_cast<std::size_t>(p)];
  }

  /// One-line-per-field JSON object (stable key order, no dependencies).
  /// Phase digests live under a "phases" key — additive relative to the
  /// pre-phase schema, so STATS consumers keep working.
  [[nodiscard]] std::string to_json() const;

  /// Two-column name/value table for terminal reports.
  [[nodiscard]] util::Table to_table() const;

  /// Prometheus text exposition (version 0.0.4): counters as
  /// `hmm_*_total`, latency digests as summaries with a `phase` label.
  /// Written by `permd_serve --prom-file` for textfile-collector style
  /// scraping and dumped by `permd_replay --prom-file`.
  [[nodiscard]] std::string to_prometheus() const;
};

/// Shared counters the cache and executor write into. All methods are
/// thread-safe; relaxed ordering is deliberate (counters are advisory,
/// never synchronization).
class ServiceMetrics {
 public:
  void record_lookup(bool hit) noexcept {
    lookups_.fetch_add(1, std::memory_order_relaxed);
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
  }

  void record_eviction(std::uint64_t bytes) noexcept {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    bytes_evicted_.fetch_add(bytes, std::memory_order_relaxed);
  }

  void record_plan_build(std::uint64_t ns) noexcept;

  void record_submit(std::uint64_t queue_depth) noexcept;

  /// One executed request reached an outcome. `completed` and `failed`
  /// are disjoint — a failure must not inflate the success counter.
  void record_execute(std::uint64_t ns, bool ok) noexcept {
    (ok ? completed_ : failed_).fetch_add(1, std::memory_order_relaxed);
    execute_ns_.record(ns);
  }

  /// One sample for a single phase (e.g. the server's serialize span).
  void record_phase(Phase phase, std::uint64_t ns) noexcept {
    phase_ns_[static_cast<std::size_t>(phase)].record(ns);
  }

  /// Flush a finished request's breakdown: every phase the request
  /// touched contributes one sample (zero-ns samples included — a
  /// measured-but-instant phase still proves the timer is wired).
  void record_phases(const PhaseBreakdown& breakdown) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      if (breakdown.touched(static_cast<Phase>(i))) phase_ns_[i].record(breakdown.ns[i]);
    }
  }

  /// One fused batch sweep executed, carrying `size` requests.
  void record_batch(std::uint64_t size) noexcept {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_requests_.fetch_add(size, std::memory_order_relaxed);
    batch_size_.record(size);
  }

  /// How an accepted program was served (see runtime/program.hpp).
  enum class ProgramPath { kFused, kStaged, kIdentity };

  /// One program accepted for execution: its stage count (the chain
  /// depth) and the path the fusion decision took.
  void record_program(std::uint64_t stages, ProgramPath path) noexcept {
    programs_executed_.fetch_add(1, std::memory_order_relaxed);
    switch (path) {
      case ProgramPath::kFused:
        programs_fused_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ProgramPath::kStaged:
        programs_staged_.fetch_add(1, std::memory_order_relaxed);
        break;
      case ProgramPath::kIdentity:
        programs_identity_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    program_stages_.record(stages);
  }

  void record_rejected() noexcept { rejected_.fetch_add(1, std::memory_order_relaxed); }
  void record_cancelled() noexcept { cancelled_.fetch_add(1, std::memory_order_relaxed); }
  void record_deadline_exceeded() noexcept {
    deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_degraded() noexcept { degraded_.fetch_add(1, std::memory_order_relaxed); }
  void record_build_retry() noexcept { build_retries_.fetch_add(1, std::memory_order_relaxed); }

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Cheap read of the worst plan-build latency seen so far (one relaxed
  /// load). The deadline heuristic in RobustPermuteService consults this
  /// per-request; `snapshot()` is too heavy for that path now that it
  /// digests every per-phase histogram.
  [[nodiscard]] std::uint64_t plan_build_ns_max() const noexcept {
    return plan_build_ns_max_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_evicted_{0};
  std::atomic<std::uint64_t> plan_builds_{0};
  std::atomic<std::uint64_t> plan_build_ns_total_{0};
  std::atomic<std::uint64_t> plan_build_ns_max_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> queue_high_water_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_exceeded_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> build_retries_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_requests_{0};
  std::atomic<std::uint64_t> programs_executed_{0};
  std::atomic<std::uint64_t> programs_fused_{0};
  std::atomic<std::uint64_t> programs_staged_{0};
  std::atomic<std::uint64_t> programs_identity_{0};
  LogHistogram program_stages_;
  LogHistogram batch_size_;
  LogHistogram execute_ns_;
  std::array<LogHistogram, kPhaseCount> phase_ns_;
};

}  // namespace hmm::runtime
