#pragma once
/// \file phase.hpp
/// \brief The serving-path phase taxonomy and per-request span
///        collection.
///
/// The paper's whole argument is that total permutation time decomposes
/// into distinct memory-access phases (three row-wise passes + two
/// transposes for the scheduled algorithm vs the distribution-dependent
/// single kernel of the conventional one). The serving layer inherits
/// that structure and adds its own: a request's wall time is admission
/// wait + queue wait + plan-cache lookup (+ build on a miss) + the
/// kernel passes + response serialization. This header names those
/// phases once, so the executor, plan cache, server, metrics, and the
/// Prometheus exposition all agree on the taxonomy.
///
/// `PhaseBreakdown` is the per-request collector: plain (non-atomic)
/// accumulators filled in by whichever thread owns the request at each
/// stage (submitter -> pool worker is a happens-before handoff through
/// the task queue). At request end the executor flushes the breakdown
/// into the per-phase `LogHistogram`s in `ServiceMetrics` and, when the
/// slow-request log is armed, prints it for outliers.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hmm::runtime {

/// Where a request's nanoseconds went. Order is presentation order in
/// tables / JSON / Prometheus; labels are frozen once exported.
enum class Phase : std::uint8_t {
  kAdmissionWait = 0,   ///< blocked at the executor's in-flight bound
  kQueueWait,           ///< enqueue -> dequeue on the pool
  kPlanLookup,          ///< plan-cache index probe (hit or miss)
  kPlanBuild,           ///< offline plan compile (or wait on the builder)
  kKernelRowPass1,      ///< scheduled kernel 1: row-wise pass
  kKernelTranspose1,    ///< scheduled kernel 2: blocked transpose
  kKernelRowPass2,      ///< scheduled kernel 3: row-wise pass
  kKernelTranspose2,    ///< scheduled kernel 4: blocked transpose
  kKernelRowPass3,      ///< scheduled kernel 5: row-wise pass
  kKernelConventional,  ///< single conventional kernel (chosen or degraded)
  kSerialize,           ///< response encode + socket write
  kProgramCompile,      ///< program resolve + fuse (compose/inverse/generators)
};

inline constexpr std::size_t kPhaseCount = 12;

/// Snake-case label, stable across JSON keys, table rows, and the
/// Prometheus `phase="..."` label. Frozen once exported.
[[nodiscard]] std::string_view to_string(Phase p) noexcept;

/// All phases in presentation order (for renderers and scrapers).
[[nodiscard]] const std::array<Phase, kPhaseCount>& all_phases() noexcept;

/// Map a kernel index reported by `core::OfflinePermuter::permute_timed`
/// (0..4 = the scheduled algorithm's five launches, `core::
/// kConventionalKernel` = the single conventional kernel) to its Phase.
[[nodiscard]] Phase phase_for_kernel(unsigned kernel) noexcept;

/// Per-request phase accumulator. Not thread-safe by design: exactly
/// one thread owns the request at any stage of its lifecycle.
struct PhaseBreakdown {
  std::array<std::uint64_t, kPhaseCount> ns{};

  void add(Phase p, std::uint64_t nanos) noexcept {
    ns[static_cast<std::size_t>(p)] += nanos;
    touched_ |= 1u << static_cast<std::uint32_t>(p);
  }

  /// True iff the phase was entered at all (a 0 ns sample still counts:
  /// "measured and instant" is different from "never wired up").
  [[nodiscard]] bool touched(Phase p) const noexcept {
    return (touched_ & (1u << static_cast<std::uint32_t>(p))) != 0;
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    std::uint64_t total = 0;
    for (std::uint64_t v : ns) total += v;
    return total;
  }

 private:
  std::uint32_t touched_ = 0;
};

/// One scraped row of the `"phases"` object in
/// `MetricsSnapshot::to_json()` output.
struct PhaseScrape {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t ns_sum = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t max = 0;
};

/// Extract the per-phase stats from a ServiceMetrics JSON snapshot (the
/// exact grammar `MetricsSnapshot::to_json()` emits — this is a
/// targeted scanner, not a general JSON parser). Phases absent from the
/// input are absent from the result; a payload with no "phases" object
/// yields an empty vector. Shared by permd_client and permd_loadgen so
/// the server-side breakdown can be rendered from the STATS wire
/// response without a JSON dependency.
[[nodiscard]] std::vector<PhaseScrape> scrape_phases_json(std::string_view metrics_json);

}  // namespace hmm::runtime
