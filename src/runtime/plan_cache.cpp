#include "runtime/plan_cache.hpp"

namespace hmm::runtime {

bool PlanCache::contains(Fingerprint fp) const {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(fp.value);
  return it != slots_.end() && it->second.completed;
}

std::uint64_t PlanCache::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::size_t PlanCache::entries() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  // Pending slots are dropped too: their waiters hold shared_future
  // copies (unaffected), and the builder's commit()/erase() carries the
  // slot generation, so the stale build cannot resurrect the key.
  slots_.clear();
  lru_.clear();
  bytes_ = 0;
}

void PlanCache::touch_locked(Slot& slot) {
  if (!slot.completed) return;  // pending entries are not in the LRU list yet
  lru_.splice(lru_.begin(), lru_, slot.lru_it);
}

std::uint64_t PlanCache::insert_pending_locked(
    std::uint64_t key, std::shared_future<std::shared_ptr<EntryBase>> ready) {
  Slot slot;
  slot.ready = std::move(ready);
  slot.generation = next_generation_++;
  const std::uint64_t generation = slot.generation;
  slots_.emplace(key, std::move(slot));
  return generation;
}

void PlanCache::evict_to_fit_locked() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = slots_.find(victim);
    HMM_CHECK(it != slots_.end() && it->second.completed);
    bytes_ -= it->second.bytes;
    if (metrics_) metrics_->record_eviction(it->second.bytes);
    slots_.erase(it);
  }
}

void PlanCache::commit(std::uint64_t key, std::uint64_t generation,
                       std::shared_ptr<EntryBase> entry, std::uint64_t entry_bytes) {
  (void)entry;  // kept alive by the slot's shared_future state
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  // Slot gone, or re-created by a fresh acquire after clear() dropped
  // ours: the entry is returned to the caller but not retained.
  if (it == slots_.end() || it->second.generation != generation) return;
  it->second.completed = true;
  it->second.bytes = entry_bytes;
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  bytes_ += entry_bytes;
  evict_to_fit_locked();
}

void PlanCache::erase(std::uint64_t key, std::uint64_t generation) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.generation != generation) return;
  if (it->second.completed) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
  }
  slots_.erase(it);
}

}  // namespace hmm::runtime
