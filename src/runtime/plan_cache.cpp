#include "runtime/plan_cache.hpp"

namespace hmm::runtime {

bool PlanCache::contains(Fingerprint fp) const {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(fp.value);
  return it != slots_.end() && it->second.completed;
}

std::uint64_t PlanCache::bytes() const {
  std::lock_guard lock(mutex_);
  return bytes_;
}

std::size_t PlanCache::entries() const {
  std::lock_guard lock(mutex_);
  return slots_.size();
}

void PlanCache::clear() {
  std::lock_guard lock(mutex_);
  for (auto it = slots_.begin(); it != slots_.end();) {
    if (it->second.completed) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = slots_.erase(it);
    } else {
      ++it;  // in-flight build: left pending; its commit() completes it normally
    }
  }
}

void PlanCache::touch_locked(Slot& slot) {
  if (!slot.completed) return;  // pending entries are not in the LRU list yet
  lru_.splice(lru_.begin(), lru_, slot.lru_it);
}

void PlanCache::insert_pending_locked(std::uint64_t key,
                                      std::shared_future<std::shared_ptr<EntryBase>> ready) {
  Slot slot;
  slot.ready = std::move(ready);
  slots_.emplace(key, std::move(slot));
}

void PlanCache::evict_to_fit_locked() {
  while (bytes_ > config_.max_bytes && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = slots_.find(victim);
    HMM_CHECK(it != slots_.end() && it->second.completed);
    bytes_ -= it->second.bytes;
    if (metrics_) metrics_->record_eviction(it->second.bytes);
    slots_.erase(it);
  }
}

void PlanCache::commit(std::uint64_t key, std::shared_ptr<EntryBase> entry,
                       std::uint64_t entry_bytes) {
  (void)entry;  // kept alive by the slot's shared_future state
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;  // raced with clear(); entry is returned but not retained
  it->second.completed = true;
  it->second.bytes = entry_bytes;
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  bytes_ += entry_bytes;
  evict_to_fit_locked();
}

void PlanCache::erase(std::uint64_t key) {
  std::lock_guard lock(mutex_);
  auto it = slots_.find(key);
  if (it == slots_.end()) return;
  if (it->second.completed) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
  }
  slots_.erase(it);
}

}  // namespace hmm::runtime
