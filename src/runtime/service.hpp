#pragma once
/// \file service.hpp
/// \brief `RobustPermuteService` — the hardened serving facade, and the
///        degradation ladder it implements.
///
/// The paper proves the scheduled algorithm (König coloring + row
/// schedules) optimal, but it also leaves us a safety net: the
/// conventional D-/S-designated algorithms (Section IV) compute the
/// *same* permutation with no offline phase at all, just more memory
/// rounds. The service exploits exactly that structure as a
/// degradation ladder:
///
///   1. **Scheduled / cached** — PlanCache hit or successful build;
///      the optimal path.
///   2. **Retry** — transient build failures (kPlanBuildFailed,
///      kUnavailable, kResourceExhausted) are retried up to
///      `max_build_retries` times with deterministic jittered
///      exponential backoff.
///   3. **Conventional fallback** — if retries are exhausted, or the
///      request's deadline budget is too tight to risk an offline
///      build, the request is served by the D-designated conventional
///      permuter (correct, slower, zero offline phase) and counted in
///      `degraded_executions`.
///   4. **Reject** — non-transient errors (kInvalidArgument), expired
///      deadlines, cancellation, and admission-bound rejections fail
///      fast with a typed Status. The process never aborts on a
///      request-level failure.
///
/// The facade owns the metrics + cache + executor stack; `submit`
/// validates the request, resolves the ladder, and hands the request
/// to the executor with its deadline and cancel token attached.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/permuter.hpp"
#include "core/plan_io.hpp"
#include "runtime/cancel.hpp"
#include "runtime/executor.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/program.hpp"
#include "runtime/status.hpp"
#include "util/thread_pool.hpp"

namespace hmm::runtime {

/// Per-request controls. Defaults: no deadline, not cancellable, let
/// the permuter pick its strategy.
struct RequestOptions {
  std::chrono::steady_clock::time_point deadline = Executor::kNoDeadline;
  CancelToken cancel;
  core::Strategy strategy = core::Strategy::kAuto;
  /// Correlation id echoed in the slow-request log (the net server
  /// forwards the HMMP request_id). 0 = unnamed.
  std::uint64_t trace_id = 0;
};

/// Program-request controls: everything a plain request has, plus the
/// fusion override.
struct ProgramRequestOptions : RequestOptions {
  /// Force the staged fallback — run the chain back-to-back through
  /// pooled intermediates instead of compiling one composite plan.
  /// Wire flag bit0 maps here; differential tests and chaos drills
  /// (the `program.stage` fault site only exists on this path) are the
  /// other users. Default: let the service fuse.
  bool force_staged = false;
};

class RobustPermuteService {
 public:
  struct Config {
    model::MachineParams machine = model::MachineParams::gtx680();
    PlanCache::Config cache;
    Executor::Config executor;
    /// Additional attempts after the first failed plan build (0 = fail
    /// straight through to the fallback / the caller).
    int max_build_retries = 2;
    /// Backoff before retry k is `base << k` plus a deterministic
    /// jitter of up to the same amount (seeded: chaos runs replay).
    std::chrono::microseconds retry_backoff_base{200};
    std::uint64_t retry_jitter_seed = 0x5eed5eed5eed5eedull;
    /// Serve via the conventional D-designated permuter when the
    /// scheduled plan is unavailable. Off = surface the build error.
    bool allow_degraded = true;
    /// LRU bound on memoized composite permutations (program
    /// fingerprint -> fused mapping). This caches the *composition*
    /// (O(k*n) table walks); the compiled composite plan is separately
    /// content-addressed by PlanCache. 0 disables memoization.
    std::uint64_t max_cached_composites = 64;
  };

  explicit RobustPermuteService(util::ThreadPool& pool)
      : RobustPermuteService(pool, Config{}) {}
  RobustPermuteService(util::ThreadPool& pool, Config config)
      : pool_(pool),
        config_(config),
        cache_(config.cache, &metrics_),
        executor_(pool, &metrics_, config.executor) {}

  /// Validate, resolve the degradation ladder, submit. A synchronous
  /// error Status means the request was refused and never executed; an
  /// OK result carries the future with the request outcome. Arrays must
  /// stay alive and un-mutated until that future resolves.
  template <class T>
  StatusOr<std::future<Status>> submit(const perm::Permutation& p, std::span<const T> a,
                                       std::span<T> b, RequestOptions opts = {}) {
    if (p.size() == 0) return Status(StatusCode::kInvalidArgument, "empty permutation");
    if (a.size() != p.size() || b.size() != p.size()) {
      return Status(StatusCode::kInvalidArgument, "array sizes do not match the permutation");
    }
    if (a.data() == b.data()) {
      return Status(StatusCode::kInvalidArgument, "in-place permutation is not supported");
    }
    if (opts.cancel.cancelled()) {
      metrics_.record_cancelled();
      return Status(StatusCode::kCancelled, "cancelled before submission");
    }
    if (deadline_expired(opts.deadline)) {
      metrics_.record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "deadline already expired at submission");
    }

    // The request's phase breakdown starts here: the plan tier fills
    // in lookup/build time, the executor adds admission/queue/kernel
    // spans and owns the final flush. Requests refused before reaching
    // the executor flush whatever they accumulated on the way out.
    auto phases = std::make_shared<PhaseBreakdown>();
    std::shared_ptr<const core::OfflinePermuter<T>> permuter;
    bool degraded = false;
    if (should_skip_build_for_deadline<T>(p, opts)) {
      // Deadline pressure: an offline build would likely eat the whole
      // budget; go straight to the conventional tier.
      degraded = true;
    } else {
      StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> acquired =
          acquire_with_retry<T>(p, opts, phases.get());
      if (acquired.ok()) {
        permuter = std::move(acquired).value();
      } else if (config_.allow_degraded && is_transient(acquired.status().code())) {
        degraded = true;
      } else {
        metrics_.record_phases(*phases);
        return acquired.status();
      }
    }

    if (degraded) {
      // The fallback's (cheap) construction is still plan-build time:
      // the degraded tier trades the offline phase for extra memory
      // rounds, and the breakdown should show that trade.
      util::Stopwatch build_clock;
      StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> fallback =
          build_conventional<T>(p);
      phases->add(Phase::kPlanBuild, static_cast<std::uint64_t>(build_clock.nanos()));
      if (!fallback.ok()) {
        metrics_.record_phases(*phases);
        return fallback.status();
      }
      permuter = std::move(fallback).value();
    }

    Executor::SubmitOptions submit_opts;
    submit_opts.deadline = opts.deadline;
    submit_opts.cancel = opts.cancel;
    submit_opts.trace_id = opts.trace_id;
    submit_opts.phases = std::move(phases);
    StatusOr<std::future<Status>> submitted =
        executor_.try_submit<T>(std::move(permuter), a, b, std::move(submit_opts));
    if (submitted.ok() && degraded) metrics_.record_degraded();
    return submitted;
  }

  /// Execute a permutation *program* — a validated op chain over
  /// registered plans and parametric generators (see
  /// runtime/program.hpp) — as one request. The compiler resolves and
  /// fuses the chain into a single composite permutation (attributed to
  /// the `program_compile` phase and cached under the program's
  /// order-sensitive fingerprint, so repeats skip both resolution and
  /// composition; the composite *plan* is additionally content-addressed
  /// by PlanCache, which single-flights concurrent first builds). The
  /// fused composite then rides the normal degradation ladder. Two
  /// shortcuts bracket it:
  ///
  ///  - **Identity**: a chain that folds to P(i) = i (e.g. P then
  ///    INVERSE P) is answered with one memcpy — no plan, no kernels —
  ///    and counted in `programs_identity`.
  ///  - **Staged** (`opts.force_staged`): each stage acquires its own
  ///    permuter and the executor runs them back-to-back through pooled
  ///    ping-pong intermediates (`Executor::submit_program`). Bitwise
  ///    identical to the fused path; used by differential tests, chaos
  ///    drills, and wire flag bit0.
  ///
  /// All validation failures (unknown opcode, unregistered fingerprint,
  /// stage-size mismatch, generator preconditions) surface as typed
  /// kInvalidArgument *before* any composition runs — a hostile program
  /// can never reach an HMM_CHECK abort.
  template <class T>
  StatusOr<std::future<Status>> submit_program(const Program& program,
                                               const PlanResolver& resolver,
                                               std::span<const T> a, std::span<T> b,
                                               ProgramRequestOptions opts = {}) {
    if (a.size() == 0) return Status(StatusCode::kInvalidArgument, "empty program input");
    if (a.size() != b.size()) {
      return Status(StatusCode::kInvalidArgument, "program input/output sizes differ");
    }
    if (a.data() == b.data()) {
      return Status(StatusCode::kInvalidArgument, "in-place permutation is not supported");
    }
    if (opts.cancel.cancelled()) {
      metrics_.record_cancelled();
      return Status(StatusCode::kCancelled, "cancelled before submission");
    }
    if (deadline_expired(opts.deadline)) {
      metrics_.record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "deadline already expired at submission");
    }

    const std::uint64_t n = a.size();
    const std::uint64_t chain_depth = program.ops.size();
    auto phases = std::make_shared<PhaseBreakdown>();

    // --- Compile: resolve + fuse, under the program_compile phase. ---
    util::Stopwatch compile_clock;
    const Fingerprint fp = program_fingerprint(program.ops, n);
    std::shared_ptr<const perm::Permutation> composite;
    ResolvedProgram resolved;
    if (!opts.force_staged) composite = cached_composite(fp.value);
    if (!composite) {
      StatusOr<ResolvedProgram> r = resolve_program(program, n, resolver);
      if (!r.ok()) {
        phases->add(Phase::kProgramCompile, static_cast<std::uint64_t>(compile_clock.nanos()));
        metrics_.record_phases(*phases);
        return r.status();
      }
      resolved = std::move(r).value();
      if (!opts.force_staged) {
        StatusOr<perm::Permutation> fused = fuse_program(resolved);
        if (!fused.ok()) {
          phases->add(Phase::kProgramCompile, static_cast<std::uint64_t>(compile_clock.nanos()));
          metrics_.record_phases(*phases);
          return fused.status();
        }
        composite = std::make_shared<const perm::Permutation>(std::move(fused).value());
        cache_composite(fp.value, composite);
      }
    }
    phases->add(Phase::kProgramCompile, static_cast<std::uint64_t>(compile_clock.nanos()));

    // --- Staged fallback: per-stage permuters, one executor request. ---
    if (opts.force_staged) {
      std::vector<std::shared_ptr<const core::OfflinePermuter<T>>> stages;
      stages.reserve(resolved.stages.size());
      bool degraded = false;
      for (const auto& stage_perm : resolved.stages) {
        std::shared_ptr<const core::OfflinePermuter<T>> permuter;
        if (!should_skip_build_for_deadline<T>(*stage_perm, opts)) {
          StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> acquired =
              acquire_with_retry<T>(*stage_perm, opts, phases.get());
          if (acquired.ok()) {
            permuter = std::move(acquired).value();
          } else if (!config_.allow_degraded || !is_transient(acquired.status().code())) {
            metrics_.record_phases(*phases);
            return acquired.status();
          }
        }
        if (!permuter) {
          util::Stopwatch build_clock;
          StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> fallback =
              build_conventional<T>(*stage_perm);
          phases->add(Phase::kPlanBuild, static_cast<std::uint64_t>(build_clock.nanos()));
          if (!fallback.ok()) {
            metrics_.record_phases(*phases);
            return fallback.status();
          }
          permuter = std::move(fallback).value();
          degraded = true;
        }
        stages.push_back(std::move(permuter));
      }
      Executor::SubmitOptions submit_opts;
      submit_opts.deadline = opts.deadline;
      submit_opts.cancel = opts.cancel;
      submit_opts.trace_id = opts.trace_id;
      submit_opts.phases = std::move(phases);
      StatusOr<std::future<Status>> submitted =
          executor_.submit_program<T>(std::move(stages), a, b, std::move(submit_opts));
      if (submitted.ok()) {
        metrics_.record_program(chain_depth, ServiceMetrics::ProgramPath::kStaged);
        if (degraded) metrics_.record_degraded();
      }
      return submitted;
    }

    // --- Identity fast-path: the chain folded to P(i) = i. ---
    if (composite->is_identity()) {
      std::memcpy(b.data(), a.data(), n * sizeof(T));
      metrics_.record_program(chain_depth, ServiceMetrics::ProgramPath::kIdentity);
      metrics_.record_phases(*phases);
      std::promise<Status> done;
      done.set_value(Status::ok());
      return done.get_future();
    }

    // --- Fused: the composite rides the normal degradation ladder. ---
    std::shared_ptr<const core::OfflinePermuter<T>> permuter;
    bool degraded = false;
    if (should_skip_build_for_deadline<T>(*composite, opts)) {
      degraded = true;
    } else {
      StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> acquired =
          acquire_with_retry<T>(*composite, opts, phases.get());
      if (acquired.ok()) {
        permuter = std::move(acquired).value();
      } else if (config_.allow_degraded && is_transient(acquired.status().code())) {
        degraded = true;
      } else {
        metrics_.record_phases(*phases);
        return acquired.status();
      }
    }
    if (degraded) {
      util::Stopwatch build_clock;
      StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> fallback =
          build_conventional<T>(*composite);
      phases->add(Phase::kPlanBuild, static_cast<std::uint64_t>(build_clock.nanos()));
      if (!fallback.ok()) {
        metrics_.record_phases(*phases);
        return fallback.status();
      }
      permuter = std::move(fallback).value();
    }
    Executor::SubmitOptions submit_opts;
    submit_opts.deadline = opts.deadline;
    submit_opts.cancel = opts.cancel;
    submit_opts.trace_id = opts.trace_id;
    submit_opts.phases = std::move(phases);
    StatusOr<std::future<Status>> submitted =
        executor_.try_submit<T>(std::move(permuter), a, b, std::move(submit_opts));
    if (submitted.ok()) {
      metrics_.record_program(chain_depth, ServiceMetrics::ProgramPath::kFused);
      if (degraded) metrics_.record_degraded();
    }
    return submitted;
  }

  [[nodiscard]] const ServiceMetrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] ServiceMetrics& metrics() noexcept { return metrics_; }
  [[nodiscard]] PlanCache& cache() noexcept { return cache_; }
  [[nodiscard]] Executor& executor() noexcept { return executor_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  void wait_idle() { executor_.wait_idle(); }
  [[nodiscard]] bool wait_idle_for(std::chrono::nanoseconds timeout) {
    return executor_.wait_idle_for(timeout);
  }

 private:
  static bool deadline_expired(std::chrono::steady_clock::time_point deadline) noexcept {
    return deadline != Executor::kNoDeadline && std::chrono::steady_clock::now() >= deadline;
  }

  /// Deadline-pressure heuristic: with an uncached plan and a deadline
  /// tighter than the worst build observed so far, skip the offline
  /// phase entirely. Conservative on a cold service (no builds observed
  /// -> no estimate -> try the build).
  template <class T>
  bool should_skip_build_for_deadline(const perm::Permutation& p, const RequestOptions& opts) {
    if (!config_.allow_degraded || opts.deadline == Executor::kNoDeadline) return false;
    if (cache_.contains(PlanCache::plan_key<T>(p, config_.machine, opts.strategy))) return false;
    const std::uint64_t worst_build_ns = metrics_.plan_build_ns_max();
    if (worst_build_ns == 0) return false;
    const auto remaining = opts.deadline - std::chrono::steady_clock::now();
    return remaining < std::chrono::nanoseconds(worst_build_ns);
  }

  template <class T>
  StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> acquire_with_retry(
      const perm::Permutation& p, const RequestOptions& opts, PhaseBreakdown* phases) {
    for (int attempt = 0;; ++attempt) {
      StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> result =
          cache_.try_acquire<T>(p, config_.machine, opts.strategy, phases);
      if (result.ok() || attempt >= config_.max_build_retries ||
          !is_transient(result.status().code())) {
        return result;
      }
      const std::chrono::microseconds pause = backoff_with_jitter(attempt);
      if (opts.deadline != Executor::kNoDeadline &&
          std::chrono::steady_clock::now() + pause >= opts.deadline) {
        return result;  // no budget left to retry; ladder decides next
      }
      metrics_.record_build_retry();
      std::this_thread::sleep_for(pause);
    }
  }

  /// Backoff for retry `attempt`: base * 2^attempt plus deterministic
  /// jitter in [0, base * 2^attempt) so synchronized failures fan out.
  [[nodiscard]] std::chrono::microseconds backoff_with_jitter(int attempt) const {
    const std::uint64_t base_us =
        static_cast<std::uint64_t>(config_.retry_backoff_base.count()) << attempt;
    std::uint64_t x = config_.retry_jitter_seed ^ (0x9e3779b97f4a7c15ull * (attempt + 1));
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    const std::uint64_t jitter_us = base_us == 0 ? 0 : (x ^ (x >> 31)) % base_us;
    return std::chrono::microseconds(base_us + jitter_us);
  }

  /// The conventional tier: a D-designated permuter has no offline
  /// phase beyond copying the mapping, so it cannot hit the plan-build
  /// fault domain. Built outside the cache on purpose — degraded
  /// service must not evict healthy compiled plans.
  template <class T>
  StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> build_conventional(
      const perm::Permutation& p) {
    try {
      return std::shared_ptr<const core::OfflinePermuter<T>>(
          std::make_shared<const core::OfflinePermuter<T>>(p, config_.machine,
                                                           core::Strategy::kDDesignated));
    } catch (const std::bad_alloc&) {
      return Status(StatusCode::kResourceExhausted, "allocation failed building fallback");
    } catch (const std::exception& e) {
      return Status(StatusCode::kUnavailable,
                    std::string("conventional fallback failed: ") + e.what());
    }
  }

  /// Composite-permutation memo lookup (program fingerprint keyed);
  /// a hit refreshes LRU order. nullptr on miss or when disabled.
  [[nodiscard]] std::shared_ptr<const perm::Permutation> cached_composite(std::uint64_t key) {
    std::lock_guard lock(composites_mutex_);
    const auto it = composites_.find(key);
    if (it == composites_.end()) return nullptr;
    composites_lru_.splice(composites_lru_.begin(), composites_lru_, it->second.second);
    return it->second.first;
  }

  void cache_composite(std::uint64_t key, std::shared_ptr<const perm::Permutation> composite) {
    if (config_.max_cached_composites == 0) return;
    std::lock_guard lock(composites_mutex_);
    if (composites_.count(key) != 0) return;  // racing first submissions: keep the incumbent
    composites_lru_.push_front(key);
    composites_.emplace(key, std::make_pair(std::move(composite), composites_lru_.begin()));
    while (composites_.size() > config_.max_cached_composites) {
      composites_.erase(composites_lru_.back());
      composites_lru_.pop_back();
    }
  }

  util::ThreadPool& pool_;
  Config config_;
  ServiceMetrics metrics_;
  PlanCache cache_;
  Executor executor_;

  // Composite-permutation memo (see Config::max_cached_composites).
  std::mutex composites_mutex_;
  std::list<std::uint64_t> composites_lru_;
  std::unordered_map<std::uint64_t,
                     std::pair<std::shared_ptr<const perm::Permutation>,
                               std::list<std::uint64_t>::iterator>>
      composites_;
};

/// Load a serialized plan as a typed Status instead of a bare nullopt:
/// kUnavailable for IO-level failures, kInvalidArgument for malformed
/// or corrupt payloads (with the loader's reason attached). Carries the
/// `plan_io.read` fault-injection point, which corrupts the in-memory
/// image before parsing — proving the loader's validation rejects a
/// torn read instead of feeding garbage to a kernel.
StatusOr<core::ScheduledPlan> load_plan_checked(const std::string& path);

}  // namespace hmm::runtime
