#pragma once
/// \file status.hpp
/// \brief Recoverable-error taxonomy for the serving layer:
///        `Status` + `StatusOr<T>`.
///
/// The library draws a hard line between two failure classes:
///
///  - **Invariant violations** (a bijection that isn't, a schedule entry
///    out of range, an unresolved strategy enum) are programmer errors;
///    they abort via `HMM_CHECK` (util/check.hpp) because no caller can
///    meaningfully handle them.
///  - **Operational failures** (malformed request, plan build failure,
///    queue full, deadline blown, caller-initiated cancellation) are
///    facts of life for a serving process and must never take it down.
///    Serving-path entry points report them as a typed `Status` so the
///    caller can retry, degrade, or reject — see service.hpp for the
///    degradation ladder.
///
/// `StatusOr<T>` is the usual sum type for "a T or the reason there is
/// no T". It deliberately has no exception bridge: serving-path code
/// converts exceptions to Status exactly once, at the subsystem
/// boundary (Executor task bodies, PlanCache::try_acquire).

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.hpp"

namespace hmm::runtime {

/// Error codes of the serving layer. Codes, not subclasses: a code is
/// what admission/retry/fallback policy dispatches on, and it survives
/// serialization into logs and metrics.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,    ///< malformed request; never retried
  kDeadlineExceeded = 2,   ///< request deadline passed (at any stage)
  kResourceExhausted = 3,  ///< admission bound hit or allocation failed
  kPlanBuildFailed = 4,    ///< offline phase (schedule compile) failed
  kCancelled = 5,          ///< caller's CancelToken fired
  kUnavailable = 6,        ///< transient execution/IO failure; retryable
};

[[nodiscard]] constexpr std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPlanBuildFailed: return "PLAN_BUILD_FAILED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

/// True for codes where a fresh attempt could plausibly succeed
/// (the retry / degradation policies in service.cpp key off this).
[[nodiscard]] constexpr bool is_transient(StatusCode code) noexcept {
  return code == StatusCode::kPlanBuildFailed || code == StatusCode::kUnavailable ||
         code == StatusCode::kResourceExhausted;
}

/// A result code plus a human-readable reason. Default-constructed
/// Status is OK; an OK status never carries a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    HMM_DCHECK(code != StatusCode::kOk);
  }

  [[nodiscard]] static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "DEADLINE_EXCEEDED: queued past the request deadline" (or "OK").
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    std::string s(runtime::to_string(code_));
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A T or the Status explaining its absence. Accessing `value()` on an
/// error is an invariant violation (aborts), so callers must branch on
/// `ok()` first — exactly like std::optional, but the empty state says
/// why.
template <class T>
class StatusOr {
 public:
  /// Implicit from an error Status (must not be OK: an OK StatusOr
  /// must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    HMM_CHECK_MSG(!status_.is_ok(), "StatusOr constructed from OK status without a value");
  }

  /// Implicit from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & {
    HMM_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    HMM_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    HMM_CHECK_MSG(ok(), "StatusOr::value() on an error");
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace hmm::runtime
