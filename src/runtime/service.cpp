#include "runtime/service.hpp"

#include <fstream>
#include <sstream>

namespace hmm::runtime {

StatusOr<core::ScheduledPlan> load_plan_checked(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return Status(StatusCode::kUnavailable, "cannot open plan file: " + path);
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  if (!is.good() && !is.eof()) {
    return Status(StatusCode::kUnavailable, "read error on plan file: " + path);
  }
  std::string bytes = std::move(buffer).str();

  // Named injection point: a torn/corrupt read flips one payload byte
  // deterministically. The loader's validation must catch it.
  if (FaultInjector::instance().should_fire(fault_sites::kPlanRead) && !bytes.empty()) {
    const std::size_t victim = bytes.size() / 2;
    bytes[victim] = static_cast<char>(bytes[victim] ^ 0x55);
  }

  std::istringstream stream(std::move(bytes));
  std::string reason;
  std::optional<core::ScheduledPlan> plan = core::load_plan(stream, &reason);
  if (!plan) {
    return Status(StatusCode::kInvalidArgument, "rejected plan file " + path + ": " + reason);
  }
  return std::move(*plan);
}

}  // namespace hmm::runtime
