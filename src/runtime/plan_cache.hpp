#pragma once
/// \file plan_cache.hpp
/// \brief Thread-safe LRU cache of compiled `core::OfflinePermuter`s.
///
/// The paper's offline phase (row graph + König coloring + per-row bank
/// schedules) is data-independent: built once per permutation, a plan
/// executes any number of arrays. This cache is the serving-side
/// exploitation of that property — repeated permutations skip the
/// offline phase entirely and hit an already-compiled permuter.
///
/// Keying: the 64-bit plan fingerprint (fingerprint.hpp) over the
/// permutation words + machine parameters + strategy + element width,
/// further mixed with a per-element-type token: entries are typed
/// (`OfflinePermuter<T>`), so two distinct types of the same width
/// (float vs int32) must occupy distinct slots even though their
/// compiled plans are structurally identical.
/// Eviction: strict LRU, bounded by total `compiled_bytes()` of the
/// resident entries. Evicted permuters stay alive as long as a caller
/// holds the returned `shared_ptr` — eviction only drops the cache's
/// reference, never invalidates in-flight executions.
///
/// Concurrency: a single mutex guards the index (lookups are O(1) and
/// the critical sections are tiny — plan *construction* happens outside
/// the lock). Concurrent misses on the same key are single-flight:
/// the first caller builds, the rest wait on a shared_future and are
/// counted as hits (they skip the build).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/permuter.hpp"
#include "runtime/fault_injector.hpp"
#include "runtime/fingerprint.hpp"
#include "runtime/metrics.hpp"
#include "runtime/status.hpp"
#include "util/stopwatch.hpp"

namespace hmm::runtime {

class PlanCache {
 public:
  struct Config {
    /// Total compiled_bytes() budget across resident entries. An entry
    /// larger than the whole budget is built and returned but not
    /// retained (counted as an immediate eviction).
    std::uint64_t max_bytes = 256ull << 20;
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config config, ServiceMetrics* metrics = nullptr)
      : config_(config), metrics_(metrics) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Get-or-compile the permuter for (p, machine, strategy, T). Hits
  /// return in O(1) without touching the offline phase; misses compile
  /// outside the cache lock. Throws whatever the build throws (and the
  /// failed key is erased, so a later acquire retries).
  ///
  /// `phases` (optional) receives the request's time attribution:
  /// kPlanLookup covers the index probe, kPlanBuild covers an actual
  /// compile — or the wait on another thread's in-flight compile. A
  /// clean hit on a completed entry records no kPlanBuild span.
  template <class T>
  std::shared_ptr<const core::OfflinePermuter<T>> acquire(
      const perm::Permutation& p,
      const model::MachineParams& machine = model::MachineParams::gtx680(),
      core::Strategy strategy = core::Strategy::kAuto, PhaseBreakdown* phases = nullptr) {
    util::Stopwatch lookup_clock;
    const Fingerprint fp = typed_key<T>(p, machine, strategy);
    std::promise<std::shared_ptr<EntryBase>> promise;
    std::shared_future<std::shared_ptr<EntryBase>> ready;
    bool builder = false;
    std::uint64_t my_generation = 0;
    {
      std::lock_guard lock(mutex_);
      auto it = slots_.find(fp.value);
      if (it != slots_.end()) {
        if (metrics_) metrics_->record_lookup(/*hit=*/true);
        touch_locked(it->second);
        ready = it->second.ready;
      } else {
        if (metrics_) metrics_->record_lookup(/*hit=*/false);
        builder = true;
        ready = promise.get_future().share();
        my_generation = insert_pending_locked(fp.value, ready);
      }
    }
    if (phases) {
      phases->add(Phase::kPlanLookup, static_cast<std::uint64_t>(lookup_clock.nanos()));
    }

    if (builder) {
      util::Stopwatch clock;
      std::shared_ptr<TypedEntry<T>> entry;
      try {
        auto& faults = FaultInjector::instance();
        faults.maybe_stall(fault_sites::kPlanBuildStall);
        faults.maybe_throw(fault_sites::kPlanBuild, StatusCode::kPlanBuildFailed,
                           "plan build failure");
        entry = std::make_shared<TypedEntry<T>>(p, machine, strategy);
      } catch (...) {
        erase(fp.value, my_generation);
        promise.set_exception(std::current_exception());
        std::rethrow_exception(std::current_exception());
      }
      const auto build_ns = static_cast<std::uint64_t>(clock.nanos());
      if (metrics_) metrics_->record_plan_build(build_ns);
      if (phases) phases->add(Phase::kPlanBuild, build_ns);
      commit(fp.value, my_generation, entry, entry->permuter->compiled_bytes());
      promise.set_value(entry);
      return entry->permuter;
    }

    // Hit (possibly on a still-compiling entry: wait for the builder).
    // Only an actual wait counts as kPlanBuild time — a hit on a
    // completed entry must not pollute the build histogram with 0 ns
    // samples.
    const bool must_wait =
        ready.wait_for(std::chrono::seconds(0)) != std::future_status::ready;
    util::Stopwatch wait_clock;
    std::shared_ptr<EntryBase> base = ready.get();
    if (phases && must_wait) {
      phases->add(Phase::kPlanBuild, static_cast<std::uint64_t>(wait_clock.nanos()));
    }
    // The key carries a per-type token, so a failed cast here would
    // mean a genuine 64-bit fingerprint collision.
    auto typed = std::dynamic_pointer_cast<TypedEntry<T>>(base);
    HMM_CHECK_MSG(typed != nullptr, "plan-cache fingerprint collided across element types");
    return typed->permuter;
  }

  /// Non-throwing `acquire`: build (and waiter) failures come back as a
  /// typed Status instead of an exception. This is the serving-path
  /// entry point — `RobustPermuteService` retries / degrades on the
  /// transient codes and fails fast on the rest.
  ///   - FaultInjectedError   -> its carried code (kPlanBuildFailed, ...)
  ///   - std::bad_alloc       -> kResourceExhausted
  ///   - anything else thrown -> kPlanBuildFailed with the what() string
  template <class T>
  StatusOr<std::shared_ptr<const core::OfflinePermuter<T>>> try_acquire(
      const perm::Permutation& p,
      const model::MachineParams& machine = model::MachineParams::gtx680(),
      core::Strategy strategy = core::Strategy::kAuto, PhaseBreakdown* phases = nullptr) {
    try {
      return acquire<T>(p, machine, strategy, phases);
    } catch (const FaultInjectedError& e) {
      return Status(e.code, e.what());
    } catch (const std::bad_alloc&) {
      return Status(StatusCode::kResourceExhausted, "allocation failed during plan build");
    } catch (const std::exception& e) {
      return Status(StatusCode::kPlanBuildFailed, e.what());
    }
  }

  /// The exact key `acquire<T>` files an entry under: the plan
  /// fingerprint mixed with the per-type token. Use this (not the raw
  /// `fingerprint_plan_key`) when probing `contains()`.
  template <class T>
  [[nodiscard]] static Fingerprint plan_key(
      const perm::Permutation& p,
      const model::MachineParams& machine = model::MachineParams::gtx680(),
      core::Strategy strategy = core::Strategy::kAuto) {
    return typed_key<T>(p, machine, strategy);
  }

  /// True iff a *completed* entry for this key is resident.
  [[nodiscard]] bool contains(Fingerprint fp) const;

  /// Resident compiled bytes (completed entries only).
  [[nodiscard]] std::uint64_t bytes() const;

  /// Resident entry count (including in-flight builds).
  [[nodiscard]] std::size_t entries() const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Drop every entry, completed *and* pending. Waiters on a pending
  /// build keep their shared_future and still receive the result; the
  /// builder's later commit() notices its slot generation is gone and
  /// returns the entry without retaining it (no resurrected key, no
  /// bytes_ drift). See the ClearDuringInFlightBuild regression test.
  void clear();

 private:
  struct EntryBase {
    virtual ~EntryBase() = default;
  };

  /// Process-unique token per element type, assigned on first use.
  /// Folded into the plan key so same-width types (e.g. float and
  /// int32) cannot alias a slot and fail the typed downcast.
  static std::atomic<std::uint32_t>& type_token_counter() {
    static std::atomic<std::uint32_t> counter{1};
    return counter;
  }

  template <class T>
  static std::uint32_t type_token() {
    static const std::uint32_t token =
        type_token_counter().fetch_add(1, std::memory_order_relaxed);
    return token;
  }

  template <class T>
  static Fingerprint typed_key(const perm::Permutation& p, const model::MachineParams& machine,
                               core::Strategy strategy) {
    const Fingerprint fp = fingerprint_plan_key(p, machine, static_cast<int>(strategy),
                                                static_cast<std::uint32_t>(sizeof(T)));
    Fnv1a64 h;
    h.update_u64(fp.value);
    h.update_u32(type_token<T>());
    return Fingerprint{h.digest()};
  }

  template <class T>
  struct TypedEntry final : EntryBase {
    TypedEntry(const perm::Permutation& p, const model::MachineParams& machine,
               core::Strategy strategy)
        : permuter(std::make_shared<const core::OfflinePermuter<T>>(p, machine, strategy)) {}
    std::shared_ptr<const core::OfflinePermuter<T>> permuter;
  };

  struct Slot {
    std::shared_future<std::shared_ptr<EntryBase>> ready;
    /// Monotonic id stamped at insert. A builder's commit()/erase()
    /// only applies to the generation it created: if clear() dropped
    /// the slot (and possibly a fresh acquire re-created the key), the
    /// stale builder must not complete someone else's slot — that
    /// would double-push the key into the LRU list and double-count
    /// bytes_.
    std::uint64_t generation = 0;
    std::uint64_t bytes = 0;
    bool completed = false;
    std::list<std::uint64_t>::iterator lru_it;  // valid iff completed
  };

  // Index maintenance (all require mutex_ held).
  void touch_locked(Slot& slot);
  [[nodiscard]] std::uint64_t insert_pending_locked(
      std::uint64_t key, std::shared_future<std::shared_ptr<EntryBase>> ready);
  void evict_to_fit_locked();

  // Builder-side transitions (take the lock themselves); no-ops when
  // the slot's generation no longer matches (clear() raced the build).
  void commit(std::uint64_t key, std::uint64_t generation, std::shared_ptr<EntryBase> entry,
              std::uint64_t entry_bytes);
  void erase(std::uint64_t key, std::uint64_t generation);

  Config config_;
  ServiceMetrics* metrics_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Slot> slots_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  std::uint64_t bytes_ = 0;
  std::uint64_t next_generation_ = 1;
};

}  // namespace hmm::runtime
