#include "runtime/phase.hpp"

namespace hmm::runtime {
namespace {

constexpr std::array<std::string_view, kPhaseCount> kLabels = {
    "admission_wait", "queue_wait",  "plan_lookup", "plan_build",
    "row_pass_1",     "transpose_1", "row_pass_2",  "transpose_2",
    "row_pass_3",     "conventional_kernel", "serialize",  "program_compile",
};

/// Parse the unsigned decimal run starting at `pos`; false if none.
bool parse_u64_at(std::string_view s, std::size_t pos, std::uint64_t& out) {
  if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') return false;
  std::uint64_t value = 0;
  while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  out = value;
  return true;
}

/// Find `"key":` inside [from, to) and parse the number after it.
bool scan_field(std::string_view s, std::size_t from, std::size_t to, std::string_view key,
                std::uint64_t& out) {
  std::string needle;
  needle.reserve(key.size() + 3);
  needle += '"';
  needle += key;
  needle += "\":";
  const std::size_t at = s.substr(0, to).find(needle, from);
  if (at == std::string_view::npos) return false;
  return parse_u64_at(s, at + needle.size(), out);
}

}  // namespace

std::string_view to_string(Phase p) noexcept {
  return kLabels[static_cast<std::size_t>(p)];
}

const std::array<Phase, kPhaseCount>& all_phases() noexcept {
  static const std::array<Phase, kPhaseCount> phases = [] {
    std::array<Phase, kPhaseCount> a{};
    for (std::size_t i = 0; i < kPhaseCount; ++i) a[i] = static_cast<Phase>(i);
    return a;
  }();
  return phases;
}

Phase phase_for_kernel(unsigned kernel) noexcept {
  switch (kernel) {
    case 0: return Phase::kKernelRowPass1;
    case 1: return Phase::kKernelTranspose1;
    case 2: return Phase::kKernelRowPass2;
    case 3: return Phase::kKernelTranspose2;
    case 4: return Phase::kKernelRowPass3;
    default: return Phase::kKernelConventional;
  }
}

std::vector<PhaseScrape> scrape_phases_json(std::string_view metrics_json) {
  std::vector<PhaseScrape> rows;
  const std::size_t phases_at = metrics_json.find("\"phases\":{");
  if (phases_at == std::string_view::npos) return rows;

  for (Phase p : all_phases()) {
    const std::string_view label = to_string(p);
    std::string needle;
    needle.reserve(label.size() + 4);
    needle += '"';
    needle += label;
    needle += "\":{";
    const std::size_t at = metrics_json.find(needle, phases_at);
    if (at == std::string_view::npos) continue;
    const std::size_t body = at + needle.size();
    const std::size_t end = metrics_json.find('}', body);
    if (end == std::string_view::npos) continue;

    PhaseScrape row;
    row.label = std::string(label);
    if (!scan_field(metrics_json, body, end, "count", row.count)) continue;
    (void)scan_field(metrics_json, body, end, "ns_sum", row.ns_sum);
    (void)scan_field(metrics_json, body, end, "p50", row.p50);
    (void)scan_field(metrics_json, body, end, "p95", row.p95);
    (void)scan_field(metrics_json, body, end, "max", row.max);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace hmm::runtime
