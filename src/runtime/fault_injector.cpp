#include "runtime/fault_injector.hpp"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "runtime/fingerprint.hpp"

namespace hmm::runtime {
namespace {

/// splitmix64 finalizer: full-avalanche mix of (seed, site, counter) so
/// adjacent checks of a site fire independently.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) noexcept {
  Fnv1a64 h;
  for (const char c : site) h.update_byte(static_cast<std::uint8_t>(c));
  return h.digest();
}

/// True iff `site` appears in the comma-separated `filter`.
bool filter_contains(const std::string& filter, std::string_view site) {
  std::size_t pos = 0;
  while (pos <= filter.size()) {
    const std::size_t comma = filter.find(',', pos);
    const std::size_t end = comma == std::string::npos ? filter.size() : comma;
    if (filter.compare(pos, end - pos, site) == 0) return true;
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return false;
}

}  // namespace

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() {
  const char* rate = std::getenv("HMM_FAULT_RATE");
  if (rate == nullptr) return;
  Config config;
  config.rate = std::atof(rate);
  if (config.rate <= 0.0) return;
  if (const char* seed = std::getenv("HMM_FAULT_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* sites = std::getenv("HMM_FAULT_SITES")) config.sites = sites;
  if (const char* stall = std::getenv("HMM_FAULT_STALL_MS")) {
    config.stall_ms = static_cast<std::uint32_t>(std::strtoul(stall, nullptr, 10));
  }
  config.enabled = true;
  configure(config);
}

void FaultInjector::configure(const Config& config) {
  std::lock_guard lock(mutex_);
  config_ = config;
  sites_.clear();
  armed_.store(config.enabled && config_.rate > 0.0, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard lock(mutex_);
  config_ = Config{};
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::site_enabled_locked(std::string_view site) const {
  return config_.sites.empty() || filter_contains(config_.sites, site);
}

bool FaultInjector::should_fire(std::string_view site) {
  if (!armed()) return false;
  std::lock_guard lock(mutex_);
  if (!armed_.load(std::memory_order_relaxed)) return false;  // disarmed while we waited
  if (!site_enabled_locked(site)) return false;
  SiteState& state = sites_[std::string(site)];
  const std::uint64_t check_index = state.checks++;
  const std::uint64_t roll = mix(config_.seed ^ hash_site(site) ^ (check_index * 0xd1342543de82ef95ull));
  // Compare against rate scaled to the full 64-bit range (rate >= 1
  // always fires; the product is clamped by the double->u64 conversion).
  const double threshold = config_.rate * 18446744073709551616.0;  // 2^64
  const bool fire =
      config_.rate >= 1.0 || static_cast<double>(roll) < threshold;
  if (fire) ++state.fired;
  return fire;
}

void FaultInjector::maybe_throw_slow(std::string_view site, StatusCode code, const char* what) {
  if (should_fire(site)) {
    throw FaultInjectedError(code, std::string("[fault-injected] ") + what);
  }
}

void FaultInjector::maybe_stall_slow(std::string_view site) {
  std::uint32_t stall_ms = 0;
  if (should_fire(site)) {
    std::lock_guard lock(mutex_);
    stall_ms = config_.stall_ms;
  }
  if (stall_ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
}

std::uint64_t FaultInjector::checks(std::string_view site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.checks;
}

std::uint64_t FaultInjector::fired(std::string_view site) const {
  std::lock_guard lock(mutex_);
  auto it = sites_.find(std::string(site));
  return it == sites_.end() ? 0 : it->second.fired;
}

std::uint64_t FaultInjector::total_fired() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, state] : sites_) total += state.fired;
  return total;
}

}  // namespace hmm::runtime
