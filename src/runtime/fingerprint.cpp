#include "runtime/fingerprint.hpp"

namespace hmm::runtime {
namespace {

/// Bumped whenever the key schema changes (fields, order, widths).
constexpr std::uint64_t kKeySchemaVersion = 1;

}  // namespace

Fnv1a64& Fnv1a64::update_u32_span(std::span<const std::uint32_t> words) noexcept {
  // Word-at-a-time keeps the loop tight; equivalent to feeding the
  // little-endian byte stream of the mapping.
  for (const std::uint32_t w : words) update_u32(w);
  return *this;
}

Fingerprint fingerprint_permutation(const perm::Permutation& p) {
  return fingerprint_mapping(p.data());
}

Fingerprint fingerprint_mapping(std::span<const std::uint32_t> words) {
  Fnv1a64 h;
  h.update_u64(kKeySchemaVersion);
  h.update_u64(words.size());
  h.update_u32_span(words);
  return Fingerprint{h.digest()};
}

Fingerprint fingerprint_plan_key(const perm::Permutation& p,
                                 const model::MachineParams& machine, int strategy_tag,
                                 std::uint32_t elem_bytes) {
  Fnv1a64 h;
  h.update_u64(kKeySchemaVersion);
  h.update_u32(machine.width);
  h.update_u32(machine.latency);
  h.update_u32(machine.shared_latency);
  h.update_u32(machine.dmms);
  h.update_u64(machine.shared_bytes);
  h.update_u32(static_cast<std::uint32_t>(strategy_tag));
  h.update_u32(elem_bytes);
  h.update_u64(p.size());
  h.update_u32_span(p.data());
  return Fingerprint{h.digest()};
}

}  // namespace hmm::runtime
