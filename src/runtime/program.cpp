#include "runtime/program.hpp"

#include <new>
#include <string>

#include "perm/generators.hpp"
#include "util/bits.hpp"

namespace hmm::runtime {

using perm::Permutation;

std::string_view to_string(ProgramOpCode op) noexcept {
  switch (op) {
    case ProgramOpCode::kPermute: return "permute";
    case ProgramOpCode::kInverse: return "inverse";
    case ProgramOpCode::kTranspose: return "transpose";
    case ProgramOpCode::kReverse: return "reverse";
    case ProgramOpCode::kShuffle: return "shuffle";
    case ProgramOpCode::kUnshuffle: return "unshuffle";
    case ProgramOpCode::kBitReversal: return "bit-reversal";
    case ProgramOpCode::kRotate: return "rotate";
  }
  return "unknown";
}

bool is_known_opcode(std::uint32_t op) noexcept {
  return op >= static_cast<std::uint32_t>(ProgramOpCode::kPermute) &&
         op <= static_cast<std::uint32_t>(ProgramOpCode::kRotate);
}

Fingerprint program_fingerprint(std::span<const ProgramOp> ops, std::uint64_t n) noexcept {
  Fnv1a64 h;
  // Version salt: a change to the identity schema must never alias
  // fingerprints minted under the old one.
  h.update_u64(0x50524f4752414d31ull);  // "PROGRAM1"
  h.update_u64(n);
  for (const ProgramOp& op : ops) {
    h.update_u32(static_cast<std::uint32_t>(op.op));
    h.update_u64(op.arg);
  }
  return Fingerprint{h.digest()};
}

namespace {

Status invalid(std::size_t index, ProgramOpCode op, const std::string& why) {
  return Status(StatusCode::kInvalidArgument,
                "program op " + std::to_string(index) + " (" + std::string(to_string(op)) +
                    "): " + why);
}

bool is_perfect_square(std::uint64_t n, std::uint64_t& root) {
  if (n == 0) return false;
  std::uint64_t lo = 1, hi = 1ull << 32;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (mid * mid < n) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  root = lo;
  return lo * lo == n;
}

/// Resolve one op to its n-element permutation, or a typed error. All
/// generator preconditions are checked *here* — the generators
/// themselves guard with HMM_CHECK (abort), which is an invariant
/// backstop this validator must keep hostile input away from.
StatusOr<std::shared_ptr<const Permutation>> resolve_op(const ProgramOp& op, std::size_t index,
                                                        std::uint64_t n,
                                                        const PlanResolver& resolver) {
  switch (op.op) {
    case ProgramOpCode::kPermute:
    case ProgramOpCode::kInverse: {
      if (!resolver) {
        return invalid(index, op.op, "no plan resolver available");
      }
      std::shared_ptr<const Permutation> plan = resolver(op.arg);
      if (plan == nullptr) {
        return invalid(index, op.op, "unregistered plan fingerprint (SUBMIT_PLAN it first)");
      }
      // The mismatched-n gate: reject before any compose() can see two
      // differently-sized permutations (compose aborts on that).
      if (plan->size() != n) {
        return invalid(index, op.op,
                       "plan size " + std::to_string(plan->size()) +
                           " does not match the program element count " + std::to_string(n));
      }
      if (op.op == ProgramOpCode::kPermute) return plan;
      return std::make_shared<const Permutation>(plan->inverse());
    }
    case ProgramOpCode::kTranspose: {
      if (op.arg != 0) return invalid(index, op.op, "argument must be 0");
      std::uint64_t root = 0;
      if (!is_perfect_square(n, root)) {
        return invalid(index, op.op, "element count must be a perfect square");
      }
      return std::make_shared<const Permutation>(perm::transpose(root, root));
    }
    case ProgramOpCode::kReverse: {
      if (op.arg != 0) return invalid(index, op.op, "argument must be 0");
      if (!util::is_pow2(n)) return invalid(index, op.op, "element count must be a power of two");
      return std::make_shared<const Permutation>(perm::bit_complement(n));
    }
    case ProgramOpCode::kShuffle: {
      if (op.arg != 0) return invalid(index, op.op, "argument must be 0");
      if (!util::is_pow2(n)) return invalid(index, op.op, "element count must be a power of two");
      return std::make_shared<const Permutation>(perm::shuffle(n));
    }
    case ProgramOpCode::kUnshuffle: {
      if (op.arg != 0) return invalid(index, op.op, "argument must be 0");
      if (!util::is_pow2(n)) return invalid(index, op.op, "element count must be a power of two");
      return std::make_shared<const Permutation>(perm::unshuffle(n));
    }
    case ProgramOpCode::kBitReversal: {
      if (op.arg != 0) return invalid(index, op.op, "argument must be 0");
      if (!util::is_pow2(n)) return invalid(index, op.op, "element count must be a power of two");
      return std::make_shared<const Permutation>(perm::bit_reversal(n));
    }
    case ProgramOpCode::kRotate:
      return std::make_shared<const Permutation>(perm::rotation(n, op.arg % n));
  }
  return invalid(index, op.op, "unknown opcode");
}

}  // namespace

StatusOr<ResolvedProgram> resolve_program(const Program& program, std::uint64_t n,
                                          const PlanResolver& resolver) {
  if (n == 0) return Status(StatusCode::kInvalidArgument, "program: empty element array");
  if (program.ops.empty()) {
    return Status(StatusCode::kInvalidArgument, "program: empty op chain");
  }
  if (program.ops.size() > kMaxProgramOps) {
    return Status(StatusCode::kInvalidArgument,
                  "program: op count " + std::to_string(program.ops.size()) +
                      " exceeds the cap of " + std::to_string(kMaxProgramOps));
  }
  for (std::size_t i = 0; i < program.ops.size(); ++i) {
    if (!is_known_opcode(static_cast<std::uint32_t>(program.ops[i].op))) {
      return Status(StatusCode::kInvalidArgument,
                    "program op " + std::to_string(i) + ": unknown opcode " +
                        std::to_string(static_cast<std::uint32_t>(program.ops[i].op)));
    }
  }

  ResolvedProgram resolved;
  resolved.fingerprint = program_fingerprint(program.ops, n);
  resolved.stages.reserve(program.ops.size());
  try {
    for (std::size_t i = 0; i < program.ops.size(); ++i) {
      StatusOr<std::shared_ptr<const Permutation>> stage =
          resolve_op(program.ops[i], i, n, resolver);
      if (!stage.ok()) return stage.status();
      resolved.stages.push_back(std::move(stage).value());
    }
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted, "program: allocation failed while resolving");
  }
  return resolved;
}

StatusOr<perm::Permutation> fuse_program(const ResolvedProgram& resolved) {
  if (resolved.stages.empty()) {
    return Status(StatusCode::kInvalidArgument, "program: nothing to fuse");
  }
  const std::uint64_t n = resolved.stages.front()->size();
  for (const auto& stage : resolved.stages) {
    if (stage == nullptr || stage->size() != n) {
      // Last typed gate before compose(): its size check aborts.
      return Status(StatusCode::kInvalidArgument, "program: stage sizes disagree");
    }
  }
  try {
    // Left fold: after stage 1 an element sits at P1(i); stage k moves
    // it on to Pk(...). compose is (this ∘ other)(i) = this(other(i)),
    // so the accumulated composite is always `next ∘ acc`.
    Permutation composite = *resolved.stages.front();
    for (std::size_t i = 1; i < resolved.stages.size(); ++i) {
      composite = resolved.stages[i]->compose(composite);
    }
    return composite;
  } catch (const std::bad_alloc&) {
    return Status(StatusCode::kResourceExhausted, "program: allocation failed while fusing");
  }
}

}  // namespace hmm::runtime
