#include "runtime/metrics.hpp"

#include <algorithm>
#include <sstream>

#include "cpu/dispatch.hpp"
#include "util/bits.hpp"
#include "util/buffer_pool.hpp"
#include "util/numa.hpp"

namespace hmm::runtime {
namespace {

/// Fetch-max over a relaxed atomic (CAS loop; contention is rare).
void atomic_max(std::atomic<std::uint64_t>& target, std::uint64_t value) noexcept {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::string format_ns(std::uint64_t ns) {
  if (ns >= 1'000'000) return util::format_ms(static_cast<double>(ns) / 1e6) + " ms";
  std::ostringstream os;
  if (ns >= 1'000) {
    os << util::format_double(static_cast<double>(ns) / 1e3, 1) << " us";
  } else {
    os << ns << " ns";
  }
  return os.str();
}

}  // namespace

void LogHistogram::record(std::uint64_t value) noexcept {
  const int bucket = value == 0 ? 0 : static_cast<int>(util::log2_floor(value));
  buckets_[static_cast<std::size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  atomic_max(max_, value);
}

std::uint64_t LogHistogram::quantile(double q) const noexcept {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil) so quantile(1.0) lands in
  // the last occupied bucket.
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Geometric midpoint of [2^b, 2^(b+1)): 1.5 * 2^b, capped by max.
      const std::uint64_t mid = b >= 62 ? max() : (3ull << b) / 2;
      return std::min(mid, max());
    }
  }
  return max();
}

void LogHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void ServiceMetrics::record_plan_build(std::uint64_t ns) noexcept {
  plan_builds_.fetch_add(1, std::memory_order_relaxed);
  plan_build_ns_total_.fetch_add(ns, std::memory_order_relaxed);
  atomic_max(plan_build_ns_max_, ns);
}

void ServiceMetrics::record_submit(std::uint64_t queue_depth) noexcept {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  atomic_max(queue_high_water_, queue_depth);
}

MetricsSnapshot ServiceMetrics::snapshot() const {
  MetricsSnapshot s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.bytes_evicted = bytes_evicted_.load(std::memory_order_relaxed);
  s.plan_builds = plan_builds_.load(std::memory_order_relaxed);
  s.plan_build_ns_total = plan_build_ns_total_.load(std::memory_order_relaxed);
  s.plan_build_ns_max = plan_build_ns_max_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  s.execute_count = execute_ns_.count();
  s.execute_ns_sum = execute_ns_.sum();
  s.execute_ns_p50 = execute_ns_.quantile(0.50);
  s.execute_ns_p95 = execute_ns_.quantile(0.95);
  s.execute_ns_max = execute_ns_.max();
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  s.degraded_executions = degraded_.load(std::memory_order_relaxed);
  s.build_retries = build_retries_.load(std::memory_order_relaxed);
  s.batches_executed = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.batch_size_p50 = batch_size_.quantile(0.50);
  s.batch_size_max = batch_size_.max();
  s.programs_executed = programs_executed_.load(std::memory_order_relaxed);
  s.programs_fused = programs_fused_.load(std::memory_order_relaxed);
  s.programs_staged = programs_staged_.load(std::memory_order_relaxed);
  s.programs_identity = programs_identity_.load(std::memory_order_relaxed);
  s.program_stages_p50 = program_stages_.quantile(0.50);
  s.program_stages_max = program_stages_.max();
  s.kernel_variant = std::string(cpu::to_string(cpu::kernel_variant()));
  s.numa_nodes = static_cast<std::uint32_t>(util::numa::node_count());
  {
    const util::BufferPool::Stats pool = util::BufferPool::global().stats();
    s.pool_hits = pool.hits;
    s.pool_misses = pool.misses;
    s.pool_releases = pool.releases;
    s.pool_trims = pool.trims;
    s.pool_acquire_failures = pool.acquire_failures;
    s.pool_outstanding_bytes = pool.outstanding_bytes;
    s.pool_pooled_bytes = pool.pooled_bytes;
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const LogHistogram& h = phase_ns_[i];
    PhaseStats& p = s.phases[i];
    p.count = h.count();
    p.ns_sum = h.sum();
    p.p50 = h.quantile(0.50);
    p.p95 = h.quantile(0.95);
    p.max = h.max();
  }
  return s;
}

void ServiceMetrics::reset() {
  lookups_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  bytes_evicted_.store(0, std::memory_order_relaxed);
  plan_builds_.store(0, std::memory_order_relaxed);
  plan_build_ns_total_.store(0, std::memory_order_relaxed);
  plan_build_ns_max_.store(0, std::memory_order_relaxed);
  submitted_.store(0, std::memory_order_relaxed);
  queue_high_water_.store(0, std::memory_order_relaxed);
  completed_.store(0, std::memory_order_relaxed);
  failed_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  cancelled_.store(0, std::memory_order_relaxed);
  deadline_exceeded_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
  build_retries_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  batched_requests_.store(0, std::memory_order_relaxed);
  programs_executed_.store(0, std::memory_order_relaxed);
  programs_fused_.store(0, std::memory_order_relaxed);
  programs_staged_.store(0, std::memory_order_relaxed);
  programs_identity_.store(0, std::memory_order_relaxed);
  program_stages_.reset();
  batch_size_.reset();
  execute_ns_.reset();
  for (auto& h : phase_ns_) h.reset();
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  os << "{"
     << "\"cache\":{"
     << "\"lookups\":" << lookups << ",\"hits\":" << hits << ",\"misses\":" << misses
     << ",\"hit_rate\":" << util::format_double(hit_rate(), 4)
     << ",\"evictions\":" << evictions << ",\"bytes_evicted\":" << bytes_evicted
     << ",\"plan_builds\":" << plan_builds
     << ",\"plan_build_ns_total\":" << plan_build_ns_total
     << ",\"plan_build_ns_max\":" << plan_build_ns_max << "},"
     << "\"executor\":{"
     << "\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"failed\":" << failed << ",\"queue_high_water\":" << queue_high_water
     << ",\"execute_count\":" << execute_count << ",\"execute_ns_sum\":" << execute_ns_sum
     << ",\"execute_ns_p50\":" << execute_ns_p50 << ",\"execute_ns_p95\":" << execute_ns_p95
     << ",\"execute_ns_max\":" << execute_ns_max << "},"
     << "\"robustness\":{"
     << "\"rejected\":" << rejected << ",\"cancelled\":" << cancelled
     << ",\"deadline_exceeded\":" << deadline_exceeded
     << ",\"degraded_executions\":" << degraded_executions
     << ",\"build_retries\":" << build_retries << "},"
     << "\"batching\":{"
     << "\"batches_executed\":" << batches_executed
     << ",\"batched_requests\":" << batched_requests
     << ",\"batch_size_p50\":" << batch_size_p50
     << ",\"batch_size_max\":" << batch_size_max << "},"
     << "\"programs\":{"
     << "\"executed\":" << programs_executed << ",\"fused\":" << programs_fused
     << ",\"staged\":" << programs_staged << ",\"identity\":" << programs_identity
     << ",\"stages_p50\":" << program_stages_p50
     << ",\"stages_max\":" << program_stages_max << "},"
     << "\"runtime\":{"
     << "\"kernel_variant\":\"" << kernel_variant << "\""
     << ",\"numa_nodes\":" << numa_nodes << "},"
     << "\"pool\":{"
     << "\"hits\":" << pool_hits << ",\"misses\":" << pool_misses
     << ",\"releases\":" << pool_releases << ",\"trims\":" << pool_trims
     << ",\"acquire_failures\":" << pool_acquire_failures
     << ",\"outstanding_bytes\":" << pool_outstanding_bytes
     << ",\"pooled_bytes\":" << pool_pooled_bytes << "},"
     << "\"phases\":{";
  bool first = true;
  for (Phase p : all_phases()) {
    const PhaseStats& st = phase(p);
    if (!first) os << ",";
    first = false;
    os << "\"" << to_string(p) << "\":{"
       << "\"count\":" << st.count << ",\"ns_sum\":" << st.ns_sum << ",\"p50\":" << st.p50
       << ",\"p95\":" << st.p95 << ",\"max\":" << st.max << "}";
  }
  os << "}}";
  return os.str();
}

util::Table MetricsSnapshot::to_table() const {
  util::Table t({"metric", "value"});
  if (!kernel_variant.empty()) {
    t.add_row({"kernel variant", kernel_variant});
    t.add_row({"numa nodes", util::format_count(numa_nodes)});
    t.add_separator();
  }
  t.add_row({"cache lookups", util::format_count(lookups)});
  t.add_row({"cache hits", util::format_count(hits)});
  t.add_row({"cache misses", util::format_count(misses)});
  t.add_row({"cache hit rate", util::format_double(hit_rate() * 100.0, 1) + " %"});
  t.add_row({"evictions", util::format_count(evictions)});
  t.add_row({"bytes evicted", util::format_bytes(bytes_evicted)});
  t.add_row({"plan builds", util::format_count(plan_builds)});
  t.add_row({"plan build total", format_ns(plan_build_ns_total)});
  t.add_row({"plan build max", format_ns(plan_build_ns_max)});
  t.add_separator();
  t.add_row({"requests submitted", util::format_count(submitted)});
  t.add_row({"requests completed", util::format_count(completed)});
  t.add_row({"requests failed", util::format_count(failed)});
  t.add_row({"queue depth high-water", util::format_count(queue_high_water)});
  t.add_row({"execute p50", format_ns(execute_ns_p50)});
  t.add_row({"execute p95", format_ns(execute_ns_p95)});
  t.add_row({"execute max", format_ns(execute_ns_max)});
  t.add_separator();
  t.add_row({"requests rejected", util::format_count(rejected)});
  t.add_row({"requests cancelled", util::format_count(cancelled)});
  t.add_row({"deadline exceeded", util::format_count(deadline_exceeded)});
  t.add_row({"degraded executions", util::format_count(degraded_executions)});
  t.add_row({"plan build retries", util::format_count(build_retries)});
  t.add_separator();
  t.add_row({"batches executed", util::format_count(batches_executed)});
  t.add_row({"batched requests", util::format_count(batched_requests)});
  if (batches_executed > 0) {
    t.add_row({"batch size p50/max", util::format_count(batch_size_p50) + " / " +
                                         util::format_count(batch_size_max)});
  }
  t.add_row({"programs executed", util::format_count(programs_executed)});
  if (programs_executed > 0) {
    t.add_row({"programs fused", util::format_count(programs_fused)});
    t.add_row({"programs staged", util::format_count(programs_staged)});
    t.add_row({"programs identity", util::format_count(programs_identity)});
    t.add_row({"program stages p50/max", util::format_count(program_stages_p50) + " / " +
                                             util::format_count(program_stages_max)});
  }
  t.add_row({"pool hits", util::format_count(pool_hits)});
  t.add_row({"pool misses", util::format_count(pool_misses)});
  t.add_row({"pool releases", util::format_count(pool_releases)});
  if (pool_trims > 0) t.add_row({"pool trims", util::format_count(pool_trims)});
  if (pool_acquire_failures > 0) {
    t.add_row({"pool acquire failures", util::format_count(pool_acquire_failures)});
  }
  t.add_row({"pool outstanding", util::format_bytes(pool_outstanding_bytes)});
  t.add_row({"pool cached", util::format_bytes(pool_pooled_bytes)});
  t.add_separator();
  for (Phase p : all_phases()) {
    const PhaseStats& st = phase(p);
    if (st.count == 0) continue;  // keep the table terse: only phases that ran
    t.add_row({"phase " + std::string(to_string(p)),
               format_ns(st.p50) + " p50 / " + format_ns(st.p95) + " p95 / " +
                   format_ns(st.max) + " max (n=" + util::format_count(st.count) + ")"});
  }
  return t;
}

std::string MetricsSnapshot::to_prometheus() const {
  std::ostringstream os;
  const auto counter = [&os](std::string_view name, std::string_view help, std::uint64_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " counter\n"
       << name << " " << value << "\n";
  };
  counter("hmm_cache_lookups_total", "Plan-cache lookups.", lookups);
  counter("hmm_cache_hits_total", "Plan-cache hits.", hits);
  counter("hmm_cache_misses_total", "Plan-cache misses.", misses);
  counter("hmm_cache_evictions_total", "Plan-cache evictions.", evictions);
  counter("hmm_cache_bytes_evicted_total", "Bytes reclaimed by eviction.", bytes_evicted);
  counter("hmm_plan_builds_total", "Offline plan compiles.", plan_builds);
  counter("hmm_requests_submitted_total", "Requests admitted to the executor.", submitted);
  counter("hmm_requests_completed_total", "Requests executed successfully.", completed);
  counter("hmm_requests_failed_total", "Requests that executed and failed.", failed);
  counter("hmm_requests_rejected_total", "Requests refused at admission.", rejected);
  counter("hmm_requests_cancelled_total", "Requests resolved cancelled.", cancelled);
  counter("hmm_deadline_exceeded_total", "Requests resolved past deadline.", deadline_exceeded);
  counter("hmm_degraded_executions_total", "Requests served by the conventional fallback.",
          degraded_executions);
  counter("hmm_build_retries_total", "Transient plan-build failures retried.", build_retries);
  counter("hmm_batches_executed_total", "Fused same-plan batch sweeps executed.", batches_executed);
  counter("hmm_batched_requests_total", "Requests carried by fused batch sweeps.",
          batched_requests);
  counter("hmm_programs_executed_total", "EXECUTE_PROGRAM requests accepted.", programs_executed);
  counter("hmm_programs_fused_total", "Programs served as one fused composite plan.",
          programs_fused);
  counter("hmm_programs_staged_total", "Programs served stage-by-stage.", programs_staged);
  counter("hmm_programs_identity_total", "Programs whose composite folded to the identity.",
          programs_identity);
  counter("hmm_pool_hits_total", "Buffer-pool acquisitions served from the free lists.",
          pool_hits);
  counter("hmm_pool_misses_total", "Buffer-pool acquisitions that hit the allocator.",
          pool_misses);
  counter("hmm_pool_releases_total", "Buffers returned to the pool.", pool_releases);
  counter("hmm_pool_trims_total", "Pooled buffers dropped by cap or explicit trim.",
          pool_trims);
  counter("hmm_pool_acquire_failures_total",
          "Acquisitions refused at the outstanding-bytes cap.", pool_acquire_failures);
  // Byte gauges: outstanding tracks leaks (a steady workload must
  // return to its baseline), pooled tracks the free-list footprint.
  const auto gauge = [&os](std::string_view name, std::string_view help,
                           std::uint64_t value) {
    os << "# HELP " << name << " " << help << "\n"
       << "# TYPE " << name << " gauge\n"
       << name << " " << value << "\n";
  };
  gauge("hmm_pool_outstanding_bytes", "Bytes currently held by live pooled buffers.",
        pool_outstanding_bytes);
  gauge("hmm_pool_pooled_bytes", "Bytes parked on the pool's free lists.",
        pool_pooled_bytes);
  // Info-style gauge: the active kernel tier as a label, value always
  // 1, so dashboards can attribute latency shifts to the code path.
  if (!kernel_variant.empty()) {
    os << "# HELP hmm_kernel_variant Active CPU kernel tier (info gauge).\n"
       << "# TYPE hmm_kernel_variant gauge\n"
       << "hmm_kernel_variant{variant=\"" << kernel_variant << "\"} 1\n";
  }
  gauge("hmm_numa_nodes", "NUMA nodes the runtime places memory and workers across.",
        numa_nodes);
  // Per-phase digests as summaries. Quantiles come from the log2
  // histogram (factor-of-two resolution); _sum/_count are exact.
  os << "# HELP hmm_phase_duration_seconds Wall time attributed to each serving phase.\n"
     << "# TYPE hmm_phase_duration_seconds summary\n";
  const auto seconds = [](std::uint64_t ns) { return util::format_double(static_cast<double>(ns) / 1e9, 9); };
  for (Phase p : all_phases()) {
    const PhaseStats& st = phase(p);
    const std::string_view label = to_string(p);
    os << "hmm_phase_duration_seconds{phase=\"" << label << "\",quantile=\"0.5\"} "
       << seconds(st.p50) << "\n"
       << "hmm_phase_duration_seconds{phase=\"" << label << "\",quantile=\"0.95\"} "
       << seconds(st.p95) << "\n"
       << "hmm_phase_duration_seconds_sum{phase=\"" << label << "\"} " << seconds(st.ns_sum)
       << "\n"
       << "hmm_phase_duration_seconds_count{phase=\"" << label << "\"} " << st.count << "\n";
  }
  return os.str();
}

}  // namespace hmm::runtime
