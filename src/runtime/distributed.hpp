#pragma once
/// \file distributed.hpp
/// \brief Band decomposition of the scheduled permutation across shards
///        (ROADMAP "horizontal sharding, phase 2").
///
/// The paper executes a permutation on n = rows x cols elements as
/// row-wise pass -> transpose -> row-wise pass -> transpose -> row-wise
/// pass. The distributed analogue splits the matrix into contiguous
/// *row bands*, one per shard: every row-wise pass is embarrassingly
/// band-local (a row never leaves its band), and each transpose becomes
/// an all-to-all *column exchange* — shard s owns rows R_s of the
/// rows x cols view and rows C_s (its column band) of the transposed
/// cols x rows view, so the transpose moves exactly the block
/// R_s x C_t from shard s to shard t, for every ordered pair (s, t).
/// Each block moves exactly once and the per-link volumes are balanced
/// (they differ only by the +/-1 row remainder of the band split), so
/// the exchange is contention-free in the same sense the bank schedules
/// make the shared-memory scatters conflict-free — one level up.
///
/// `BandPlan` is pure geometry (band ranges + the exchange block list);
/// `BandPlanner` binds the geometry to a compiled `core::ScheduledPlan`
/// and hands out the band's rows of each pass schedule as zero-copy
/// subspans of the full `RowScheduleSet` — the rows a shard runs are
/// bit-identical to the rows a single node would run (see
/// `core::slice_rows` for the owning variant).

#include <cstdint>
#include <span>
#include <vector>

#include "core/plan.hpp"
#include "core/row_schedule.hpp"
#include "runtime/status.hpp"

namespace hmm::runtime {

/// Most shards one distributed execution may span (wire-level bound;
/// coordinators typically use far fewer).
inline constexpr std::uint32_t kMaxShards = 64;

/// Half-open row range [begin, end).
struct BandRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t rows() const noexcept { return end - begin; }
};

/// One block of the column exchange: shard `src` sends rows
/// [row_begin, row_end) x columns [col_begin, col_end) of *its current
/// local view* to shard `dst`, laid out row-major within the block.
struct BlockTransfer {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;
  std::uint64_t col_begin = 0;
  std::uint64_t col_end = 0;

  [[nodiscard]] std::uint64_t elements() const noexcept {
    return (row_end - row_begin) * (col_end - col_begin);
  }
};

/// Band geometry + exchange schedule for a rows x cols matrix split
/// across `shards` row bands. Value type: cheap to copy (O(shards^2)).
class BandPlan {
 public:
  /// Build the split. Fails (kInvalidArgument) when `shards` is 0,
  /// exceeds `kMaxShards`, or exceeds rows (every band needs at least
  /// one row of both the natural and the transposed view; rows <= cols
  /// by shape_for, so rows is the binding bound).
  [[nodiscard]] static StatusOr<BandPlan> build(std::uint64_t rows, std::uint64_t cols,
                                                std::uint32_t shards);

  [[nodiscard]] std::uint64_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::uint64_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::uint32_t shards() const noexcept {
    return static_cast<std::uint32_t>(row_bands_.size());
  }

  /// Shard s's rows of the rows x cols view (passes 1 and 3).
  [[nodiscard]] const BandRange& row_band(std::uint32_t s) const noexcept {
    return row_bands_[s];
  }
  /// Shard s's rows of the transposed cols x rows view (pass 2).
  [[nodiscard]] const BandRange& col_band(std::uint32_t s) const noexcept {
    return col_bands_[s];
  }

  /// Element offset / length of shard s's band in the flat n-array
  /// (bands are contiguous, in shard order — the coordinator slices the
  /// input and concatenates the outputs with no reshuffling).
  [[nodiscard]] std::uint64_t band_offset(std::uint32_t s) const noexcept {
    return row_bands_[s].begin * cols_;
  }
  [[nodiscard]] std::uint64_t band_elements(std::uint32_t s) const noexcept {
    return row_bands_[s].rows() * cols_;
  }
  /// Elements of shard s's slice of the transposed view (the staging
  /// buffer the first exchange assembles).
  [[nodiscard]] std::uint64_t transposed_elements(std::uint32_t s) const noexcept {
    return col_bands_[s].rows() * rows_;
  }

  /// The full exchange schedule of round 1 (after pass 1; blocks of the
  /// rows x cols view) or round 2 (after pass 2; blocks of the
  /// cols x rows view). shards^2 entries, each (src, dst) exactly once.
  [[nodiscard]] std::span<const BlockTransfer> exchange(std::uint32_t round) const noexcept {
    return round == 1 ? std::span<const BlockTransfer>(round1_)
                      : std::span<const BlockTransfer>(round2_);
  }

  /// The single block shard `src` sends shard `dst` in `round`.
  [[nodiscard]] const BlockTransfer& block(std::uint32_t round, std::uint32_t src,
                                           std::uint32_t dst) const noexcept {
    const auto& sched = round == 1 ? round1_ : round2_;
    return sched[static_cast<std::size_t>(src) * shards() + dst];
  }

 private:
  BandPlan() = default;

  std::uint64_t rows_ = 0;
  std::uint64_t cols_ = 0;
  std::vector<BandRange> row_bands_;
  std::vector<BandRange> col_bands_;
  std::vector<BlockTransfer> round1_;  ///< src-major, dst-minor
  std::vector<BlockTransfer> round2_;
};

/// One band's rows of a pass schedule, borrowed from the full plan.
struct BandPassView {
  std::uint64_t rows = 0;  ///< rows this band executes
  std::uint64_t cols = 0;  ///< row length of the pass
  std::span<const std::uint16_t> phat;
  std::span<const std::uint16_t> q;
};

/// Binds a `BandPlan` to a compiled plan and serves each shard its
/// slice of the three pass schedules. Borrows `plan` — the caller keeps
/// it alive (shards hold the plan-cache entry).
class BandPlanner {
 public:
  /// Fails (kInvalidArgument) when the split is infeasible for the
  /// plan's shape (see BandPlan::build).
  [[nodiscard]] static StatusOr<BandPlanner> build(const core::ScheduledPlan& plan,
                                                   std::uint32_t shards);

  [[nodiscard]] const BandPlan& bands() const noexcept { return bands_; }
  [[nodiscard]] const core::ScheduledPlan& plan() const noexcept { return *plan_; }

  /// Shard s's rows of pass 1 / 2 / 3. Pass 1 and 3 run over the row
  /// band of the rows x cols view; pass 2 over the column band of the
  /// transposed cols x rows view.
  [[nodiscard]] BandPassView pass1(std::uint32_t shard) const noexcept {
    return slice(plan_->pass1(), bands_.row_band(shard));
  }
  [[nodiscard]] BandPassView pass2(std::uint32_t shard) const noexcept {
    return slice(plan_->pass2(), bands_.col_band(shard));
  }
  [[nodiscard]] BandPassView pass3(std::uint32_t shard) const noexcept {
    return slice(plan_->pass3(), bands_.row_band(shard));
  }

 private:
  BandPlanner(const core::ScheduledPlan& plan, BandPlan bands)
      : plan_(&plan), bands_(std::move(bands)) {}

  [[nodiscard]] static BandPassView slice(const core::RowScheduleSet& set,
                                          const BandRange& band) noexcept {
    const std::uint64_t offset = band.begin * set.cols;
    const std::uint64_t len = band.rows() * set.cols;
    return BandPassView{
        .rows = band.rows(),
        .cols = set.cols,
        .phat = std::span<const std::uint16_t>(set.phat.data() + offset, len),
        .q = std::span<const std::uint16_t>(set.q.data() + offset, len),
    };
  }

  const core::ScheduledPlan* plan_ = nullptr;
  BandPlan bands_;
};

/// Extract the round-1 block (src -> dst) from shard src's pass-1
/// output `y_local` (its row band of the rows x cols view, row-major)
/// into `block` (row-major, band_rows(src) x col_rows(dst) entries).
void extract_block_round1(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> y_local,
                          std::span<std::uint32_t> block);

/// Scatter a round-1 block from `src` into shard dst's slice of the
/// transposed view `z_local` (col_band(dst).rows() x rows, row-major):
/// the receive side of transpose 1.
void scatter_block_round1(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> block,
                          std::span<std::uint32_t> z_local);

/// Extract the round-2 block (src -> dst) from shard src's pass-2
/// output `w_local` (its column band of the cols x rows view,
/// row-major) into `block` (row-major, col_rows(src) x band_rows(dst)).
void extract_block_round2(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> w_local,
                          std::span<std::uint32_t> block);

/// Scatter a round-2 block from `src` into shard dst's pass-3 input
/// `x_local` (band_rows(dst) x cols, row-major): the receive side of
/// transpose 2.
void scatter_block_round2(const BandPlan& plan, std::uint32_t src, std::uint32_t dst,
                          std::span<const std::uint32_t> block,
                          std::span<std::uint32_t> x_local);

}  // namespace hmm::runtime
