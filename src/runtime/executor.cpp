#include "runtime/executor.hpp"

#include <cstdio>
#include <limits>
#include <string>

namespace hmm::runtime {
namespace {

/// Teardown-stall warning, rate-limited to one line per second
/// process-wide so a fleet of executors draining slowly can't flood
/// stderr.
void warn_drain_stalled(std::uint64_t still_in_flight, double waited_seconds) {
  using clock = std::chrono::steady_clock;
  static std::atomic<std::int64_t> last_log_ns{std::numeric_limits<std::int64_t>::min()};
  const std::int64_t now_ns = clock::now().time_since_epoch().count();
  std::int64_t prev = last_log_ns.load(std::memory_order_relaxed);
  if (now_ns - prev < 1'000'000'000 ||
      !last_log_ns.compare_exchange_strong(prev, now_ns, std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr,
               "[hmm] warning: Executor teardown still draining %llu in-flight request(s) "
               "after %.1f s (stalled worker?)\n",
               static_cast<unsigned long long>(still_in_flight), waited_seconds);
}

/// Slow-request log, rate-limited to one line per second process-wide
/// (same discipline as the drain warning): a tail-latency storm must
/// not turn the log into its own bottleneck.
bool slow_log_permitted() {
  using clock = std::chrono::steady_clock;
  constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::min();
  static std::atomic<std::int64_t> last_log_ns{kNever};
  const std::int64_t now_ns = clock::now().time_since_epoch().count();
  std::int64_t prev = last_log_ns.load(std::memory_order_relaxed);
  // `prev == kNever` must short-circuit: `now_ns - kNever` overflows.
  const bool due = prev == kNever || now_ns - prev >= 1'000'000'000;
  return due && last_log_ns.compare_exchange_strong(prev, now_ns, std::memory_order_relaxed);
}

void log_slow_request(std::uint64_t trace_id, const PhaseBreakdown& phases) {
  if (!slow_log_permitted()) return;
  std::string line = "[hmm] slow request trace=";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx total=%.3f ms |",
                static_cast<unsigned long long>(trace_id),
                static_cast<double>(phases.total_ns()) / 1e6);
  line += buf;
  for (Phase p : all_phases()) {
    if (!phases.touched(p)) continue;
    std::snprintf(buf, sizeof(buf), " %s=%.3fms", std::string(to_string(p)).c_str(),
                  static_cast<double>(phases.ns[static_cast<std::size_t>(p)]) / 1e6);
    line += buf;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

Executor::Executor(util::ThreadPool& pool, ServiceMetrics* metrics, Config config)
    : pool_(pool),
      metrics_(metrics),
      config_(config),
      buffer_pool_(config.pool != nullptr ? config.pool : &util::BufferPool::global()) {
  if (config_.batch.enabled()) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

void Executor::dispatch_group(std::shared_ptr<BatchGroupBase> group) {
  try {
    pool_.submit_task([this, group] { group->run(*this); });
  } catch (...) {
    // Enqueue alloc failure: the batch will never run, so resolve every
    // gathered item now (each still holds an admission slot).
    group->refuse_all(*this, Status(StatusCode::kUnavailable, "failed to enqueue batch"));
  }
}

void Executor::flusher_loop() {
  std::unique_lock lock(batch_mutex_);
  for (;;) {
    if (flusher_stop_ && gathering_.empty()) return;
    if (gathering_.empty()) {
      batch_cv_.wait(lock, [this] { return flusher_stop_ || !gathering_.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    auto earliest = std::chrono::steady_clock::time_point::max();
    std::vector<std::shared_ptr<BatchGroupBase>> due;
    for (auto it = gathering_.begin(); it != gathering_.end();) {
      // On stop, every remaining group is due: drain-before-join keeps
      // wait_idle() (and therefore the destructor) from blocking on
      // items that would otherwise gather forever.
      if (flusher_stop_ || it->second->flush_at <= now) {
        due.push_back(std::move(it->second));
        it = gathering_.erase(it);
      } else {
        earliest = std::min(earliest, it->second->flush_at);
        ++it;
      }
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& group : due) dispatch_group(std::move(group));
      lock.lock();
      continue;
    }
    batch_cv_.wait_until(lock, earliest,
                         [this] { return flusher_stop_; });
  }
}

void Executor::stop_flusher() {
  if (!flusher_.joinable()) return;
  {
    std::lock_guard lock(batch_mutex_);
    flusher_stop_ = true;
  }
  batch_cv_.notify_all();
  flusher_.join();
}

void Executor::finalize_request(const SubmitOptions& opts) noexcept {
  if (!opts.phases) return;
  if (metrics_) metrics_->record_phases(*opts.phases);
  const auto threshold = config_.slow_log_threshold;
  if (threshold.count() <= 0) return;
  const auto threshold_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(threshold).count());
  if (opts.phases->total_ns() >= threshold_ns) {
    log_slow_request(opts.trace_id, *opts.phases);
  }
}

Executor::~Executor() {
  stop_flusher();  // flushes gathering batches so the drain below terminates
  constexpr auto kWarnAfter = std::chrono::seconds(2);
  if (!wait_idle_for(kWarnAfter)) {
    warn_drain_stalled(in_flight(), std::chrono::duration<double>(kWarnAfter).count());
    wait_idle();  // tasks hold caller-owned spans: draining is mandatory
  }
}

void Executor::wait_idle() {
  if (pool_.on_worker_thread()) {
    // A request task waiting for the whole executor to drain would wait
    // for itself. Nothing in this subsystem does that, but fail loudly
    // rather than hang if a caller ever tries.
    HMM_CHECK_MSG(false, "Executor::wait_idle() called from a pool worker task");
  }
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

bool Executor::wait_idle_for(std::chrono::nanoseconds timeout) {
  if (pool_.on_worker_thread()) {
    HMM_CHECK_MSG(false, "Executor::wait_idle_for() called from a pool worker task");
  }
  std::unique_lock lock(idle_mutex_);
  return idle_cv_.wait_for(lock, timeout, [this] {
    return in_flight_.load(std::memory_order_acquire) == 0;
  });
}

Status Executor::admit(std::chrono::steady_clock::time_point deadline,
                       std::uint64_t& depth_out) {
  std::unique_lock lock(idle_mutex_);
  if (!has_slot_locked()) {
    if (config_.admission == Admission::kReject) {
      if (metrics_) metrics_->record_rejected();
      return Status(StatusCode::kResourceExhausted, "in-flight request bound reached");
    }
    const auto fits = [this] { return has_slot_locked(); };
    if (deadline == kNoDeadline) {
      idle_cv_.wait(lock, fits);
    } else if (!idle_cv_.wait_until(lock, deadline, fits)) {
      if (metrics_) metrics_->record_deadline_exceeded();
      return Status(StatusCode::kDeadlineExceeded, "deadline expired while blocked at admission");
    }
  }
  depth_out = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return Status::ok();
}

std::uint64_t Executor::admit_blocking() {
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return has_slot_locked(); });
  return in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
}

}  // namespace hmm::runtime
