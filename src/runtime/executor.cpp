#include "runtime/executor.hpp"

namespace hmm::runtime {

void Executor::wait_idle() {
  if (pool_.on_worker_thread()) {
    // A request task waiting for the whole executor to drain would wait
    // for itself. Nothing in this subsystem does that, but fail loudly
    // rather than hang if a caller ever tries.
    HMM_CHECK_MSG(false, "Executor::wait_idle() called from a pool worker task");
  }
  std::unique_lock lock(idle_mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_.load(std::memory_order_acquire) == 0; });
}

}  // namespace hmm::runtime
