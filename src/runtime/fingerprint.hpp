#pragma once
/// \file fingerprint.hpp
/// \brief 64-bit cache keys for compiled permutation plans.
///
/// A compiled `core::OfflinePermuter` is fully determined by
///   (permutation mapping, machine parameters, strategy, element width),
/// so the plan cache keys entries by an FNV-1a hash over exactly those
/// inputs. The hash is seeded with a format-version salt so a change to
/// the key schema can never silently alias keys of an older scheme.
///
/// FNV-1a is not collision-free; the cache treats the fingerprint as an
/// identity (no stored-key comparison) because a 64-bit hash over the
/// handful of distinct permutations a service compiles makes accidental
/// collision astronomically unlikely (~2^-64 per pair). The fingerprint
/// of the *permutation words* dominates the input, so two permutations
/// differing in a single image get unrelated keys.

#include <cstdint>
#include <span>

#include "model/machine.hpp"
#include "perm/permutation.hpp"

namespace hmm::runtime {

/// Streaming FNV-1a (64-bit). Deterministic across platforms for the
/// integer-typed update helpers (values are fed little-endian).
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ull;
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;

  constexpr Fnv1a64() = default;

  constexpr Fnv1a64& update_byte(std::uint8_t b) noexcept {
    state_ = (state_ ^ b) * kPrime;
    return *this;
  }

  constexpr Fnv1a64& update_u32(std::uint32_t v) noexcept {
    for (int i = 0; i < 4; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  constexpr Fnv1a64& update_u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    return *this;
  }

  Fnv1a64& update_u32_span(std::span<const std::uint32_t> words) noexcept;

  [[nodiscard]] constexpr std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// Strongly typed wrapper so a fingerprint can't be confused with a
/// byte count or an index in an interface.
struct Fingerprint {
  std::uint64_t value = 0;

  friend constexpr bool operator==(Fingerprint, Fingerprint) = default;
};

/// Hash of the permutation mapping alone (no machine / strategy).
[[nodiscard]] Fingerprint fingerprint_permutation(const perm::Permutation& p);

/// Same hash over a raw mapping span (host order). This *is* the wire
/// plan id: SUBMIT_PLAN answers it and the router consistent-hashes on
/// it, so it must agree bit-for-bit with `fingerprint_permutation` of a
/// Permutation built from the same words (tested as such).
[[nodiscard]] Fingerprint fingerprint_mapping(std::span<const std::uint32_t> words);

/// Full plan-cache key: permutation words + machine parameters +
/// strategy tag + element width in bytes. `strategy_tag` is the integer
/// value of `core::Strategy` (kept as an int here so this header does
/// not depend on core/).
[[nodiscard]] Fingerprint fingerprint_plan_key(const perm::Permutation& p,
                                               const model::MachineParams& machine,
                                               int strategy_tag, std::uint32_t elem_bytes);

}  // namespace hmm::runtime
