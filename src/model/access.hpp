#pragma once
/// \file access.hpp
/// \brief Classification of memory-access rounds (ICPP 2013, Section III).
///
/// A *round* is one memory access per thread. A warp's round is
/// - **coalesced** (global memory) if all its addresses fall in a single
///   address group,
/// - **conflict-free** (shared memory) if its addresses hit pairwise
///   distinct banks,
/// - **casual** otherwise — no guarantee, pays one pipeline stage per
///   distinct address group (UMM) or per bank-conflict level (DMM).

#include <cstdint>
#include <span>
#include <string_view>

#include "model/machine.hpp"

namespace hmm::model {

/// Direction of a memory round (only affects bookkeeping/labels).
enum class Dir : std::uint8_t { kRead, kWrite };

/// Memory space a round targets.
enum class Space : std::uint8_t { kGlobal, kShared };

/// Static classification of a round (what the algorithm *guarantees*).
enum class AccessClass : std::uint8_t { kCoalesced, kConflictFree, kCasual };

std::string_view to_string(Dir d) noexcept;
std::string_view to_string(Space s) noexcept;
std::string_view to_string(AccessClass c) noexcept;

/// Sentinel for "this thread does not participate in the round".
inline constexpr std::uint64_t kNoAccess = ~0ull;

/// Number of UMM pipeline stages a warp's addresses occupy: the number
/// of distinct address groups touched (paper: Fig. 3 bottom).
std::uint32_t umm_stages(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

/// Number of DMM pipeline stages a warp's addresses occupy: the maximum
/// number of requests aimed at a single bank (paper: Fig. 3 top).
std::uint32_t dmm_stages(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

/// True iff the warp's global round is coalesced (<= 1 address group).
bool is_coalesced(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

/// True iff the warp's shared round is conflict-free (distinct banks).
bool is_conflict_free(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

}  // namespace hmm::model
