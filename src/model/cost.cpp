#include "model/cost.hpp"

#include <algorithm>

namespace hmm::model {
namespace {

std::uint64_t warps(std::uint64_t n, const MachineParams& p) {
  HMM_CHECK_MSG(n % p.width == 0, "thread count must be a multiple of the width");
  return n / p.width;
}

}  // namespace

std::uint64_t coalesced_round_time(std::uint64_t n, const MachineParams& p,
                                   std::uint32_t words) {
  // words*n/w pipeline stages, each one time unit, then the last
  // request drains through the remaining l-1 pipeline registers.
  return words * warps(n, p) + p.latency - 1;
}

std::uint64_t casual_round_time(std::uint64_t distribution, const MachineParams& p) {
  return distribution + p.latency - 1;
}

std::uint64_t conflict_free_round_time(std::uint64_t n, const MachineParams& p,
                                       std::uint32_t words) {
  // The d DMMs work concurrently on n/d threads each; the last stage
  // drains through the shared pipeline's remaining L-1 registers
  // (L = 1 in the paper's simplification, making this just the stages).
  const std::uint64_t per_dmm = util::ceil_div(n, p.dmms);
  return words * util::ceil_div(per_dmm, p.width) + p.shared_latency - 1;
}

std::uint64_t d_designated_time(std::uint64_t n, std::uint64_t distribution,
                                const MachineParams& p, std::uint32_t words) {
  // Coalesced index read (32-bit, words=1) + coalesced data read +
  // casual data write.
  return coalesced_round_time(n, p, 1) + coalesced_round_time(n, p, words) +
         casual_round_time(distribution, p);
}

std::uint64_t s_designated_time(std::uint64_t n, std::uint64_t inv_distribution,
                                const MachineParams& p, std::uint32_t words) {
  return coalesced_round_time(n, p, 1) + coalesced_round_time(n, p, words) +
         casual_round_time(inv_distribution, p);
}

std::uint64_t transpose_time(std::uint64_t n, const MachineParams& p, std::uint32_t words) {
  return 2 * coalesced_round_time(n, p, words) + 2 * conflict_free_round_time(n, p, words);
}

std::uint64_t row_wise_time(std::uint64_t n, const MachineParams& p, std::uint32_t words) {
  // Global: data in + data out at `words`, the two 16-bit schedule
  // arrays at words = 1. Shared: 4 conflict-free data rounds.
  return 2 * coalesced_round_time(n, p, words) + 2 * coalesced_round_time(n, p, 1) +
         4 * conflict_free_round_time(n, p, words);
}

std::uint64_t column_wise_time(std::uint64_t n, const MachineParams& p, std::uint32_t words) {
  return 2 * transpose_time(n, p, words) + row_wise_time(n, p, words);
}

std::uint64_t scheduled_time(std::uint64_t n, const MachineParams& p, std::uint32_t words) {
  return 2 * row_wise_time(n, p, words) + column_wise_time(n, p, words);
}

std::uint64_t lower_bound(std::uint64_t n, const MachineParams& p) {
  return std::max<std::uint64_t>(2 * warps(n, p), p.latency);
}

std::uint64_t row_wise_time_capped(std::uint64_t rows, std::uint64_t cols,
                                   const MachineParams& p, std::uint32_t words,
                                   std::uint64_t block_cap) {
  HMM_CHECK(block_cap % p.width == 0);
  const std::uint64_t waves = util::ceil_div(cols, block_cap);
  const std::uint64_t threads = rows * std::min(cols, block_cap);
  auto per_global = [&](std::uint32_t w_words) {
    return waves * (w_words * threads / p.width + p.latency - 1);
  };
  auto per_shared = [&](std::uint32_t w_words) {
    return waves * (w_words * util::ceil_div(util::ceil_div(threads, p.dmms), p.width) +
                    p.shared_latency - 1);
  };
  return 2 * per_global(words) + 2 * per_global(1) + 4 * per_shared(words);
}

std::uint64_t scheduled_time_capped(std::uint64_t n, const MachineParams& p,
                                    std::uint32_t words, std::uint64_t block_cap) {
  // Matrix shape per layout.cpp's rule: cols gets the ceiling half.
  const unsigned k = util::log2_exact(n);
  const std::uint64_t cols = 1ull << ((k + 1) / 2);
  const std::uint64_t rows = n / cols;
  return row_wise_time_capped(rows, cols, p, words, block_cap) +
         row_wise_time_capped(cols, rows, p, words, block_cap) +
         row_wise_time_capped(rows, cols, p, words, block_cap) +
         2 * transpose_time(n, p, words);
}

}  // namespace hmm::model
