#include "model/access.hpp"

#include <algorithm>
#include <array>

namespace hmm::model {

std::string_view to_string(Dir d) noexcept { return d == Dir::kRead ? "read" : "write"; }

std::string_view to_string(Space s) noexcept {
  return s == Space::kGlobal ? "global" : "shared";
}

std::string_view to_string(AccessClass c) noexcept {
  switch (c) {
    case AccessClass::kCoalesced: return "coalesced";
    case AccessClass::kConflictFree: return "conflict-free";
    case AccessClass::kCasual: return "casual";
  }
  return "?";
}

std::uint32_t umm_stages(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  // Bounded by width x element words (<= 256 in practice); a tiny
  // insertion set beats hashing at this scale.
  std::array<std::uint64_t, 256> groups{};
  HMM_DCHECK(warp_addrs.size() <= groups.size());
  std::uint32_t count = 0;
  for (std::uint64_t addr : warp_addrs) {
    if (addr == kNoAccess) continue;
    const std::uint64_t g = group_of(addr, width);
    bool seen = false;
    for (std::uint32_t i = 0; i < count; ++i) {
      if (groups[i] == g) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      HMM_DCHECK(count < groups.size());
      groups[count++] = g;
    }
  }
  return count;
}

std::uint32_t dmm_stages(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  std::array<std::uint32_t, 64> load{};
  HMM_DCHECK(width <= load.size());
  std::uint32_t max_load = 0;
  for (std::uint64_t addr : warp_addrs) {
    if (addr == kNoAccess) continue;
    const std::uint32_t b = static_cast<std::uint32_t>(bank_of(addr, width));
    max_load = std::max(max_load, ++load[b]);
  }
  return max_load;
}

bool is_coalesced(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  return umm_stages(warp_addrs, width) <= 1;
}

bool is_conflict_free(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  return dmm_stages(warp_addrs, width) <= 1;
}

}  // namespace hmm::model
