#pragma once
/// \file machine.hpp
/// \brief Parameters of the DMM / UMM / HMM memory-machine models
///        (Kasagi, Nakano, Ito, ICPP 2013, Section II).
///
/// The Hierarchical Memory Machine consists of `d` DMMs (streaming
/// multiprocessors with `w`-bank shared memories, latency 1) and a
/// single UMM (the global memory with `w`-wide address groups and
/// latency `l`). Threads are grouped into warps of `w`.

#include <cstdint>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::model {

/// Model parameters shared by the analytical cost model and the
/// operational simulator.
struct MachineParams {
  /// Width: number of shared-memory banks, number of cells per global
  /// address group, and number of threads per warp. Power of two.
  std::uint32_t width = 32;

  /// Global-memory (UMM) access latency in time units.
  std::uint32_t latency = 200;

  /// Shared-memory (DMM) access latency in time units. The paper fixes
  /// this to 1 "for simplicity, although we may use parameter L to
  /// denote the latency of the shared memory" — this is that L.
  std::uint32_t shared_latency = 1;

  /// Number of DMMs (streaming multiprocessors). Power of two.
  std::uint32_t dmms = 8;

  /// Shared-memory capacity per DMM in bytes (GTX-680: 48 KiB).
  std::uint64_t shared_bytes = 48 * 1024;

  /// Validate invariants; aborts on nonsense configurations.
  void validate() const {
    HMM_CHECK_MSG(util::is_pow2(width), "width must be a power of two");
    HMM_CHECK_MSG(util::is_pow2(dmms), "dmms must be a power of two");
    HMM_CHECK_MSG(latency >= 1, "latency must be >= 1");
    HMM_CHECK_MSG(shared_latency >= 1, "shared latency must be >= 1");
    HMM_CHECK_MSG(shared_bytes >= static_cast<std::uint64_t>(width) * sizeof(double),
                  "shared memory must hold at least one row tile");
  }

  /// GTX-680-like configuration used throughout the paper's evaluation:
  /// width 32 (warp size / bank count), 8 SMX units, 48 KiB shared
  /// memory, and a few-hundred-cycle global latency.
  static constexpr MachineParams gtx680() {
    return MachineParams{.width = 32, .latency = 300, .dmms = 8, .shared_bytes = 48 * 1024};
  }

  /// A tiny configuration for exhaustive unit tests and the Fig. 3 demo.
  static constexpr MachineParams tiny(std::uint32_t w = 4, std::uint32_t l = 5,
                                      std::uint32_t d = 2) {
    return MachineParams{.width = w, .latency = l, .dmms = d, .shared_bytes = 64 * 1024};
  }

  friend bool operator==(const MachineParams&, const MachineParams&) = default;
};

/// Element width in machine words (the model's word is 32-bit, the
/// paper's float): 1 for <= 4-byte elements, sizeof(T)/4 above.
template <class T>
constexpr std::uint32_t words_of() noexcept {
  return sizeof(T) <= 4 ? 1u : static_cast<std::uint32_t>(sizeof(T) / 4);
}

/// Shared-memory bank of element address \p addr (DMM): `addr mod w`.
constexpr std::uint64_t bank_of(std::uint64_t addr, std::uint32_t width) noexcept {
  return addr & (width - 1);
}

/// Global-memory address group of element address \p addr (UMM): `addr / w`.
constexpr std::uint64_t group_of(std::uint64_t addr, std::uint32_t width) noexcept {
  return addr >> util::log2_floor(width);
}

}  // namespace hmm::model
