#pragma once
/// \file cost.hpp
/// \brief Closed-form running times on the HMM (ICPP 2013, Table I,
///        Lemmas 1–4, Theorem 9) and memory-access round inventories.
///
/// Conventions used throughout (matching the paper's accounting):
/// * `n` threads, one element per thread per round, `n` a multiple of
///   `w`; rounds are globally synchronized and pipelined internally.
/// * A **coalesced global** round by `n` threads sends `n/w` pipeline
///   stages and completes after the last warp's latency:
///   `n/w + l - 1` time units (Lemma 1).
/// * A **casual global** round whose warps collectively occupy `D`
///   pipeline stages (its *distribution*) takes `D + l - 1` time units.
/// * A **conflict-free shared** round is executed concurrently by the
///   `d` DMMs, each handling `n/d` threads with latency 1:
///   `n/(d*w)` time units (Lemma 1 with the HMM's per-DMM thread share).

#include <cstdint>

#include "model/machine.hpp"

namespace hmm::model {

/// Memory-access round inventory of an algorithm — one row of Table I.
struct RoundCounts {
  std::uint32_t casual_read_global = 0;
  std::uint32_t casual_write_global = 0;
  std::uint32_t coalesced_read = 0;
  std::uint32_t coalesced_write = 0;
  std::uint32_t conflict_free_read = 0;
  std::uint32_t conflict_free_write = 0;

  /// Total rounds touching the global memory.
  [[nodiscard]] constexpr std::uint32_t global_rounds() const noexcept {
    return casual_read_global + casual_write_global + coalesced_read + coalesced_write;
  }
  /// Total rounds touching shared memories.
  [[nodiscard]] constexpr std::uint32_t shared_rounds() const noexcept {
    return conflict_free_read + conflict_free_write;
  }
  /// Every memory-access round (the paper's "32 rounds" for scheduled).
  [[nodiscard]] constexpr std::uint32_t total_rounds() const noexcept {
    return global_rounds() + shared_rounds();
  }

  friend constexpr bool operator==(const RoundCounts&, const RoundCounts&) = default;
  friend constexpr RoundCounts operator+(RoundCounts a, const RoundCounts& b) noexcept {
    a.casual_read_global += b.casual_read_global;
    a.casual_write_global += b.casual_write_global;
    a.coalesced_read += b.coalesced_read;
    a.coalesced_write += b.coalesced_write;
    a.conflict_free_read += b.conflict_free_read;
    a.conflict_free_write += b.conflict_free_write;
    return a;
  }
};

/// Table I round inventories.
namespace rounds {
inline constexpr RoundCounts d_designated{.casual_write_global = 1, .coalesced_read = 2};
inline constexpr RoundCounts s_designated{
    .casual_read_global = 1, .coalesced_read = 1, .coalesced_write = 1};
inline constexpr RoundCounts transpose{.coalesced_read = 1,
                                       .coalesced_write = 1,
                                       .conflict_free_read = 1,
                                       .conflict_free_write = 1};
inline constexpr RoundCounts row_wise{.coalesced_read = 3,
                                      .coalesced_write = 1,
                                      .conflict_free_read = 2,
                                      .conflict_free_write = 2};
inline constexpr RoundCounts column_wise = transpose + row_wise + transpose;
inline constexpr RoundCounts scheduled = row_wise + column_wise + row_wise;
}  // namespace rounds

/// `words` below is the element width in machine words (1 = 32-bit
/// elements, the paper's float case; 2 = double; 4 = complex<double>).
/// A coalesced warp touches `words` address groups; a scattering warp
/// touches one group per element regardless (each aligned element sits
/// inside one group), so the casual stage count for e-word elements is
/// the distribution at the *effective width* w/e: d_{w/e}(P).

/// Time units of one coalesced global round by `n` threads (Lemma 1):
/// `words*n/w + l - 1`.
std::uint64_t coalesced_round_time(std::uint64_t n, const MachineParams& p,
                                   std::uint32_t words = 1);

/// Time units of one casual global round whose total stage count
/// (distribution at the effective width) is `D` (Lemma 4's accounting).
std::uint64_t casual_round_time(std::uint64_t distribution, const MachineParams& p);

/// Time units of one conflict-free shared round by `n` threads spread
/// over the machine's `d` DMMs (Lemma 1, latency 1): `words*n/(dw)`.
std::uint64_t conflict_free_round_time(std::uint64_t n, const MachineParams& p,
                                       std::uint32_t words = 1);

/// Lemma 4: D-designated time — coalesced read of the 32-bit index
/// array, coalesced read of the data, casual write of the data.
/// `distribution` must be d_{w/words}(P).
std::uint64_t d_designated_time(std::uint64_t n, std::uint64_t distribution,
                                const MachineParams& p, std::uint32_t words = 1);

/// Lemma 4 (mirror): S-designated time; `inv_distribution` = d_{w/words}(P^-1).
std::uint64_t s_designated_time(std::uint64_t n, std::uint64_t inv_distribution,
                                const MachineParams& p, std::uint32_t words = 1);

/// Lemma 5: transpose time `2(words*n/w + l - 1) + 2 words*n/(dw)`.
std::uint64_t transpose_time(std::uint64_t n, const MachineParams& p,
                             std::uint32_t words = 1);

/// Lemma 7: row-wise permutation time — 2 data + 2 schedule coalesced
/// global rounds plus 4 conflict-free shared rounds (schedule arrays
/// are 16-bit, modeled at words = 1).
std::uint64_t row_wise_time(std::uint64_t n, const MachineParams& p, std::uint32_t words = 1);

/// Lemma 8: column-wise permutation time (transpose + row-wise + transpose).
std::uint64_t column_wise_time(std::uint64_t n, const MachineParams& p,
                               std::uint32_t words = 1);

/// Theorem 9: scheduled permutation time — independent of the
/// permutation; `16(n/w + l - 1) + 16 n/(dw)` at words = 1.
std::uint64_t scheduled_time(std::uint64_t n, const MachineParams& p,
                             std::uint32_t words = 1);

/// The paper's lower bound: any permutation of `n` elements takes at
/// least `max(2n/w, l)` time units on the HMM (all elements read and
/// written, `w` per time unit; plus one full latency).
std::uint64_t lower_bound(std::uint64_t n, const MachineParams& p);

/// Row-wise pass time under a CUDA-style block-size cap (the paper's
/// Section VIII note: blocks hold at most 1024 threads, so for rows
/// longer than the cap each thread serves m/cap elements in sequential
/// waves, and — because the model forbids a thread from issuing its
/// next request before the previous completes — every wave pays the
/// full latency).
std::uint64_t row_wise_time_capped(std::uint64_t rows, std::uint64_t cols,
                                   const MachineParams& p, std::uint32_t words,
                                   std::uint64_t block_cap);

/// Scheduled permutation time under the block cap: the three row-wise
/// passes wave-serialize; the transpose's w^2-thread tiles are always
/// under the cap.
std::uint64_t scheduled_time_capped(std::uint64_t n, const MachineParams& p,
                                    std::uint32_t words, std::uint64_t block_cap);

}  // namespace hmm::model
