#include "util/table.hpp"
#include "model/machine.hpp"

#include <sstream>
#include <string>

namespace hmm::model {

/// Human-readable one-line summary (used by example binaries).
std::string describe(const MachineParams& p) {
  std::ostringstream os;
  os << "HMM{width=" << p.width << ", latency=" << p.latency << ", dmms=" << p.dmms
     << ", shared=" << hmm::util::format_bytes(p.shared_bytes) << "/DMM}";
  return os.str();
}

}  // namespace hmm::model
