#include "graph/coloring.hpp"

#include <algorithm>
#include <numeric>

#include "graph/euler_split.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::graph {

EdgeColoring color_matching_peel(const BipartiteMultigraph& g) {
  const auto degree = g.regular_degree();
  HMM_CHECK_MSG(degree.has_value(), "matching-peel coloring requires a regular graph");

  EdgeColoring result;
  result.colors = std::max<std::uint32_t>(1, *degree);
  result.color.assign(g.edge_count(), 0);

  std::vector<std::uint32_t> remaining(g.edge_count());
  std::iota(remaining.begin(), remaining.end(), 0u);

  for (std::uint32_t c = 0; c < *degree; ++c) {
    const Matching m = hopcroft_karp(g, remaining);
    // A regular bipartite multigraph always has a perfect matching
    // (König); anything less means the input was not regular.
    HMM_CHECK_MSG(m.size == g.left_count(), "regular graph must admit a perfect matching");
    std::vector<std::uint8_t> taken(g.edge_count(), 0);
    for (std::uint32_t u = 0; u < g.left_count(); ++u) {
      const std::uint32_t e = m.left_edge[u];
      result.color[e] = c;
      taken[e] = 1;
    }
    std::erase_if(remaining, [&](std::uint32_t id) { return taken[id] != 0; });
  }
  HMM_DCHECK(remaining.empty());
  return result;
}

EdgeColoring color_alternating_path(const BipartiteMultigraph& g) {
  // Max degree over both sides = number of colors (König's theorem).
  std::vector<std::uint32_t> ldeg(g.left_count(), 0), rdeg(g.right_count(), 0);
  for (const Edge& e : g.edges()) {
    ++ldeg[e.u];
    ++rdeg[e.v];
  }
  std::uint32_t delta = 1;
  for (std::uint32_t d : ldeg) delta = std::max(delta, d);
  for (std::uint32_t d : rdeg) delta = std::max(delta, d);

  EdgeColoring result;
  result.colors = delta;
  result.color.assign(g.edge_count(), ~0u);

  constexpr std::uint32_t kNone = ~0u;
  // at[node * delta + color] = edge id using `color` at `node`.
  // Left nodes occupy [0, L), right nodes [L, L+R).
  const std::uint32_t total_nodes = g.left_count() + g.right_count();
  std::vector<std::uint32_t> at(static_cast<std::size_t>(total_nodes) * delta, kNone);

  auto slot = [&](std::uint32_t node, std::uint32_t color) -> std::uint32_t& {
    return at[static_cast<std::size_t>(node) * delta + color];
  };
  auto free_color = [&](std::uint32_t node) {
    for (std::uint32_t c = 0; c < delta; ++c) {
      if (slot(node, c) == kNone) return c;
    }
    HMM_CHECK_MSG(false, "node has no free color; degree exceeds delta");
    return kNone;
  };
  auto other_endpoint = [&](std::uint32_t edge_id, std::uint32_t node) -> std::uint32_t {
    const Edge& e = g.edge(edge_id);
    return node < g.left_count() ? g.left_count() + e.v : e.u;
  };

  std::vector<std::uint32_t> path;
  for (std::uint32_t id = 0; id < g.edge_count(); ++id) {
    const std::uint32_t u = g.edge(id).u;
    const std::uint32_t v = g.left_count() + g.edge(id).v;
    const std::uint32_t alpha = free_color(u);
    const std::uint32_t beta = free_color(v);
    if (alpha != beta && slot(u, beta) != kNone) {
      // Flip the beta/alpha-alternating path starting at u. Bipartiteness
      // guarantees it never reaches v, so beta becomes free at u while
      // staying free at v (König's classical argument).
      path.clear();
      std::uint32_t node = u;
      std::uint32_t want = beta;
      while (slot(node, want) != kNone) {
        const std::uint32_t e = slot(node, want);
        path.push_back(e);
        node = other_endpoint(e, node);
        want = (want == beta) ? alpha : beta;
      }
      HMM_DCHECK(node != v);
      for (std::uint32_t e : path) {
        const std::uint32_t old = result.color[e];
        const std::uint32_t a = g.edge(e).u;
        const std::uint32_t b = g.left_count() + g.edge(e).v;
        slot(a, old) = kNone;
        slot(b, old) = kNone;
      }
      for (std::uint32_t e : path) {
        const std::uint32_t old = result.color[e];
        const std::uint32_t neu = (old == beta) ? alpha : beta;
        result.color[e] = neu;
        const std::uint32_t a = g.edge(e).u;
        const std::uint32_t b = g.left_count() + g.edge(e).v;
        slot(a, neu) = e;
        slot(b, neu) = e;
      }
    }
    const std::uint32_t c = (slot(u, beta) == kNone) ? beta : alpha;
    HMM_DCHECK(slot(u, c) == kNone && slot(v, c) == kNone);
    result.color[id] = c;
    slot(u, c) = id;
    slot(v, c) = id;
  }
  return result;
}

EdgeColoring color_edges(const BipartiteMultigraph& g, ColoringAlgorithm algo) {
  switch (algo) {
    case ColoringAlgorithm::kEulerSplit:
      return color_euler_split(g);
    case ColoringAlgorithm::kMatchingPeel:
      return color_matching_peel(g);
    case ColoringAlgorithm::kAlternatingPath:
      return color_alternating_path(g);
    case ColoringAlgorithm::kAuto: {
      const auto degree = g.regular_degree();
      if (degree && (*degree == 0 || util::is_pow2(*degree))) {
        return color_euler_split(g);
      }
      if (degree) return color_matching_peel(g);
      return color_alternating_path(g);
    }
  }
  HMM_CHECK_MSG(false, "unreachable");
  return {};
}

}  // namespace hmm::graph
