#include "graph/euler_split.hpp"

#include <numeric>

#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::graph {
namespace {

/// CSR adjacency over (left + right) nodes for the subgraph formed by a
/// group of edges. Slots hold *group-local* edge indices so all scratch
/// is proportional to the group, not the whole graph.
struct LevelAdjacency {
  std::vector<std::uint32_t> offset;  // per node, into slots
  std::vector<std::uint32_t> slots;   // group-local edge indices
  std::vector<std::uint32_t> cursor;  // next unexplored slot per node

  LevelAdjacency(const BipartiteMultigraph& g, const std::vector<std::uint32_t>& edge_ids) {
    const std::uint32_t nodes = g.left_count() + g.right_count();
    offset.assign(nodes + 1, 0);
    for (std::uint32_t id : edge_ids) {
      const Edge& e = g.edge(id);
      ++offset[e.u + 1];
      ++offset[g.left_count() + e.v + 1];
    }
    std::partial_sum(offset.begin(), offset.end(), offset.begin());
    slots.resize(offset.back());
    std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
    for (std::uint32_t k = 0; k < edge_ids.size(); ++k) {
      const Edge& e = g.edge(edge_ids[k]);
      slots[fill[e.u]++] = k;
      slots[fill[g.left_count() + e.v]++] = k;
    }
    cursor.assign(offset.begin(), offset.end() - 1);
  }
};

}  // namespace

std::vector<std::uint8_t> euler_split_once(const BipartiteMultigraph& g,
                                           const std::vector<std::uint32_t>& edge_ids) {
  std::vector<std::uint8_t> used(edge_ids.size(), 0);
  std::vector<std::uint8_t> half(edge_ids.size(), 0);

  LevelAdjacency adj(g, edge_ids);
  const std::uint32_t left = g.left_count();

  auto other_end = [&](std::uint32_t local, std::uint32_t node) -> std::uint32_t {
    const Edge& e = g.edge(edge_ids[local]);
    return node < left ? left + e.v : e.u;
  };
  auto next_edge = [&](std::uint32_t node) -> std::uint32_t {
    std::uint32_t& cur = adj.cursor[node];
    while (cur < adj.offset[node + 1]) {
      const std::uint32_t local = adj.slots[cur];
      if (!used[local]) return local;
      ++cur;
    }
    return ~0u;
  };

  // Hierholzer over each connected component: the pop order yields the
  // Eulerian circuit (reversed, still a closed walk); assigning
  // alternate walk edges to halves 0/1 balances every node because
  // bipartite circuits have even length.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack;  // (node, incoming local edge)
  std::vector<std::uint32_t> circuit;                          // local edge ids in walk order
  for (std::uint32_t seed = 0; seed < edge_ids.size(); ++seed) {
    if (used[seed]) continue;
    const std::uint32_t start = g.edge(edge_ids[seed]).u;
    circuit.clear();
    stack.clear();
    stack.emplace_back(start, ~0u);
    while (!stack.empty()) {
      const std::uint32_t node = stack.back().first;
      const std::uint32_t e = next_edge(node);
      if (e == ~0u) {
        if (stack.back().second != ~0u) circuit.push_back(stack.back().second);
        stack.pop_back();
      } else {
        used[e] = 1;
        stack.emplace_back(other_end(e, node), e);
      }
    }
    HMM_DCHECK(circuit.size() % 2 == 0);
    for (std::size_t i = 0; i < circuit.size(); ++i) {
      half[circuit[i]] = static_cast<std::uint8_t>(i & 1u);
    }
  }
  return half;
}

EdgeColoring color_euler_split(const BipartiteMultigraph& g) {
  const auto degree = g.regular_degree();
  HMM_CHECK_MSG(degree.has_value(), "euler-split coloring requires a regular graph");
  HMM_CHECK_MSG(*degree == 0 || util::is_pow2(*degree),
                "euler-split coloring requires a power-of-two degree");

  EdgeColoring result;
  result.colors = *degree == 0 ? 1 : *degree;
  result.color.assign(g.edge_count(), 0);
  if (*degree <= 1) return result;

  // Iterative halving: one group of edge ids per color prefix.
  std::vector<std::vector<std::uint32_t>> groups;
  {
    std::vector<std::uint32_t> all(g.edge_count());
    std::iota(all.begin(), all.end(), 0u);
    groups.push_back(std::move(all));
  }
  std::uint32_t group_degree = *degree;
  while (group_degree > 1) {
    std::vector<std::vector<std::uint32_t>> next;
    next.reserve(groups.size() * 2);
    for (auto& group : groups) {
      const auto half = euler_split_once(g, group);
      std::vector<std::uint32_t> a, b;
      a.reserve(group.size() / 2);
      b.reserve(group.size() / 2);
      for (std::uint32_t k = 0; k < group.size(); ++k) {
        (half[k] ? b : a).push_back(group[k]);
      }
      next.push_back(std::move(a));
      next.push_back(std::move(b));
    }
    groups = std::move(next);
    group_degree /= 2;
  }

  HMM_DCHECK(groups.size() == *degree);
  for (std::uint32_t c = 0; c < groups.size(); ++c) {
    for (std::uint32_t id : groups[c]) result.color[id] = c;
  }
  return result;
}

}  // namespace hmm::graph
