#pragma once
/// \file bipartite.hpp
/// \brief Bipartite multigraph: the combinatorial substrate of the
///        scheduled permutation planner.
///
/// The planner builds two families of regular bipartite multigraphs:
/// * the *row graph* (source rows x destination rows, one edge per
///   element, degree = row length), whose König coloring assigns each
///   element its routing column; and
/// * per-row *bank graphs* (source banks x destination banks, degree =
///   row length / width), whose coloring yields conflict-free
///   shared-memory schedules.
///
/// Parallel edges are essential — two elements of a row may share both
/// source and destination bank — hence a multigraph with stable edge ids.

#include <cstdint>
#include <optional>
#include <vector>

namespace hmm::graph {

/// An edge of a bipartite multigraph (left endpoint `u`, right `v`).
struct Edge {
  std::uint32_t u;
  std::uint32_t v;
};

/// Bipartite multigraph with stable edge indices.
class BipartiteMultigraph {
 public:
  BipartiteMultigraph(std::uint32_t left_count, std::uint32_t right_count);

  /// Append an edge and return its id (ids are dense, in insertion order).
  std::uint32_t add_edge(std::uint32_t u, std::uint32_t v);

  /// Reserve storage for `count` edges.
  void reserve(std::size_t count);

  [[nodiscard]] std::uint32_t left_count() const noexcept { return left_; }
  [[nodiscard]] std::uint32_t right_count() const noexcept { return right_; }
  [[nodiscard]] std::uint32_t edge_count() const noexcept {
    return static_cast<std::uint32_t>(edges_.size());
  }
  [[nodiscard]] const Edge& edge(std::uint32_t id) const { return edges_[id]; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Degree of left node `u` / right node `v`.
  [[nodiscard]] std::uint32_t left_degree(std::uint32_t u) const;
  [[nodiscard]] std::uint32_t right_degree(std::uint32_t v) const;

  /// If every node (both sides) has the same degree k, returns k.
  /// Requires left_count == right_count for k > 0.
  [[nodiscard]] std::optional<std::uint32_t> regular_degree() const;

 private:
  std::uint32_t left_;
  std::uint32_t right_;
  std::vector<Edge> edges_;
};

/// A proper edge coloring: `color[e]` in `[0, colors)` such that no two
/// edges sharing a node have the same color.
struct EdgeColoring {
  std::uint32_t colors = 0;
  std::vector<std::uint32_t> color;  ///< indexed by edge id
};

/// True iff `c` is a proper edge coloring of `g`.
bool is_proper_coloring(const BipartiteMultigraph& g, const EdgeColoring& c);

/// True iff `c` is a König coloring of a k-regular graph: proper AND
/// every color class is a perfect matching (size == left_count).
bool is_konig_coloring(const BipartiteMultigraph& g, const EdgeColoring& c);

/// Group edge ids by color (index = color).
std::vector<std::vector<std::uint32_t>> color_classes(const BipartiteMultigraph& g,
                                                      const EdgeColoring& c);

}  // namespace hmm::graph
