#pragma once
/// \file euler_split.hpp
/// \brief König edge coloring by recursive Euler splitting — the fast
///        path used by the permutation planner.
///
/// For a k-regular bipartite multigraph with k a power of two, every
/// node has even degree, so the graph decomposes into Eulerian circuits;
/// assigning alternate circuit edges to two halves yields two
/// (k/2)-regular subgraphs (every circuit in a bipartite graph has even
/// length). Recursing log2(k) times produces a proper k-edge-coloring in
/// O(E log k) time — this is the constructive König's theorem (Thm. 6 of
/// the paper) specialised to the planner's power-of-two degrees.

#include "graph/bipartite.hpp"

namespace hmm::graph {

/// Color a k-regular bipartite multigraph, k a power of two.
/// Aborts if the graph is not regular with power-of-two degree.
EdgeColoring color_euler_split(const BipartiteMultigraph& g);

/// One Euler split of the subgraph formed by `edge_ids`: partition it
/// into two halves such that every node has exactly half its subgraph
/// degree in each (requires even subgraph degrees). Returns the half
/// assignment (0/1) indexed by *position in `edge_ids`*.
/// Exposed for tests and the coloring ablation bench.
std::vector<std::uint8_t> euler_split_once(const BipartiteMultigraph& g,
                                           const std::vector<std::uint32_t>& edge_ids);

}  // namespace hmm::graph
