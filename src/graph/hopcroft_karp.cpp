#include "graph/hopcroft_karp.hpp"

#include <limits>
#include <numeric>
#include <queue>

#include "util/check.hpp"

namespace hmm::graph {
namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/// Working state for one Hopcroft–Karp run over a subgraph.
struct HkState {
  const BipartiteMultigraph& g;
  // CSR adjacency: left node -> (slot -> group-local edge index)
  std::vector<std::uint32_t> offset;
  std::vector<std::uint32_t> slots;
  const std::vector<std::uint32_t>& edge_ids;

  std::vector<std::uint32_t> match_left;   // left -> local edge or kInf
  std::vector<std::uint32_t> match_right;  // right -> local edge or kInf
  std::vector<std::uint32_t> dist;

  HkState(const BipartiteMultigraph& graph, const std::vector<std::uint32_t>& ids)
      : g(graph), edge_ids(ids) {
    offset.assign(g.left_count() + 1, 0);
    for (std::uint32_t id : edge_ids) ++offset[g.edge(id).u + 1];
    std::partial_sum(offset.begin(), offset.end(), offset.begin());
    slots.resize(offset.back());
    std::vector<std::uint32_t> fill(offset.begin(), offset.end() - 1);
    for (std::uint32_t k = 0; k < edge_ids.size(); ++k) {
      slots[fill[g.edge(edge_ids[k]).u]++] = k;
    }
    match_left.assign(g.left_count(), kInf);
    match_right.assign(g.right_count(), kInf);
    dist.assign(g.left_count(), kInf);
  }

  [[nodiscard]] std::uint32_t right_of(std::uint32_t local) const {
    return g.edge(edge_ids[local]).v;
  }

  bool bfs() {
    std::queue<std::uint32_t> q;
    for (std::uint32_t u = 0; u < g.left_count(); ++u) {
      if (match_left[u] == kInf) {
        dist[u] = 0;
        q.push(u);
      } else {
        dist[u] = kInf;
      }
    }
    bool found_free_right = false;
    while (!q.empty()) {
      const std::uint32_t u = q.front();
      q.pop();
      for (std::uint32_t s = offset[u]; s < offset[u + 1]; ++s) {
        const std::uint32_t v = right_of(slots[s]);
        const std::uint32_t back = match_right[v];
        if (back == kInf) {
          found_free_right = true;
        } else {
          const std::uint32_t u2 = g.edge(edge_ids[back]).u;
          if (dist[u2] == kInf) {
            dist[u2] = dist[u] + 1;
            q.push(u2);
          }
        }
      }
    }
    return found_free_right;
  }

  bool dfs(std::uint32_t u) {
    for (std::uint32_t s = offset[u]; s < offset[u + 1]; ++s) {
      const std::uint32_t local = slots[s];
      const std::uint32_t v = right_of(local);
      const std::uint32_t back = match_right[v];
      if (back == kInf ||
          (dist[g.edge(edge_ids[back]).u] == dist[u] + 1 && dfs(g.edge(edge_ids[back]).u))) {
        match_left[u] = local;
        match_right[v] = local;
        return true;
      }
    }
    dist[u] = kInf;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const BipartiteMultigraph& g, const std::vector<std::uint32_t>& edge_ids) {
  HkState st(g, edge_ids);
  std::uint32_t matched = 0;
  while (st.bfs()) {
    for (std::uint32_t u = 0; u < g.left_count(); ++u) {
      if (st.match_left[u] == kInf && st.dfs(u)) ++matched;
    }
  }

  Matching m;
  m.size = matched;
  m.left_edge.assign(g.left_count(), Matching::kUnmatched);
  m.right_edge.assign(g.right_count(), Matching::kUnmatched);
  for (std::uint32_t u = 0; u < g.left_count(); ++u) {
    if (st.match_left[u] != kInf) m.left_edge[u] = edge_ids[st.match_left[u]];
  }
  for (std::uint32_t v = 0; v < g.right_count(); ++v) {
    if (st.match_right[v] != kInf) m.right_edge[v] = edge_ids[st.match_right[v]];
  }
  return m;
}

Matching hopcroft_karp(const BipartiteMultigraph& g) {
  std::vector<std::uint32_t> all(g.edge_count());
  std::iota(all.begin(), all.end(), 0u);
  return hopcroft_karp(g, all);
}

}  // namespace hmm::graph
