#pragma once
/// \file coloring.hpp
/// \brief General König edge-coloring algorithms and the dispatching
///        entry point used by the permutation planner.
///
/// Three interchangeable implementations (compared by
/// `bench_ablation_coloring`):
/// * `color_euler_split`  — O(E log k), power-of-two degree only (euler_split.hpp);
/// * `color_matching_peel` — O(k E sqrt(V)), any regular degree, peels
///   one perfect matching (= one color class) per round via Hopcroft–Karp;
/// * `color_alternating_path` — the textbook constructive proof of
///   König's theorem: insert edges one by one, resolving color clashes
///   by flipping an alternating (two-colored) path.

#include "graph/bipartite.hpp"

namespace hmm::graph {

/// Available König-coloring strategies.
enum class ColoringAlgorithm {
  kEulerSplit,       ///< fastest; requires power-of-two regular degree
  kMatchingPeel,     ///< any regular degree
  kAlternatingPath,  ///< any (even irregular) bipartite multigraph
  kAuto,             ///< Euler split when applicable, else matching peel
};

/// Peel perfect matchings from a k-regular bipartite multigraph.
EdgeColoring color_matching_peel(const BipartiteMultigraph& g);

/// Classical alternating-path (Vizing-style for bipartite) coloring.
/// Works for any bipartite multigraph; uses max-degree many colors.
EdgeColoring color_alternating_path(const BipartiteMultigraph& g);

/// Dispatch on `algo`; `kAuto` picks Euler split for power-of-two
/// regular degrees and matching peel otherwise.
EdgeColoring color_edges(const BipartiteMultigraph& g,
                         ColoringAlgorithm algo = ColoringAlgorithm::kAuto);

}  // namespace hmm::graph
