#include "graph/bipartite.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace hmm::graph {

BipartiteMultigraph::BipartiteMultigraph(std::uint32_t left_count, std::uint32_t right_count)
    : left_(left_count), right_(right_count) {
  HMM_CHECK(left_count > 0 && right_count > 0);
}

std::uint32_t BipartiteMultigraph::add_edge(std::uint32_t u, std::uint32_t v) {
  HMM_DCHECK(u < left_ && v < right_);
  edges_.push_back(Edge{u, v});
  return static_cast<std::uint32_t>(edges_.size() - 1);
}

void BipartiteMultigraph::reserve(std::size_t count) { edges_.reserve(count); }

std::uint32_t BipartiteMultigraph::left_degree(std::uint32_t u) const {
  std::uint32_t deg = 0;
  for (const Edge& e : edges_) deg += (e.u == u);
  return deg;
}

std::uint32_t BipartiteMultigraph::right_degree(std::uint32_t v) const {
  std::uint32_t deg = 0;
  for (const Edge& e : edges_) deg += (e.v == v);
  return deg;
}

std::optional<std::uint32_t> BipartiteMultigraph::regular_degree() const {
  std::vector<std::uint32_t> ldeg(left_, 0), rdeg(right_, 0);
  for (const Edge& e : edges_) {
    ++ldeg[e.u];
    ++rdeg[e.v];
  }
  if (edges_.empty()) return 0;
  const std::uint32_t k = ldeg[0];
  for (std::uint32_t d : ldeg) {
    if (d != k) return std::nullopt;
  }
  for (std::uint32_t d : rdeg) {
    if (d != k) return std::nullopt;
  }
  if (k > 0 && left_ != right_) return std::nullopt;
  return k;
}

bool is_proper_coloring(const BipartiteMultigraph& g, const EdgeColoring& c) {
  if (c.color.size() != g.edge_count()) return false;
  // seen[node][color] via a flat timestamped table to avoid O(V*C) memory
  // churn: one pass per side.
  for (int side = 0; side < 2; ++side) {
    const std::uint32_t nodes = side == 0 ? g.left_count() : g.right_count();
    std::vector<std::uint64_t> stamp(static_cast<std::size_t>(nodes) * c.colors, ~0ull);
    for (std::uint32_t e = 0; e < g.edge_count(); ++e) {
      const std::uint32_t col = c.color[e];
      if (col >= c.colors) return false;
      const std::uint32_t node = side == 0 ? g.edge(e).u : g.edge(e).v;
      auto& cell = stamp[static_cast<std::size_t>(node) * c.colors + col];
      if (cell != ~0ull) return false;  // two same-colored edges at a node
      cell = e;
    }
  }
  return true;
}

bool is_konig_coloring(const BipartiteMultigraph& g, const EdgeColoring& c) {
  if (!is_proper_coloring(g, c)) return false;
  const auto deg = g.regular_degree();
  if (!deg || c.colors != *deg) return false;
  std::vector<std::uint32_t> class_size(c.colors, 0);
  for (std::uint32_t col : c.color) ++class_size[col];
  return std::all_of(class_size.begin(), class_size.end(),
                     [&](std::uint32_t s) { return s == g.left_count(); });
}

std::vector<std::vector<std::uint32_t>> color_classes(const BipartiteMultigraph& g,
                                                      const EdgeColoring& c) {
  std::vector<std::vector<std::uint32_t>> classes(c.colors);
  for (std::uint32_t e = 0; e < g.edge_count(); ++e) classes[c.color[e]].push_back(e);
  return classes;
}

}  // namespace hmm::graph
