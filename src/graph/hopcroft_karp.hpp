#pragma once
/// \file hopcroft_karp.hpp
/// \brief Hopcroft–Karp maximum matching on bipartite multigraphs.
///
/// Used by the matching-peel König coloring (arbitrary regular degree)
/// and directly testable: a k-regular bipartite graph always has a
/// perfect matching (Hall/König), which the peel relies on.

#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"

namespace hmm::graph {

/// Result of a maximum-matching computation.
struct Matching {
  /// For each left node: matched edge id, or kUnmatched.
  std::vector<std::uint32_t> left_edge;
  /// For each right node: matched edge id, or kUnmatched.
  std::vector<std::uint32_t> right_edge;
  /// Number of matched pairs.
  std::uint32_t size = 0;

  static constexpr std::uint32_t kUnmatched = ~0u;
};

/// Maximum matching of the subgraph formed by `edge_ids` (all edges if
/// empty-vector semantics are needed, pass the full id range).
/// O(E sqrt(V)).
Matching hopcroft_karp(const BipartiteMultigraph& g, const std::vector<std::uint32_t>& edge_ids);

/// Convenience overload over every edge of `g`.
Matching hopcroft_karp(const BipartiteMultigraph& g);

}  // namespace hmm::graph
