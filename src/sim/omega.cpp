#include "sim/omega.hpp"

#include <algorithm>

namespace hmm::sim {

OmegaNetwork::OmegaNetwork(std::uint32_t width)
    : width_(width), stages_(util::log2_exact(width)) {
  HMM_CHECK_MSG(width >= 2, "omega network needs at least 2 ports");
}

OmegaRouting OmegaNetwork::route(std::span<const std::uint64_t> dest) const {
  HMM_CHECK(dest.size() <= width_);
  OmegaRouting result;
  result.pass_of.assign(dest.size(), 0);

  // Pending request indices (into `dest`).
  std::vector<std::uint32_t> pending;
  for (std::uint32_t i = 0; i < dest.size(); ++i) {
    if (dest[i] != model::kNoAccess) {
      HMM_CHECK_MSG(dest[i] < width_, "destination out of range");
      pending.push_back(i);
    }
  }
  if (pending.empty()) return result;

  // occupant[p] = request index at wire position p, or kEmpty.
  constexpr std::uint32_t kEmpty = ~0u;
  std::vector<std::uint32_t> occupant(width_), next(width_);

  while (!pending.empty()) {
    ++result.passes;
    std::fill(occupant.begin(), occupant.end(), kEmpty);
    // Inject this pass's requests at their input ports, lower index
    // first (the winner rule also applies to same-input reuse, which
    // cannot happen here since inputs are distinct).
    for (std::uint32_t req : pending) occupant[req] = req;

    std::vector<std::uint32_t> deflected;
    for (std::uint32_t s = 0; s < stages_; ++s) {
      // Perfect-shuffle wiring into the stage: position p moves to
      // rotate_left(p) over log2(w) bits.
      std::fill(next.begin(), next.end(), kEmpty);
      for (std::uint32_t p = 0; p < width_; ++p) {
        if (occupant[p] != kEmpty) {
          next[util::rotate_left_bits(p, stages_)] = occupant[p];
        }
      }
      std::swap(occupant, next);

      // 2x2 switches on position pairs (2k, 2k+1): requested output
      // port is destination bit (stages-1-s); collisions deflect the
      // higher input index out of this pass.
      std::fill(next.begin(), next.end(), kEmpty);
      for (std::uint32_t k = 0; k < width_ / 2; ++k) {
        std::uint32_t contenders[2] = {occupant[2 * k], occupant[2 * k + 1]};
        for (int leg = 0; leg < 2; ++leg) {
          const std::uint32_t req = contenders[leg];
          if (req == kEmpty) continue;
          const std::uint32_t bit =
              (dest[req] >> (stages_ - 1 - s)) & 1u;
          std::uint32_t& slot = next[2 * k + bit];
          if (slot == kEmpty) {
            slot = req;
          } else if (req < slot) {
            deflected.push_back(slot);
            ++result.switch_conflicts;
            slot = req;
          } else {
            deflected.push_back(req);
            ++result.switch_conflicts;
          }
        }
      }
      std::swap(occupant, next);
    }

    // Delivered requests exit at their destination port by construction
    // of destination-tag routing; record their pass.
    for (std::uint32_t p = 0; p < width_; ++p) {
      if (occupant[p] != kEmpty) {
        HMM_DCHECK(dest[occupant[p]] == p);
        result.pass_of[occupant[p]] = result.passes;
      }
    }
    std::sort(deflected.begin(), deflected.end());
    pending = std::move(deflected);
    HMM_CHECK_MSG(result.passes <= width_ * 2, "routing failed to converge");
  }
  return result;
}

}  // namespace hmm::sim
