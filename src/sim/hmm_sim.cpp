#include "sim/hmm_sim.hpp"

#include <algorithm>
#include <unordered_set>

namespace hmm::sim {

using model::AccessClass;
using model::Dir;
using model::Space;

model::RoundCounts SimStats::observed_counts() const {
  model::RoundCounts c;
  for (const RoundStat& r : rounds) {
    const bool read = r.dir == Dir::kRead;
    if (r.space == Space::kGlobal) {
      if (r.observed == AccessClass::kCoalesced) {
        (read ? c.coalesced_read : c.coalesced_write) += 1;
      } else {
        (read ? c.casual_read_global : c.casual_write_global) += 1;
      }
    } else {
      // Shared rounds are conflict-free or casual; Table I only has a
      // conflict-free column, so casual shared rounds are counted there
      // too and flagged via declarations_hold().
      (read ? c.conflict_free_read : c.conflict_free_write) += 1;
    }
  }
  return c;
}

std::uint64_t SimStats::rounds_of(model::Space space) const {
  return static_cast<std::uint64_t>(
      std::count_if(rounds.begin(), rounds.end(),
                    [space](const RoundStat& r) { return r.space == space; }));
}

bool SimStats::declarations_hold() const {
  auto rank = [](AccessClass c) {
    switch (c) {
      case AccessClass::kCoalesced: return 2;
      case AccessClass::kConflictFree: return 1;
      case AccessClass::kCasual: return 0;
    }
    return 0;
  };
  return std::all_of(rounds.begin(), rounds.end(), [&](const RoundStat& r) {
    return rank(r.observed) >= rank(r.declared);
  });
}

HmmSim::HmmSim(model::MachineParams params) : params_(params) { params_.validate(); }

void HmmSim::reset() {
  stats_ = SimStats{};
  next_global_ = 0;
}

std::uint64_t HmmSim::alloc_global(std::uint64_t elements) {
  const std::uint64_t base = next_global_;
  next_global_ += util::ceil_div(elements, params_.width) * params_.width;
  return base;
}

std::uint64_t HmmSim::global_round(std::string label, std::span<const std::uint64_t> addrs,
                                   Dir dir, AccessClass declared, std::uint32_t words) {
  HMM_CHECK(words >= 1 && (words == 1 || params_.width % words == 0));
  const std::uint32_t w = params_.width;
  std::uint64_t stages = 0;
  bool coalesced = true;
  // An e-word element occupies word addresses [a*e, (a+1)*e); the warp
  // pays one stage per distinct word-address group it touches. A fully
  // coalesced warp touches exactly `words` groups; a scattering warp
  // touches up to w (each element inside one group since e | w) — the
  // Table II float-vs-double asymmetry (coalesced doubles cost 2x,
  // scattered doubles barely more).
  std::vector<std::uint64_t> word_addrs;
  word_addrs.reserve(static_cast<std::size_t>(w) * words);
  for (std::size_t base = 0; base < addrs.size(); base += w) {
    const auto warp = addrs.subspan(base, std::min<std::size_t>(w, addrs.size() - base));
    word_addrs.clear();
    for (std::uint64_t a : warp) {
      if (a == model::kNoAccess) continue;
      for (std::uint32_t j = 0; j < words; ++j) word_addrs.push_back(a * words + j);
    }
    const std::uint32_t s = model::umm_stages(word_addrs, w);
    stages += s;
    coalesced &= (s <= words);
  }

  std::uint64_t effective = stages;
  if (!coalesced && l2_.enabled) {
    // First touch of a group in this round misses; re-touches hit and
    // cost 1/hit_speedup — but only when the round's footprint fits.
    // Group footprint is counted in word addresses (element_bytes is
    // the machine word size, 4 B by default).
    std::unordered_set<std::uint64_t> groups;
    for (std::uint64_t a : addrs) {
      if (a == model::kNoAccess) continue;
      for (std::uint32_t j = 0; j < words; ++j) {
        groups.insert(model::group_of(a * words + j, w));
      }
    }
    const std::uint64_t footprint = groups.size() * w * l2_.element_bytes;
    if (footprint <= l2_.capacity_bytes && stages > groups.size()) {
      const std::uint64_t hits = stages - groups.size();
      effective = groups.size() + util::ceil_div(hits, l2_.hit_speedup);
    }
  }

  RoundStat stat;
  stat.label = std::move(label);
  stat.space = Space::kGlobal;
  stat.dir = dir;
  stat.declared = declared;
  stat.observed = coalesced ? AccessClass::kCoalesced : AccessClass::kCasual;
  stat.stages = effective;
  stat.time = round_time(effective, params_.latency);
  stats_.total_time += stat.time;
  const std::uint64_t t = stat.time;
  stats_.rounds.push_back(std::move(stat));
  return t;
}

std::uint64_t HmmSim::global_round_packed(std::string label,
                                          std::span<const std::uint64_t> addrs, Dir dir,
                                          AccessClass declared, std::uint32_t pack) {
  HMM_CHECK(pack >= 1);
  const std::uint32_t w = params_.width;
  std::uint64_t stages = 0;
  bool coalesced = true;
  std::vector<std::uint64_t> word_addrs;
  word_addrs.reserve(w);
  for (std::size_t base = 0; base < addrs.size(); base += w) {
    const auto warp = addrs.subspan(base, std::min<std::size_t>(w, addrs.size() - base));
    word_addrs.clear();
    for (std::uint64_t a : warp) {
      if (a != model::kNoAccess) word_addrs.push_back(a / pack);
    }
    const std::uint32_t s = model::umm_stages(word_addrs, w);
    stages += s;
    coalesced &= (s <= 1);
  }

  RoundStat stat;
  stat.label = std::move(label);
  stat.space = Space::kGlobal;
  stat.dir = dir;
  stat.declared = declared;
  stat.observed = coalesced ? AccessClass::kCoalesced : AccessClass::kCasual;
  stat.stages = stages;
  stat.time = round_time(stages, params_.latency);
  stats_.total_time += stat.time;
  const std::uint64_t t = stat.time;
  stats_.rounds.push_back(std::move(stat));
  return t;
}

std::uint64_t HmmSim::shared_round(std::string label, std::span<const std::uint64_t> addrs,
                                   std::uint64_t block_size, Dir dir, AccessClass declared,
                                   std::uint32_t words) {
  HMM_CHECK(words >= 1);
  const std::uint32_t w = params_.width;
  HMM_CHECK_MSG(block_size % w == 0, "block size must be a multiple of the width");
  HMM_CHECK_MSG(addrs.size() % block_size == 0, "thread count must be a multiple of block size");

  // Banks are element-wide (the paper's model; GPUs call it 64-bit
  // bank mode for doubles): the bank pattern is that of the element
  // addresses, and a wider element simply takes `words` waves through
  // the same banks.
  std::vector<std::uint64_t> dmm_stages_total(params_.dmms, 0);
  bool conflict_free = true;
  const std::uint64_t blocks = addrs.size() / block_size;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    std::uint64_t block_stages = 0;
    for (std::uint64_t base = b * block_size; base < (b + 1) * block_size; base += w) {
      const auto warp = addrs.subspan(base, w);
      const std::uint32_t s = model::dmm_stages(warp, w);
      block_stages += static_cast<std::uint64_t>(s) * words;
      conflict_free &= (s <= 1);
    }
    dmm_stages_total[b % params_.dmms] += block_stages;
  }

  RoundStat stat;
  stat.label = std::move(label);
  stat.space = Space::kShared;
  stat.dir = dir;
  stat.declared = declared;
  stat.observed = conflict_free ? AccessClass::kConflictFree : AccessClass::kCasual;
  stat.stages = *std::max_element(dmm_stages_total.begin(), dmm_stages_total.end());
  stat.time = round_time(stat.stages, params_.shared_latency);
  stats_.total_time += stat.time;
  const std::uint64_t t = stat.time;
  stats_.rounds.push_back(std::move(stat));
  return t;
}

}  // namespace hmm::sim
