#include "sim/report.hpp"

#include <algorithm>
#include <map>
#include <ostream>

namespace hmm::sim {

void write_rounds_csv(std::ostream& os, const SimStats& stats) {
  os << "index,label,space,dir,declared,observed,stages,time\n";
  for (std::size_t i = 0; i < stats.rounds.size(); ++i) {
    const RoundStat& r = stats.rounds[i];
    os << i << ',' << r.label << ',' << model::to_string(r.space) << ','
       << model::to_string(r.dir) << ',' << model::to_string(r.declared) << ','
       << model::to_string(r.observed) << ',' << r.stages << ',' << r.time << '\n';
  }
}

void write_summary(std::ostream& os, const SimStats& stats) {
  const auto counts = stats.observed_counts();
  std::uint64_t global_time = 0, shared_time = 0;
  for (const RoundStat& r : stats.rounds) {
    (r.space == model::Space::kGlobal ? global_time : shared_time) += r.time;
  }
  os << "rounds: " << stats.rounds.size() << " (global " << counts.global_rounds()
     << ", shared " << counts.shared_rounds() << ")\n"
     << "  coalesced reads/writes:      " << counts.coalesced_read << "/"
     << counts.coalesced_write << "\n"
     << "  casual reads/writes:         " << counts.casual_read_global << "/"
     << counts.casual_write_global << "\n"
     << "  conflict-free reads/writes:  " << counts.conflict_free_read << "/"
     << counts.conflict_free_write << "\n"
     << "total time: " << stats.total_time << " units (global " << global_time
     << ", shared " << shared_time << ")\n"
     << "declared guarantees held: " << (stats.declarations_hold() ? "yes" : "NO") << "\n";
}

void write_engine_timeline(std::ostream& os, const EngineRound& round) {
  // Group requests by issue cycle (= stage).
  std::map<std::uint64_t, std::vector<const RequestTiming*>> by_issue;
  for (const auto& req : round.requests) by_issue[req.issue_cycle].push_back(&req);
  os << "round: start=" << round.start_cycle << " finish=" << round.finish_cycle
     << " stages=" << round.stages << "\n";
  for (const auto& [issue, reqs] : by_issue) {
    os << "  cycle " << issue << " -> " << reqs.front()->finish_cycle << " :";
    for (const auto* req : reqs) {
      os << " t" << req->thread << "@" << req->addr;
    }
    os << "\n";
  }
}

}  // namespace hmm::sim
