#pragma once
/// \file pipeline.hpp
/// \brief The MMU pipeline-stage model (ICPP 2013, Section II, Fig. 3).
///
/// A warp's `w` simultaneous requests are packed into pipeline stages:
/// * DMM (shared memory): each stage may hold at most one request per
///   *bank* — a warp occupies `max_bank_multiplicity` stages;
/// * UMM (global memory): each stage holds the requests of one
///   *address group* — a warp occupies `#distinct_groups` stages.
///
/// Warps are dispatched round-robin; stages stream through the MMU one
/// per time unit and a request completes `latency` units after entering,
/// so a round occupying `S` stages in total finishes at time
/// `S + latency - 1`.

#include <cstdint>
#include <span>
#include <vector>

#include "model/access.hpp"
#include "model/machine.hpp"

namespace hmm::sim {

/// One pipeline stage: the (thread, address) requests it carries.
struct Stage {
  struct Request {
    std::uint32_t thread;
    std::uint64_t addr;
  };
  std::vector<Request> requests;
};

/// Full stage-level trace of one warp's round (for Fig. 3 and tests).
struct WarpTrace {
  std::vector<Stage> stages;
};

/// Pack one warp's requests into DMM stages (distinct banks per stage).
/// Requests to the same bank go to successive stages in thread order.
WarpTrace pack_dmm(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

/// Pack one warp's requests into UMM stages (one address group per
/// stage, groups in first-touch order).
WarpTrace pack_umm(std::span<const std::uint64_t> warp_addrs, std::uint32_t width);

/// Total stage count of a full round: all warps of `addrs` (consecutive
/// chunks of `width`), packed per `space`. `addrs[i] == kNoAccess` means
/// thread `i` sits out; fully idle warps are not dispatched.
std::uint64_t round_stages(std::span<const std::uint64_t> addrs, std::uint32_t width,
                           model::Space space);

/// Completion time of a round with `stages` total pipeline stages.
constexpr std::uint64_t round_time(std::uint64_t stages, std::uint32_t latency) noexcept {
  return stages == 0 ? 0 : stages + latency - 1;
}

}  // namespace hmm::sim
