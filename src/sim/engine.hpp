#pragma once
/// \file engine.hpp
/// \brief Cycle-stepped pipeline engine: an *operational* model of the
///        MMU that advances a clock one time unit at a time, inserting
///        one pipeline stage per cycle and retiring requests `latency`
///        cycles later (exactly the paper's Fig. 3 machinery).
///
/// The analytic accounting in hmm_sim.hpp computes round times in one
/// shot (`stages + latency - 1`); this engine *derives* that number by
/// actually streaming stages through an l-deep pipeline, and reports
/// per-request completion times. Tests cross-validate the two, which
/// pins the model's timing rule operationally rather than by fiat.

#include <cstdint>
#include <span>
#include <vector>

#include "model/access.hpp"
#include "model/machine.hpp"
#include "sim/pipeline.hpp"

namespace hmm::sim {

/// Completion record of one memory request.
struct RequestTiming {
  std::uint32_t thread = 0;   ///< global thread index within the round
  std::uint64_t addr = 0;
  std::uint64_t issue_cycle = 0;   ///< cycle its stage entered the pipeline
  std::uint64_t finish_cycle = 0;  ///< cycle it retired (issue + latency - 1)
};

/// Result of running one round through the engine.
struct EngineRound {
  std::uint64_t start_cycle = 0;
  std::uint64_t finish_cycle = 0;  ///< when the last request retired
  std::uint64_t stages = 0;
  std::vector<RequestTiming> requests;

  [[nodiscard]] std::uint64_t duration() const noexcept {
    return finish_cycle - start_cycle;
  }
};

/// Cycle-stepped engine for one memory (a DMM's shared memory or the
/// UMM). Rounds are synchronous: a new round starts only after the
/// previous one fully drained, matching the paper's accounting.
class PipelineEngine {
 public:
  /// \param space  kShared packs stages by bank (DMM), kGlobal by
  ///               address group (UMM).
  PipelineEngine(model::MachineParams params, model::Space space);

  [[nodiscard]] std::uint64_t now() const noexcept { return clock_; }
  [[nodiscard]] std::uint32_t latency() const noexcept { return latency_; }

  /// Run a full round: `addrs[i]` is thread i's address (kNoAccess to
  /// sit out); warps are consecutive chunks of `width`, dispatched
  /// round-robin. Advances the clock cycle by cycle.
  EngineRound run_round(std::span<const std::uint64_t> addrs);

  void reset() noexcept { clock_ = 0; }

 private:
  model::MachineParams params_;
  model::Space space_;
  std::uint32_t latency_;
  std::uint64_t clock_ = 0;
};

}  // namespace hmm::sim
