#pragma once
/// \file omega.hpp
/// \brief An omega (shuffle-exchange) multistage interconnection
///        network — the concrete realization of the paper's MMU remark
///        ("we can think that it is a multistage interconnection
///        network in which memory access requests are moved to
///        destination memory banks in a pipeline fashion", Section I,
///        citing Hsiao & Chen).
///
/// A w-input omega network has log2(w) stages of w/2 two-by-two
/// switches with perfect-shuffle wiring between stages; requests
/// self-route by destination tag (stage s consumes destination bit
/// log2(w)-1-s). The network *blocks*: two requests can collide at a
/// switch even when their destination banks are distinct, so a
/// bank-conflict-free warp may still need several passes. The abstract
/// DMM/UMM model charges one stage for any conflict-free warp — i.e.
/// it assumes a full crossbar. `bench_ablation_omega` measures how
/// optimistic that idealization is; the classic positive cases
/// (identity, uniform shifts, bit-reversal) route in one pass.

#include <cstdint>
#include <span>
#include <vector>

#include "model/access.hpp"
#include "util/bits.hpp"
#include "util/check.hpp"

namespace hmm::sim {

/// Outcome of routing one warp's requests through the network.
struct OmegaRouting {
  std::uint32_t passes = 0;              ///< passes until every request delivered
  std::vector<std::uint32_t> pass_of;    ///< per input: 1-based pass it was served in
  std::uint64_t switch_conflicts = 0;    ///< total deflections across all passes
};

class OmegaNetwork {
 public:
  /// \param width number of inputs/outputs (= banks); power of two >= 2.
  explicit OmegaNetwork(std::uint32_t width);

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t stages() const noexcept { return stages_; }

  /// Route one warp: `dest[i]` is input i's destination output
  /// (model::kNoAccess to sit out). Repeats passes until every request
  /// is delivered; on a collision the lower input index wins and the
  /// loser retries next pass. Destinations need not be distinct — same-
  /// destination requests serialize across passes like bank conflicts.
  [[nodiscard]] OmegaRouting route(std::span<const std::uint64_t> dest) const;

  /// True iff the request pattern passes in a single sweep (the
  /// "omega-routable" property).
  [[nodiscard]] bool routable_in_one_pass(std::span<const std::uint64_t> dest) const {
    return route(dest).passes <= 1;
  }

 private:
  std::uint32_t width_;
  std::uint32_t stages_;
};

}  // namespace hmm::sim
