#pragma once
/// \file hmm_sim.hpp
/// \brief The round-synchronous HMM simulator: accounts the exact model
///        time of every memory-access round an algorithm performs.
///
/// Executors drive the simulator by reporting, for each round, the
/// element address every thread touches. The simulator
/// * packs each warp's requests into pipeline stages (pipeline.hpp),
/// * advances the clock by `stages + latency - 1` (global) or by the
///   busiest DMM's stages (shared, latency 1, DMMs run concurrently),
/// * classifies the round as coalesced / conflict-free / casual and
///   cross-checks the executor's declared guarantee, and
/// * optionally applies a small L2-cache model to casual global rounds
///   (ablation for the paper's small-n observation, Section VIII).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/access.hpp"
#include "model/cost.hpp"
#include "model/machine.hpp"
#include "sim/pipeline.hpp"

namespace hmm::sim {

/// Statistics of one executed round.
struct RoundStat {
  std::string label;
  model::Space space = model::Space::kGlobal;
  model::Dir dir = model::Dir::kRead;
  model::AccessClass declared = model::AccessClass::kCasual;
  model::AccessClass observed = model::AccessClass::kCasual;
  std::uint64_t stages = 0;  ///< total pipeline stages (global) or max per DMM (shared)
  std::uint64_t time = 0;    ///< time units this round took
};

/// Aggregated counters over a whole simulated run.
struct SimStats {
  std::vector<RoundStat> rounds;
  std::uint64_t total_time = 0;

  [[nodiscard]] model::RoundCounts observed_counts() const;
  [[nodiscard]] std::uint64_t rounds_of(model::Space space) const;
  /// True iff no executed round degraded below its declared class.
  [[nodiscard]] bool declarations_hold() const;
};

/// Optional L2 model: a casual global round's stage count shrinks when
/// the round's footprint fits in the cache (the GTX-680's 512 KiB L2 is
/// the paper's explanation for the conventional algorithm winning at
/// small n). When the touched groups all fit, repeated groups hit and a
/// stage costs a fraction of a miss.
struct L2Model {
  bool enabled = false;
  std::uint64_t capacity_bytes = 512 * 1024;
  std::uint64_t element_bytes = 4;
  /// A cached stage costs 1/`hit_speedup` of a miss stage (DRAM burst
  /// vs on-chip SRAM); GTX-680 L2 is roughly 4x the DRAM bandwidth.
  std::uint32_t hit_speedup = 4;
};

class HmmSim {
 public:
  explicit HmmSim(model::MachineParams params);

  [[nodiscard]] const model::MachineParams& params() const noexcept { return params_; }
  [[nodiscard]] const SimStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t now() const noexcept { return stats_.total_time; }

  void set_l2(const L2Model& l2) noexcept { l2_ = l2; }
  void reset();

  /// Allocate `elements` cells of global memory; the returned base is
  /// address-group aligned (like cudaMalloc) so executors can reason
  /// about coalescing. Only addresses are modelled, not contents.
  std::uint64_t alloc_global(std::uint64_t elements);

  /// Execute one global round: `addrs[i]` is thread i's element address
  /// (model::kNoAccess to sit out). Returns the round's time units.
  ///
  /// `words` models the element width in machine words (1 for 32-bit
  /// elements, 2 for 64-bit, 4 for complex<double>): element k occupies
  /// word addresses [k*words, (k+1)*words) and each thread's access
  /// becomes `words` request waves, pipelined within the one round —
  /// a coalesced round costs `words*n/w + l - 1` (the paper's
  /// float-vs-double Table II gap).
  std::uint64_t global_round(std::string label, std::span<const std::uint64_t> addrs,
                             model::Dir dir, model::AccessClass declared,
                             std::uint32_t words = 1);

  /// Sub-word variant: `pack` elements share one machine word (pack = 2
  /// for the paper's 16-bit schedule arrays). A coalesced warp then
  /// touches ceil(w/pack) words — fewer groups per n, i.e. a coalesced
  /// round costs n/(w*pack) + l - 1. Mutually exclusive with words > 1.
  std::uint64_t global_round_packed(std::string label, std::span<const std::uint64_t> addrs,
                                    model::Dir dir, model::AccessClass declared,
                                    std::uint32_t pack);

  /// Execute one shared round: threads are grouped into blocks of
  /// `block_size` (a multiple of width); block b runs on DMM `b mod d`;
  /// addresses are block-local shared offsets. DMMs run concurrently:
  /// the round costs the busiest DMM's total stages (latency 1).
  /// `words` as in global_round (wider elements hit `words` banks).
  std::uint64_t shared_round(std::string label, std::span<const std::uint64_t> addrs,
                             std::uint64_t block_size, model::Dir dir,
                             model::AccessClass declared, std::uint32_t words = 1);

 private:
  model::MachineParams params_;
  SimStats stats_;
  L2Model l2_;
  std::uint64_t next_global_ = 0;
};

}  // namespace hmm::sim
