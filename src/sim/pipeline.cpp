#include "sim/pipeline.hpp"

#include <algorithm>
#include <array>

namespace hmm::sim {

using model::kNoAccess;

WarpTrace pack_dmm(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  WarpTrace trace;
  // Stage of a request to bank b = number of earlier same-bank requests.
  std::array<std::uint32_t, 64> bank_load{};
  HMM_CHECK(width <= bank_load.size());
  for (std::uint32_t t = 0; t < warp_addrs.size(); ++t) {
    const std::uint64_t addr = warp_addrs[t];
    if (addr == kNoAccess) continue;
    const auto b = static_cast<std::uint32_t>(model::bank_of(addr, width));
    const std::uint32_t stage = bank_load[b]++;
    if (stage >= trace.stages.size()) trace.stages.resize(stage + 1);
    trace.stages[stage].requests.push_back({t, addr});
  }
  return trace;
}

WarpTrace pack_umm(std::span<const std::uint64_t> warp_addrs, std::uint32_t width) {
  WarpTrace trace;
  std::array<std::uint64_t, 64> group_of_stage{};
  std::uint32_t stage_count = 0;
  for (std::uint32_t t = 0; t < warp_addrs.size(); ++t) {
    const std::uint64_t addr = warp_addrs[t];
    if (addr == kNoAccess) continue;
    const std::uint64_t g = model::group_of(addr, width);
    std::uint32_t stage = stage_count;
    for (std::uint32_t s = 0; s < stage_count; ++s) {
      if (group_of_stage[s] == g) {
        stage = s;
        break;
      }
    }
    if (stage == stage_count) {
      HMM_CHECK(stage_count < group_of_stage.size());
      group_of_stage[stage_count++] = g;
      trace.stages.emplace_back();
    }
    trace.stages[stage].requests.push_back({t, addr});
  }
  return trace;
}

std::uint64_t round_stages(std::span<const std::uint64_t> addrs, std::uint32_t width,
                           model::Space space) {
  std::uint64_t stages = 0;
  for (std::size_t base = 0; base < addrs.size(); base += width) {
    const std::size_t len = std::min<std::size_t>(width, addrs.size() - base);
    const auto warp = addrs.subspan(base, len);
    stages += space == model::Space::kShared ? model::dmm_stages(warp, width)
                                             : model::umm_stages(warp, width);
  }
  return stages;
}

}  // namespace hmm::sim
