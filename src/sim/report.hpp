#pragma once
/// \file report.hpp
/// \brief Exporters for simulator statistics: per-round CSV (for
///        plotting/regression baselines) and a human-readable summary.

#include <iosfwd>

#include "sim/engine.hpp"
#include "sim/hmm_sim.hpp"

namespace hmm::sim {

/// One CSV row per executed round:
/// `index,label,space,dir,declared,observed,stages,time`.
void write_rounds_csv(std::ostream& os, const SimStats& stats);

/// Aggregate summary: counts per class, total time, share of time per
/// space, and whether every declaration held.
void write_summary(std::ostream& os, const SimStats& stats);

/// ASCII timeline of one engine round: one line per pipeline stage
/// showing issue/retire cycles and the requests it carried. Intended
/// for small rounds (Fig. 3-scale debugging).
void write_engine_timeline(std::ostream& os, const EngineRound& round);

}  // namespace hmm::sim
