#include "sim/engine.hpp"

#include <algorithm>
#include <deque>

namespace hmm::sim {

PipelineEngine::PipelineEngine(model::MachineParams params, model::Space space)
    : params_(params),
      space_(space),
      latency_(space == model::Space::kShared ? params.shared_latency : params.latency) {
  params_.validate();
}

EngineRound PipelineEngine::run_round(std::span<const std::uint64_t> addrs) {
  const std::uint32_t w = params_.width;

  // Pack every warp into its stage sequence (dispatch order).
  struct PendingStage {
    std::uint32_t warp;
    Stage stage;
  };
  std::deque<PendingStage> pending;
  for (std::size_t base = 0, warp = 0; base < addrs.size(); base += w, ++warp) {
    const auto warp_addrs =
        addrs.subspan(base, std::min<std::size_t>(w, addrs.size() - base));
    WarpTrace trace = space_ == model::Space::kShared ? pack_dmm(warp_addrs, w)
                                                      : pack_umm(warp_addrs, w);
    for (auto& stage : trace.stages) {
      // Thread ids inside the stage are warp-local; globalize them.
      for (auto& req : stage.requests) {
        req.thread += static_cast<std::uint32_t>(base);
      }
      pending.push_back({static_cast<std::uint32_t>(warp), std::move(stage)});
    }
  }

  EngineRound round;
  round.start_cycle = clock_;
  round.stages = pending.size();
  if (pending.empty()) {
    round.finish_cycle = clock_;
    return round;
  }

  // In-flight stages retire `latency` cycles after insertion. Step the
  // clock one cycle at a time: each cycle inserts at most one stage.
  struct InFlight {
    std::uint64_t exit_cycle;
    Stage stage;
  };
  std::deque<InFlight> in_flight;

  while (!pending.empty() || !in_flight.empty()) {
    ++clock_;
    // Insert the next stage (one per cycle); with latency 1 it retires
    // within this same cycle, so insertion precedes retirement.
    if (!pending.empty()) {
      in_flight.push_back(InFlight{clock_ + latency_ - 1, std::move(pending.front().stage)});
      pending.pop_front();
    }
    // Retire whatever exits this cycle (FIFO).
    while (!in_flight.empty() && in_flight.front().exit_cycle == clock_) {
      for (const auto& req : in_flight.front().stage.requests) {
        round.requests.push_back(RequestTiming{
            .thread = req.thread,
            .addr = req.addr,
            .issue_cycle = in_flight.front().exit_cycle - (latency_ - 1),
            .finish_cycle = in_flight.front().exit_cycle,
        });
      }
      round.finish_cycle = clock_;
      in_flight.pop_front();
    }
  }
  return round;
}

}  // namespace hmm::sim
