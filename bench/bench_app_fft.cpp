/// \file bench_app_fft.cpp
/// \brief Application study: a complete radix-2 FFT executed on the
///        simulated HMM via the exec:: kernel layer — the paper's
///        Section I motivation ("the computation of the FFT can be
///        done by a multistage network in which each stage involves
///        permutation") made concrete.
///
/// Pipeline: bit-reversal reorder + log2(n) butterfly kernels. The
/// butterflies are memory-friendly (paired coalesced streams); the
/// reorder is the casual hot spot, so swapping the conventional
/// scatter for the scheduled plan changes the total. This bench runs
/// the whole thing with real complex data (verified against an O(n^2)
/// DFT at a small size) and reports model time per phase.
///
/// Usage: bench_app_fft [--n 64K] [--verify-n 1K] [--csv]

#include <cmath>
#include <complex>
#include <iostream>
#include <numbers>

#include "bench_common.hpp"
#include "exec/paper_kernels.hpp"

namespace {

using namespace hmm;
using cplx = std::complex<float>;

/// One butterfly stage of length `len` as an exec kernel: thread k
/// owns the butterfly (u, v) at distance len/2. Returns time units.
std::uint64_t butterfly_stage_exec(exec::Machine& m, exec::GlobalArray<cplx> data,
                                   std::uint64_t len, std::uint64_t block_size) {
  const std::uint64_t n = data.size;
  const std::uint64_t half = len / 2;
  struct Regs {
    cplx u{}, v{};
  };
  auto upper_index = [half, len](const exec::ThreadCtx& c, const Regs&) {
    const std::uint64_t k = c.global_id();
    return (k / half) * len + (k % half);
  };
  auto lower_index = [half, len](const exec::ThreadCtx& c, const Regs&) {
    const std::uint64_t k = c.global_id();
    return (k / half) * len + (k % half) + half;
  };

  exec::Kernel<Regs> kern("butterfly" + std::to_string(len));
  kern.read_global<cplx>(data, upper_index, [](Regs& r, cplx x) { r.u = x; },
                         model::AccessClass::kCasual, "read u")
      .read_global<cplx>(data, lower_index, [](Regs& r, cplx x) { r.v = x; },
                         model::AccessClass::kCasual, "read v")
      .compute([half, len](const exec::ThreadCtx& c, Regs& r) {
        const std::uint64_t j = c.global_id() % half;
        const float ang = -2.0f * std::numbers::pi_v<float> * static_cast<float>(j) /
                          static_cast<float>(len);
        const cplx w(std::cos(ang), std::sin(ang));
        const cplx t = r.v * w;
        r.v = r.u - t;
        r.u = r.u + t;
      })
      .write_global<cplx>(data, upper_index,
                          [](const exec::ThreadCtx&, const Regs& r) { return r.u; },
                          model::AccessClass::kCasual, "write u")
      .write_global<cplx>(data, lower_index,
                          [](const exec::ThreadCtx&, const Regs& r) { return r.v; },
                          model::AccessClass::kCasual, "write v");
  return m.launch(exec::LaunchConfig{(n / 2) / block_size, block_size}, kern);
}

struct FftResult {
  std::uint64_t reorder_units = 0;
  std::uint64_t butterfly_units = 0;
  util::aligned_vector<cplx> output;
};

/// Run the whole FFT on the exec machine. `scheduled_reorder` selects
/// the reorder implementation.
FftResult fft_on_hmm(const model::MachineParams& mp, std::span<const cplx> input,
                     bool scheduled_reorder) {
  const std::uint64_t n = input.size();
  const perm::Permutation rev = perm::bit_reversal(n);
  const std::uint64_t block = std::min<std::uint64_t>(1024, n);

  exec::Machine m(mp);
  auto a = m.alloc_global<cplx>(input);
  auto b = m.alloc_global<cplx>(n);

  FftResult result;
  if (scheduled_reorder) {
    const core::ScheduledPlan plan = core::ScheduledPlan::build(rev, mp);
    result.reorder_units = exec::scheduled_exec<cplx>(m, a, b, plan);
  } else {
    auto p = m.alloc_global<std::uint32_t>(rev.data());
    result.reorder_units = exec::d_designated_exec<cplx>(m, a, b, p, block);
  }
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    result.butterfly_units +=
        butterfly_stage_exec(m, b, len, std::min<std::uint64_t>(block, n / 2));
  }
  result.output.resize(n);
  m.read_back(b, std::span<cplx>{result.output.data(), n});
  return result;
}

std::vector<cplx> reference_dft(std::span<const cplx> x) {
  const std::uint64_t n = x.size();
  std::vector<cplx> out(n);
  for (std::uint64_t k = 0; k < n; ++k) {
    std::complex<double> acc(0);
    for (std::uint64_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * t) /
                         static_cast<double>(n);
      acc += std::complex<double>(x[t]) * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = cplx(acc);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n", "verify-n"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 64 << 10);
  const std::uint64_t verify_n = cli.get_int("verify-n", 2048);
  const bool csv = cli.get_bool("csv");

  const model::MachineParams mp = model::MachineParams::gtx680();
  bench::print_header("Application — radix-2 FFT on the simulated HMM",
                      "Section I motivation (FFT reordering)");

  // --- numerical verification at a small size -------------------------
  {
    util::Xoshiro256 rng(9);
    util::aligned_vector<cplx> x(verify_n);
    for (auto& v : x) {
      v = cplx(static_cast<float>(rng.uniform01() - 0.5),
               static_cast<float>(rng.uniform01() - 0.5));
    }
    const auto expected = reference_dft({x.data(), x.size()});
    const FftResult got = fft_on_hmm(mp, {x.data(), x.size()}, /*scheduled_reorder=*/true);
    float max_err = 0;
    for (std::uint64_t i = 0; i < verify_n; ++i) {
      max_err = std::max(max_err, std::abs(got.output[i] - expected[i]));
    }
    std::cout << "numerical check vs O(n^2) DFT at n=" << verify_n
              << ": max |err| = " << max_err
              << (max_err < 1e-2f ? "  [OK]\n" : "  [FAIL]\n");
  }

  // --- model-time study ------------------------------------------------
  util::Table table({"n", "reorder conv", "reorder sched", "butterflies", "total conv",
                     "total sched", "FFT speedup"});
  util::aligned_vector<cplx> zeros(n);
  for (std::uint64_t size = 4 << 10; size <= n; size <<= 2) {
    const std::span<const cplx> input{zeros.data(), size};
    const FftResult conv = fft_on_hmm(mp, input, false);
    const FftResult sched = fft_on_hmm(mp, input, true);
    const std::uint64_t total_conv = conv.reorder_units + conv.butterfly_units;
    const std::uint64_t total_sched = sched.reorder_units + sched.butterfly_units;
    table.add_row(
        {bench::size_label(size), util::format_count(conv.reorder_units),
         util::format_count(sched.reorder_units), util::format_count(conv.butterfly_units),
         util::format_count(total_conv), util::format_count(total_sched),
         util::format_double(static_cast<double>(total_conv) /
                                 static_cast<double>(total_sched),
                             2) +
             "x"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nThe butterflies are near-coalesced (2 groups per warp at worst), so the\n"
               "bit-reversal reorder is the casual hot spot; replacing it with the\n"
               "scheduled plan shrinks the reorder by ~2x and the whole FFT accordingly.\n";
  return 0;
}
