/// \file bench_fig5_coloring.cpp
/// \brief Reproduces **Figure 5**: a 4-regular bipartite graph painted
///        with 4 colors so that no two same-colored edges share a node
///        (König's theorem, the combinatorial engine of the planner) —
///        then scales the construction up and times it.
///
/// Usage: bench_fig5_coloring [--nodes 1024] [--degree 32] [--seed 1]

#include <iostream>
#include <numeric>

#include "graph/coloring.hpp"
#include "graph/euler_split.hpp"
#include "perm/generators.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

using namespace hmm;

graph::BipartiteMultigraph random_regular(std::uint32_t nodes, std::uint32_t degree,
                                          std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  graph::BipartiteMultigraph g(nodes, nodes);
  std::vector<std::uint32_t> perm(nodes);
  for (std::uint32_t k = 0; k < degree; ++k) {
    std::iota(perm.begin(), perm.end(), 0u);
    for (std::uint32_t i = nodes - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.bounded(i + 1)]);
    }
    for (std::uint32_t u = 0; u < nodes; ++u) g.add_edge(u, perm[u]);
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"seed"}, std::cerr)) return 2;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  std::cout << "================================================================\n"
               "Figure 5 — König edge coloring of a regular bipartite graph\n"
               "(reproduces Fig. 5 of Kasagi/Nakano/Ito, ICPP 2013)\n"
               "================================================================\n\n";

  // The figure's size: 4 + 4 nodes, degree 4.
  {
    graph::BipartiteMultigraph g = random_regular(4, 4, seed);
    const graph::EdgeColoring c = graph::color_euler_split(g);
    std::cout << "4-regular bipartite graph on 4+4 nodes, 4-edge-colored:\n";
    for (std::uint32_t id = 0; id < g.edge_count(); ++id) {
      std::cout << "  edge u" << g.edge(id).u << " -- v" << g.edge(id).v << "  color "
                << c.color[id] << "\n";
    }
    std::cout << "proper König coloring: "
              << (graph::is_konig_coloring(g, c) ? "yes" : "NO") << "\n";
  }

  // Scale-up timing sweep for all three algorithms (the planner's
  // real workload: bank graphs are w x w with degree len/w; row graphs
  // are r x r with degree m).
  std::cout << "\nScaling sweep (time to color, validation on):\n";
  util::Table table({"nodes", "degree", "edges", "euler-split ms", "matching-peel ms",
                     "alt-path ms", "all valid"});
  for (const auto& [nodes, degree] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {32, 32}, {256, 32}, {1024, 32}, {1024, 128}, {512, 256}}) {
    graph::BipartiteMultigraph g = random_regular(nodes, degree, seed + nodes + degree);
    util::Stopwatch sw;
    const auto c1 = graph::color_euler_split(g);
    const double t1 = sw.millis();
    sw.reset();
    const auto c2 = graph::color_matching_peel(g);
    const double t2 = sw.millis();
    sw.reset();
    const auto c3 = graph::color_alternating_path(g);
    const double t3 = sw.millis();
    const bool valid = graph::is_konig_coloring(g, c1) && graph::is_konig_coloring(g, c2) &&
                       graph::is_konig_coloring(g, c3);
    table.add_row({util::format_count(nodes), util::format_count(degree),
                   util::format_count(g.edge_count()), util::format_ms(t1),
                   util::format_ms(t2), util::format_ms(t3), valid ? "yes" : "NO"});
  }
  table.print(std::cout);

  // The planner's actual row graph for a bit-reversal of 256K elements.
  {
    const std::uint64_t n = 256 << 10;
    const perm::Permutation p = perm::bit_reversal(n);
    const std::uint64_t m = 512, r = n / m;
    graph::BipartiteMultigraph g(static_cast<std::uint32_t>(r), static_cast<std::uint32_t>(r));
    g.reserve(n);
    for (std::uint64_t e = 0; e < n; ++e) {
      g.add_edge(static_cast<std::uint32_t>(e / m), static_cast<std::uint32_t>(p(e) / m));
    }
    util::Stopwatch sw;
    const auto c = graph::color_euler_split(g);
    std::cout << "\nPlanner row graph (bit-reversal, n=256K): " << g.edge_count()
              << " edges, degree " << m << ", colored in " << util::format_ms(sw.millis())
              << " ms, König: " << (graph::is_konig_coloring(g, c) ? "yes" : "NO") << "\n";
  }
  return 0;
}
