/// \file bench_ablation_l2.cpp
/// \brief Ablation for the paper's small-n observation (Section VIII):
///        on the GTX-680 the conventional algorithm beats the scheduled
///        one below n = 256K, which the authors attribute to the 512 KiB
///        L2 cache absorbing the casual writes. We run the simulator
///        with and without the L2 model and locate the crossover.
///
/// Usage: bench_ablation_l2 [--max 1M] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "max"}, std::cerr)) return 2;
  const std::uint64_t max_n = cli.get_int("max", 1 << 20);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — L2 cache model vs the Table II small-n inversion",
                      "Section VIII discussion of Table II");

  model::MachineParams mp = model::MachineParams::gtx680();
  sim::L2Model l2;
  l2.enabled = true;
  l2.capacity_bytes = 512 * 1024;  // GTX-680 whitepaper
  l2.element_bytes = sizeof(float);
  l2.hit_speedup = 4;

  util::Table table({"n", "D-des no-L2", "D-des with-L2", "scheduled", "winner no-L2",
                     "winner with-L2"});
  for (std::uint64_t n = 16 << 10; n <= max_n; n <<= 1) {
    const perm::Permutation p = perm::bit_reversal(n);
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);

    sim::HmmSim plain(mp);
    const std::uint64_t t_plain = core::d_designated_sim_rounds(plain, p);

    sim::HmmSim cached(mp);
    cached.set_l2(l2);
    const std::uint64_t t_cached = core::d_designated_sim_rounds(cached, p);

    sim::HmmSim sched(mp);
    const std::uint64_t t_sched = core::scheduled_sim_rounds(sched, plan);

    table.add_row({bench::size_label(n), util::format_count(t_plain),
                   util::format_count(t_cached), util::format_count(t_sched),
                   t_plain < t_sched ? "conventional" : "scheduled",
                   t_cached < t_sched ? "conventional" : "scheduled"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: without L2, scheduled wins everywhere the model allows;\n"
               "with the L2 model, conventional wins at small n (footprint fits in 512 KiB)\n"
               "and the crossover sits near the paper's observed 256K.\n";
  return 0;
}
