/// \file bench_ablation_packed.cpp
/// \brief Why the paper stores schedules as 16-bit short ints — and
///        what that buys in the model vs on hardware.
///
/// Two effects, separated here:
/// * **Time units (transactions)**: a coalesced warp is one stage no
///   matter the element size, so halving the schedule element does NOT
///   change the HMM time of the scheduled algorithm — the model is
///   transaction-granular. (Packing only shrinks stage counts for
///   *casual* patterns whose neighbours collapse into shared words.)
/// * **Bytes (DRAM bandwidth)**: the 6 schedule streams are 2 B instead
///   of 4 B per element — 12 B/element instead of 24 B across the three
///   passes, a 33% cut of the algorithm's total global byte traffic.
///   On bandwidth-bound hardware that is real speed; the paper's
///   choice is a bandwidth optimization invisible to its own cost
///   model.
///
/// Usage: bench_ablation_packed [--n 1M] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — 16-bit schedule arrays: transactions vs bytes",
                      "Section VIII implementation note (short int arrays)");
  const model::MachineParams mp = model::MachineParams::gtx680();

  // --- time units: identical coalesced stage counts -------------------
  sim::HmmSim sim(mp);
  std::vector<std::uint64_t> addrs(1 << 15);
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = i;
  const std::uint64_t t32 = sim.global_round("sched32", addrs, model::Dir::kRead,
                                             model::AccessClass::kCoalesced, 1);
  const std::uint64_t t16 = sim.global_round_packed("sched16", addrs, model::Dir::kRead,
                                                    model::AccessClass::kCoalesced, 2);
  std::cout << "coalesced schedule read of " << addrs.size() << " entries: 32-bit " << t32
            << " units, 16-bit " << t16 << " units (model sees no difference)\n";

  // A casual pattern where packing genuinely merges words: stride-2.
  for (std::uint64_t i = 0; i < addrs.size(); ++i) addrs[i] = 2 * i;
  sim.reset();
  const std::uint64_t c32 = sim.global_round("strided32", addrs, model::Dir::kRead,
                                             model::AccessClass::kCasual, 1);
  const std::uint64_t c16 = sim.global_round_packed("strided16", addrs, model::Dir::kRead,
                                                    model::AccessClass::kCasual, 2);
  std::cout << "stride-2 read: 32-bit " << c32 << " units, 16-bit " << c16
            << " units (packing halves the touched groups)\n\n";

  // --- bytes: the real saving -----------------------------------------
  // Global data rounds: 2 per row pass (in/out) x 3 + 2 per transpose
  // x 2 = 10; schedule rounds: 2 per row pass x 3 = 6.
  util::Table table({"traffic component", "32-bit schedules", "16-bit schedules"});
  const std::uint64_t data_bytes = 10 * n * 4;
  const std::uint64_t sched32 = 6 * n * 4;
  const std::uint64_t sched16 = 6 * n * 2;
  table.add_row({"data rounds (10 global, 4 B/elem)", util::format_bytes(data_bytes),
                 util::format_bytes(data_bytes)});
  table.add_row({"schedule rounds (6 global)", util::format_bytes(sched32),
                 util::format_bytes(sched16)});
  table.add_row({"total global bytes", util::format_bytes(data_bytes + sched32),
                 util::format_bytes(data_bytes + sched16)});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  const double saving = 100.0 * (sched32 - sched16) /
                        static_cast<double>(data_bytes + sched32);
  std::cout << "\nFor float data at n = " << bench::size_label(n) << ": "
            << util::format_double(saving, 1)
            << "% of all global DRAM bytes saved by the 16-bit choice — invisible\n"
               "in time units, significant on bandwidth-bound silicon.\n";
  return 0;
}
