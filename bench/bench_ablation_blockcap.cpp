/// \file bench_ablation_blockcap.cpp
/// \brief Ablation of the CUDA block-size limit (Section VIII: "each
///        CUDA block can have up to 1024 threads ... each thread works
///        for sqrt(n)/1024 numbers"): when a matrix row outgrows the
///        block cap, each row-wise round wave-serializes and pays the
///        global latency once per wave. This bench quantifies that
///        overhead across sizes and caps — and shows it is negligible
///        at the paper's scales, justifying the uncapped model.
///
/// Usage: bench_ablation_blockcap [--max 16M] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "max"}, std::cerr)) return 2;
  const std::uint64_t max_n = cli.get_int("max", 16ull << 20);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — CUDA 1024-thread block cap vs the uncapped model",
                      "Section VIII implementation note");
  const model::MachineParams mp = model::MachineParams::gtx680();

  util::Table table({"n", "row length", "uncapped", "cap 1024", "cap 256", "overhead@1024"});
  for (std::uint64_t n = 1 << 20; n <= max_n; n <<= 1) {
    const unsigned k = util::log2_exact(n);
    const std::uint64_t cols = 1ull << ((k + 1) / 2);
    const std::uint64_t t0 = model::scheduled_time(n, mp);
    const std::uint64_t t1024 = model::scheduled_time_capped(n, mp, 1, 1024);
    const std::uint64_t t256 = model::scheduled_time_capped(n, mp, 1, 256);
    table.add_row(
        {bench::size_label(n), util::format_count(cols), util::format_count(t0),
         util::format_count(t1024), util::format_count(t256),
         util::format_double(
             100.0 * (static_cast<double>(t1024) - static_cast<double>(t0)) /
                 static_cast<double>(t0),
             2) +
             "%"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nRows exceed 1024 threads from n = 2M upward (cols = 2048); each extra\n"
               "wave adds one latency per affected round. At the paper's 4M the cap\n"
               "costs well under 1% — the uncapped accounting the paper (and this\n"
               "library) uses is faithful.\n";
  return 0;
}
