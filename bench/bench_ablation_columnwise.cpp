/// \file bench_ablation_columnwise.cpp
/// \brief Ablation: why does the column-wise permutation ride on two
///        transposes (Section V/VI) instead of walking columns
///        directly? The direct walk strides by `cols` through global
///        memory — every warp touches w address groups, i.e. fully
///        casual — while the transpose detour keeps all 16 rounds
///        coalesced/conflict-free.
///
/// Usage: bench_ablation_columnwise [--max 1M] [--csv]

#include "bench_common.hpp"

#include <iostream>
#include <numeric>

#include "core/ops.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "max"}, std::cerr)) return 2;
  const std::uint64_t max_n = cli.get_int("max", 1 << 20);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — transpose-based vs direct column-wise permutation",
                      "Sections V-VI design choice");

  const model::MachineParams mp = model::MachineParams::gtx680();
  util::Table table({"n", "shape", "naive (strided)", "transpose-based", "advantage"});
  util::Xoshiro256 rng(5);

  for (std::uint64_t n = 64 << 10; n <= max_n; n <<= 1) {
    const core::MatrixShape shape = core::shape_for(n, mp.width);
    const std::uint64_t rows = shape.rows, cols = shape.cols;

    // Random per-column permutations h_c, laid out [c * rows + i].
    std::vector<std::uint16_t> h(n);
    for (std::uint64_t c = 0; c < cols; ++c) {
      auto* col = h.data() + c * rows;
      for (std::uint64_t i = 0; i < rows; ++i) col[i] = static_cast<std::uint16_t>(i);
      for (std::uint64_t i = rows - 1; i > 0; --i) {
        std::swap(col[i], col[rng.bounded(i + 1)]);
      }
    }

    sim::HmmSim naive(mp);
    const std::uint64_t t_naive = core::column_wise_naive_sim_rounds(naive, "naive", h,
                                                                     rows, cols);
    const core::RowScheduleSet set = core::build_column_schedules(h, rows, cols, mp.width);
    sim::HmmSim via_t(mp);
    const std::uint64_t t_transpose =
        core::column_wise_sim_rounds(via_t, "colwise", set, rows, cols);

    table.add_row({bench::size_label(n),
                   util::format_count(rows) + "x" + util::format_count(cols),
                   util::format_count(t_naive), util::format_count(t_transpose),
                   util::format_double(static_cast<double>(t_naive) /
                                           static_cast<double>(t_transpose),
                                       2) +
                       "x"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nThe naive walk costs ~2n stages (w groups per warp on both rounds);\n"
               "the transpose-based version costs 16 coalesced rounds = 16n/w — an\n"
               "asymptotic w/8 = 4x advantage at w=32, despite doing 8x more rounds.\n";
  return 0;
}
