/// \file bench_table2.cpp
/// \brief Reproduces **Table II**: running time of the D-designated,
///        S-designated, and scheduled algorithms for the five paper
///        permutations across array sizes, for float (Table IIa) and
///        double (Table IIb) elements.
///
/// Two result sets are printed per element type:
///  * host wall-clock milliseconds (this machine's CPU backend stands in
///    for the GTX-680 — cacheline locality plays the role of coalescing);
///  * simulated HMM time units (the paper's model, exact).
///
/// The paper's headline shapes to look for:
///  * conventional times grow with the permutation's distribution
///    (identical/shuffle fast; random/bit-reversal/transpose slow);
///  * the scheduled column is CONSTANT down each size column,
///    independent of the permutation;
///  * for high-distribution permutations and large n, scheduled wins.
///
/// Usage: bench_table2 [--type float|double|both] [--full] [--extended]
///                     [--reps 3] [--sim-limit 1M] [--csv]
/// --full runs the paper's exact range (up to 4096K); --extended adds
/// 8M/16M, past the paper, to expose the host-side crossover (the host
/// LLC is much larger than the GTX-680's 512 KiB L2).

#include "bench_common.hpp"

#include <iostream>

namespace {

using namespace hmm;

template <class T>
void run_for_type(const std::string& type_name, bool full, bool extended, int reps,
                  std::uint64_t sim_limit, bool csv, util::ThreadPool& pool) {
  const model::MachineParams mp = model::MachineParams::gtx680();
  const auto sizes = bench::table2_sizes(full, std::is_same_v<T, double>, extended);
  const auto families = bench::paper_families();

  // results[family][size-index]
  std::vector<std::vector<bench::TrioResult<T>>> results(families.size());
  for (std::size_t f = 0; f < families.size(); ++f) {
    for (std::uint64_t n : sizes) {
      const perm::Permutation p = perm::by_name(families[f], n, /*seed=*/42);
      results[f].push_back(bench::run_trio<T>(p, mp, pool, n <= sim_limit, reps));
    }
  }

  auto print_block = [&](const std::string& title,
                         auto&& cell) {
    std::cout << "\n--- " << title << " (" << type_name << ") ---\n";
    std::vector<std::string> header = {"permutation"};
    for (std::uint64_t n : sizes) header.push_back(bench::size_label(n));
    util::Table table(header);
    for (std::size_t f = 0; f < families.size(); ++f) {
      std::vector<std::string> row = {families[f]};
      for (std::size_t s = 0; s < sizes.size(); ++s) row.push_back(cell(results[f][s]));
      table.add_row(row);
    }
    if (csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
  };

  print_block("D-designated, host ms", [](const bench::TrioResult<T>& r) {
    return util::format_ms(r.d_designated.cpu_ms);
  });
  print_block("S-designated, host ms", [](const bench::TrioResult<T>& r) {
    return util::format_ms(r.s_designated.cpu_ms);
  });
  print_block("Scheduled (ours), host ms", [](const bench::TrioResult<T>& r) {
    return util::format_ms(r.scheduled.cpu_ms);
  });

  print_block("D-designated, HMM time units", [](const bench::TrioResult<T>& r) {
    return util::format_count(r.d_designated.sim_units);
  });
  print_block("S-designated, HMM time units", [](const bench::TrioResult<T>& r) {
    return util::format_count(r.s_designated.sim_units);
  });
  print_block("Scheduled (ours), HMM time units", [](const bench::TrioResult<T>& r) {
    return util::format_count(r.scheduled.sim_units);
  });

  // Paper-shape summary at the largest measured size.
  const std::size_t last = sizes.size() - 1;
  const auto& rnd = results[2][last];  // random family
  const auto& id = results[0][last];   // identical
  std::cout << "\nShape check @" << bench::size_label(sizes[last]) << " " << type_name
            << ": random D/scheduled speedup = "
            << util::format_double(rnd.d_designated.cpu_ms / rnd.scheduled.cpu_ms, 2)
            << "x (host), "
            << util::format_double(static_cast<double>(rnd.d_designated.sim_units) /
                                       static_cast<double>(rnd.scheduled.sim_units),
                                   2)
            << "x (model; paper reports ~2.4-3x at 4M). Identical favors conventional: "
            << util::format_double(id.scheduled.cpu_ms / id.d_designated.cpu_ms, 2)
            << "x slower on host.\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "extended", "full", "reps", "sim-limit", "type"}, std::cerr)) return 2;
  const std::string type = cli.get("type", "both");
  const bool full = cli.get_bool("full");
  const bool extended = cli.get_bool("extended");
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const std::uint64_t sim_limit = cli.get_int("sim-limit", 1 << 20);
  const bool csv = cli.get_bool("csv");

  util::ThreadPool pool;

  bench::print_header("Table II — running time of the three permutation algorithms",
                      "Table II(a)/(b)");
  std::cout << "Columns are n in K elements (paper: 256K..4096K; default here "
            << (full ? "full paper range" : "256K..1024K, pass --full for the paper range")
            << ").\nHost backend: " << pool.size()
            << " worker thread(s); GTX-680-like model: w=32, l=300, d=8.\n";

  if (type == "float" || type == "both") {
    run_for_type<float>("float32", full, extended, reps, sim_limit, csv, pool);
  }
  if (type == "double" || type == "both") {
    run_for_type<double>("float64", full, extended, reps, sim_limit, csv, pool);
  }
  return 0;
}
