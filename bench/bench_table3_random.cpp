/// \file bench_table3_random.cpp
/// \brief Reproduces **Table III**: sample many uniformly random
///        permutations and report the min / average / max running time
///        of the three algorithms plus the distribution ratio d_w(P)/n.
///
/// The paper samples 1000 permutations of 4M doubles and finds
/// d_w(P)/n in [0.99987, 0.99990], near-zero variance for every
/// algorithm, and the scheduled algorithm ~2.45x faster than
/// D-designated. Defaults here: 25 samples of 512K (pass --full for
/// 1000 x 4M — slow on a laptop-class host).
///
/// Usage: bench_table3_random [--n 512K] [--samples 25] [--full] [--csv]

#include "bench_common.hpp"

#include <algorithm>
#include <iostream>

namespace {

using namespace hmm;

struct Agg {
  double min = 1e300, sum = 0, max = 0;
  void add(double v) {
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
  }
  [[nodiscard]] double avg(int k) const { return sum / k; }
};

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "full", "n", "samples"}, std::cerr)) return 2;
  const bool full = cli.get_bool("full");
  const std::uint64_t n = full ? (4096ull << 10) : cli.get_int("n", 512ull << 10);
  const int samples = full ? 1000 : static_cast<int>(cli.get_int("samples", 25));
  const bool csv = cli.get_bool("csv");

  const model::MachineParams mp = model::MachineParams::gtx680();
  util::ThreadPool pool;

  bench::print_header("Table III — statistics over uniformly random permutations",
                      "Table III");
  std::cout << "n = " << bench::size_label(n) << " doubles, " << samples
            << " random permutations (paper: 1000 x 4M).\n\n";

  Agg cpu_d, cpu_s, cpu_sched, sim_d, sim_s, sim_sched, dist_ratio;
  for (int s = 0; s < samples; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 1000 + s);
    const auto r = bench::run_trio<double>(p, mp, pool, /*measure_sim=*/false, /*reps=*/1);
    cpu_d.add(r.d_designated.cpu_ms);
    cpu_s.add(r.s_designated.cpu_ms);
    cpu_sched.add(r.scheduled.cpu_ms);
    sim_d.add(static_cast<double>(r.d_designated.sim_units));
    sim_s.add(static_cast<double>(r.s_designated.sim_units));
    sim_sched.add(static_cast<double>(r.scheduled.sim_units));
    dist_ratio.add(static_cast<double>(r.dist) / static_cast<double>(n));
  }

  util::Table table({"statistic", "D-designated", "S-designated", "Scheduled", "d_w(P)/n"});
  table.add_row({"host ms   minimum", util::format_ms(cpu_d.min), util::format_ms(cpu_s.min),
                 util::format_ms(cpu_sched.min), util::format_double(dist_ratio.min, 5)});
  table.add_row({"host ms   average", util::format_ms(cpu_d.avg(samples)),
                 util::format_ms(cpu_s.avg(samples)), util::format_ms(cpu_sched.avg(samples)),
                 util::format_double(dist_ratio.avg(samples), 5)});
  table.add_row({"host ms   maximum", util::format_ms(cpu_d.max), util::format_ms(cpu_s.max),
                 util::format_ms(cpu_sched.max), util::format_double(dist_ratio.max, 5)});
  table.add_separator();
  table.add_row({"HMM units minimum", util::format_count(static_cast<std::uint64_t>(sim_d.min)),
                 util::format_count(static_cast<std::uint64_t>(sim_s.min)),
                 util::format_count(static_cast<std::uint64_t>(sim_sched.min)), ""});
  table.add_row({"HMM units average",
                 util::format_count(static_cast<std::uint64_t>(sim_d.avg(samples))),
                 util::format_count(static_cast<std::uint64_t>(sim_s.avg(samples))),
                 util::format_count(static_cast<std::uint64_t>(sim_sched.avg(samples))), ""});
  table.add_row({"HMM units maximum", util::format_count(static_cast<std::uint64_t>(sim_d.max)),
                 util::format_count(static_cast<std::uint64_t>(sim_s.max)),
                 util::format_count(static_cast<std::uint64_t>(sim_sched.max)), ""});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nPaper (1000 x 4M doubles): D 424.87-426.39ms, S 397.89-398.77ms, "
               "scheduled 173.50-173.92ms, d_w(P)/n 0.99987-0.99990.\n"
            << "Shape checks:\n"
            << "  scheduled model time constant across samples: "
            << (sim_sched.min == sim_sched.max ? "yes" : "NO") << "\n"
            << "  model speedup D/scheduled = "
            << util::format_double(sim_d.avg(samples) / sim_sched.avg(samples), 2)
            << "x (paper: 2.45x)\n"
            << "  host speedup  D/scheduled = "
            << util::format_double(cpu_d.avg(samples) / cpu_sched.avg(samples), 2) << "x\n";
  return 0;
}
