/// \file bench_plan_build.cpp
/// \brief Quantifies the offline phase the paper's model does not
///        charge: time and memory to build a ScheduledPlan vs n, split
///        into row-graph coloring and per-row schedule compilation.
///
/// Usage: bench_plan_build [--max 1M] [--family bit-reversal] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "family", "max"}, std::cerr)) return 2;
  const std::uint64_t max_n = cli.get_int("max", 1 << 20);
  const std::string family = cli.get("family", "bit-reversal");
  const bool csv = cli.get_bool("csv");

  bench::print_header("Offline planning cost (not charged by the paper's model)",
                      "Section VII setup");

  const model::MachineParams mp = model::MachineParams::gtx680();
  util::Table table({"n", "shape", "row-graph ms", "schedules ms", "total ms",
                     "schedule bytes", "ns/element"});
  for (std::uint64_t n = 64 << 10; n <= max_n; n <<= 1) {
    const perm::Permutation p = perm::by_name(family, n, 42);
    util::Stopwatch sw;
    const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
    const double total_ms = sw.millis();
    const auto& st = plan.build_stats();
    table.add_row(
        {bench::size_label(n),
         util::format_count(plan.shape().rows) + "x" + util::format_count(plan.shape().cols),
         util::format_ms(st.row_graph_seconds * 1e3), util::format_ms(st.schedules_seconds * 1e3),
         util::format_ms(total_ms), util::format_bytes(plan.schedule_bytes()),
         util::format_double(total_ms * 1e6 / static_cast<double>(n), 1)});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nThe plan is built once per permutation and reused for any number of\n"
               "arrays (the offline setting); amortized cost is the point of the table.\n";
  return 0;
}
