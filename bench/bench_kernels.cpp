/// \file bench_kernels.cpp
/// \brief google-benchmark microbenchmarks of the host kernels that the
///        three algorithms are built from: coalesced-style streaming
///        copy, random scatter/gather (the conventional algorithms'
///        casual round), row-wise pass, and the two transposes.
///
/// The per-element throughput gap between `StreamCopy` and
/// `RandomScatter` is the host-side analogue of the coalesced/casual
/// gap on the HMM — the entire reason the scheduled algorithm wins.

#include <benchmark/benchmark.h>

#include "cpu/kernels.hpp"
#include "core/plan.hpp"
#include "perm/generators.hpp"
#include "util/aligned_vector.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hmm;

util::ThreadPool& pool() {
  static util::ThreadPool p;
  return p;
}

void BM_StreamCopy(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    pool().parallel_for_chunks(0, n, [&](std::uint64_t lo, std::uint64_t hi) {
      for (std::uint64_t i = lo; i < hi; ++i) b[i] = a[i];
    });
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_StreamCopy)->Range(1 << 14, 1 << 22);

void BM_RandomScatter(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  const perm::Permutation p = perm::by_name("random", n, 7);
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    cpu::scatter<float>(pool(), a, b, p.data());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_RandomScatter)->Range(1 << 14, 1 << 22);

void BM_RandomGather(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  const perm::Permutation p = perm::by_name("random", n, 8);
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    cpu::gather<float>(pool(), a, b, p.data());
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_RandomGather)->Range(1 << 14, 1 << 22);

void BM_RowWisePass(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  const model::MachineParams mp = model::MachineParams::gtx680();
  const perm::Permutation p = perm::by_name("random", n, 9);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    cpu::row_wise_pass<float>(pool(), a, b, plan.shape().rows, plan.shape().cols,
                              plan.pass1().phat, plan.pass1().q);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_RowWisePass)->Range(1 << 14, 1 << 22);

void BM_TransposeBlocked(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  const std::uint64_t m = 1ull << ((63 - __builtin_clzll(n)) / 2);
  const std::uint64_t r = n / m;
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    cpu::transpose_blocked<float>(pool(), a, b, r, m, 32);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_TransposeBlocked)->Range(1 << 14, 1 << 22);

void BM_TransposeNaive(benchmark::State& state) {
  const std::uint64_t n = state.range(0);
  const std::uint64_t m = 1ull << ((63 - __builtin_clzll(n)) / 2);
  const std::uint64_t r = n / m;
  util::aligned_vector<float> a(n, 1.f), b(n);
  for (auto _ : state) {
    cpu::transpose_naive<float>(pool(), a, b, r, m);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * n * sizeof(float) * 2));
}
BENCHMARK(BM_TransposeNaive)->Range(1 << 14, 1 << 22);

}  // namespace

BENCHMARK_MAIN();
