/// \file bench_runtime_cache.cpp
/// \brief Runtime-layer benchmark: cold vs warm plan acquisition
///        through the PlanCache, and batched-execute throughput through
///        the Executor, at n = 2^10 .. 2^20.
///
/// Cold acquisition pays the paper's offline phase (row graph + König
/// coloring + per-row schedules); a warm hit is a fingerprint lookup.
/// The gap between the two columns *is* the amortization argument for
/// serving permutations from a cache (ISSUE acceptance: >= 10x at 64K).
///
/// Usage: bench_runtime_cache [--min 1K] [--max 1M] [--batch 16]
///                            [--family bit-reversal] [--json]
///
/// `--json` appends one JSON object per row (JSON Lines) after the
/// table — the repo's BENCH_*.json trajectory format.

#include "bench_common.hpp"

#include <future>
#include <iostream>
#include <vector>

#include "core/permuter.hpp"
#include "runtime/executor.hpp"
#include "runtime/metrics.hpp"
#include "runtime/plan_cache.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"batch", "family", "json", "max", "min"}, std::cerr)) return 2;
  const std::uint64_t min_n = static_cast<std::uint64_t>(cli.get_int("min", 1 << 10));
  const std::uint64_t max_n = static_cast<std::uint64_t>(cli.get_int("max", 1 << 20));
  const std::uint64_t batch = static_cast<std::uint64_t>(cli.get_int("batch", 16));
  const std::string family = cli.get("family", "bit-reversal");
  const bool json = cli.get_bool("json");

  bench::print_header("Runtime plan cache + batched executor",
                      "the serving layer above Section VII");

  const model::MachineParams mp = model::MachineParams::gtx680();
  auto& pool = util::ThreadPool::global();

  util::Table table({"n", "cold ms", "warm us", "acq speedup", "batch", "serial ms",
                     "batched ms", "exec speedup", "hit rate %"});

  for (std::uint64_t n = std::max<std::uint64_t>(min_n, 1 << 10); n <= max_n; n <<= 1) {
    const perm::Permutation p = perm::by_name(family, n, 42);

    // --- Cold vs warm acquisition -----------------------------------
    // A fresh cache per repetition makes every first acquire a true
    // cold compile; warm time is the median over many repeat acquires
    // of the same key (it is far below timer resolution for one call).
    runtime::ServiceMetrics metrics;
    double cold_ms = 0;
    {
      runtime::PlanCache cache(runtime::PlanCache::Config{}, &metrics);
      util::Stopwatch sw;
      auto h = cache.acquire<float>(p, mp, core::Strategy::kScheduled);
      cold_ms = sw.millis();

      const int warm_iters = 1000;
      util::Stopwatch ws;
      for (int i = 0; i < warm_iters; ++i) {
        auto hh = cache.acquire<float>(p, mp, core::Strategy::kScheduled);
      }
      const double warm_us = ws.millis() * 1e3 / warm_iters;

      // --- Serial vs batched execution ------------------------------
      util::aligned_vector<float> a(n);
      for (std::uint64_t i = 0; i < n; ++i) a[i] = static_cast<float>(i & 0xffff);
      std::vector<util::aligned_vector<float>> outs(batch);
      for (auto& o : outs) o.resize(n);
      util::aligned_vector<float> scratch(n);

      const double serial_ms = bench::time_ms([&] {
        for (std::uint64_t r = 0; r < batch; ++r) {
          h->permute(std::span<const float>(a.data(), n),
                     std::span<float>(outs[r].data(), n),
                     std::span<float>(scratch.data(), n));
        }
      });

      runtime::Executor executor(pool, &metrics);
      const double batched_ms = bench::time_ms([&] {
        std::vector<std::future<void>> futs;
        futs.reserve(batch);
        for (std::uint64_t r = 0; r < batch; ++r) {
          futs.push_back(executor.submit<float>(h, std::span<const float>(a.data(), n),
                                                std::span<float>(outs[r].data(), n)));
        }
        for (auto& f : futs) f.get();
      });

      const runtime::MetricsSnapshot snap = metrics.snapshot();
      table.add_row({bench::size_label(n), util::format_ms(cold_ms),
                     util::format_double(warm_us, 2),
                     util::format_double(cold_ms * 1e3 / warm_us, 0),
                     util::format_count(batch), util::format_ms(serial_ms),
                     util::format_ms(batched_ms),
                     util::format_double(serial_ms / batched_ms, 2),
                     util::format_double(snap.hit_rate() * 100.0, 1)});
    }
  }

  table.print(std::cout);
  std::cout << "\n'cold' includes the full offline phase; 'warm' is a cache hit\n"
               "(fingerprint + LRU touch). 'exec speedup' compares one thread\n"
               "looping permute() against the executor overlapping the batch.\n";
  if (json) {
    std::cout << "\n";
    table.print_json_rows(std::cout, "\"bench\":\"runtime_cache\"");
  }
  return 0;
}
