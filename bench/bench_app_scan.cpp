/// \file bench_app_scan.cpp
/// \brief Application study: reduction and prefix-sums (the paper's
///        ref [12] lineage) on the simulated HMM — model time vs n,
///        decomposed against the coalesced-round unit, with the
///        round-class audit.
///
/// Usage: bench_app_scan [--max 256K] [--csv]

#include "bench_common.hpp"

#include <iostream>

#include "exec/algorithms.hpp"

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "max"}, std::cerr)) return 2;
  const std::uint64_t max_n = cli.get_int("max", 256 << 10);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Application — reduction and prefix-sums on the simulated HMM",
                      "ref [12] lineage (memory-machine prefix-sums)");
  const model::MachineParams mp = model::MachineParams::gtx680();

  util::Table table({"n", "reduce units", "scan units", "scan/coalesced-round",
                     "casual rounds", "result ok"});
  for (std::uint64_t n = 16 << 10; n <= max_n; n <<= 1) {
    util::aligned_vector<std::uint32_t> host(n);
    std::uint64_t expected_sum = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      host[i] = static_cast<std::uint32_t>(i % 97);
      expected_sum += host[i];
    }

    exec::Machine m(mp);
    auto data =
        m.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), n});
    const auto red = exec::reduce_sum<std::uint32_t>(m, data, 1024);
    const bool sum_ok = (red.value == expected_sum);

    exec::Machine m2(mp);
    auto input =
        m2.alloc_global<std::uint32_t>(std::span<const std::uint32_t>{host.data(), n});
    const auto [out, scan_units] = exec::inclusive_scan<std::uint32_t>(m2, input, 1024);
    std::vector<std::uint32_t> got(n);
    m2.read_back(out, std::span<std::uint32_t>{got.data(), n});
    const bool scan_ok =
        (got.back() == static_cast<std::uint32_t>(expected_sum & 0xffffffffu));

    const auto counts = m2.sim().stats().observed_counts();
    table.add_row({bench::size_label(n), util::format_count(red.time_units),
                   util::format_count(scan_units),
                   util::format_double(static_cast<double>(scan_units) /
                                           static_cast<double>(
                                               model::coalesced_round_time(n, mp)),
                                       1) +
                       "x",
                   util::format_count(counts.casual_read_global + counts.casual_write_global),
                   sum_ok && scan_ok ? "yes" : "NO"});
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "\nThe Kogge-Stone scan does 3 log2(n) coalesced-ish rounds; only the\n"
               "log2(w) shortest shifts degrade (2 groups/warp). Reduction is 2 kernels\n"
               "of tree rounds — both are latency-, then bandwidth-bound, never\n"
               "scatter-bound: the opposite regime from the permutation tables.\n";
  return 0;
}
