/// \file bench_table1_rounds.cpp
/// \brief Reproduces **Table I**: the number of memory-access rounds of
///        every algorithm per class (casual / coalesced / conflict-free)
///        and the HMM running time, measured by instrumenting the
///        simulator, next to the paper's closed forms.
///
/// Usage: bench_table1_rounds [--n 65536] [--width 32] [--latency 300]
///                            [--dmms 8] [--csv]

#include "bench_common.hpp"

#include <iostream>

#include "core/ops.hpp"

namespace {

using namespace hmm;

/// Collect the round inventory + time of one simulated run.
struct Row {
  std::string name;
  model::RoundCounts observed;
  std::uint64_t sim_time = 0;
  std::uint64_t formula_time = 0;
  bool declarations_ok = true;
};

std::vector<std::string> cells(const Row& r) {
  const auto& c = r.observed;
  return {r.name,
          util::format_count(c.casual_read_global),
          util::format_count(c.casual_write_global),
          util::format_count(c.coalesced_read),
          util::format_count(c.coalesced_write),
          util::format_count(c.conflict_free_read),
          util::format_count(c.conflict_free_write),
          util::format_count(c.total_rounds()),
          util::format_count(r.sim_time),
          util::format_count(r.formula_time),
          r.declarations_ok ? "yes" : "NO"};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "dmms", "latency", "n", "width"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 1 << 16);
  model::MachineParams mp;
  mp.width = static_cast<std::uint32_t>(cli.get_int("width", 32));
  mp.latency = static_cast<std::uint32_t>(cli.get_int("latency", 300));
  mp.dmms = static_cast<std::uint32_t>(cli.get_int("dmms", 8));
  mp.validate();

  bench::print_header("Table I — memory access rounds and HMM running time", "Table I");
  std::cout << "n = " << n << ", width = " << mp.width << ", latency = " << mp.latency
            << ", dmms = " << mp.dmms << "\n"
            << "Permutation used for the conventional rows: bit-reversal "
               "(d_w(P) = n, the worst case).\n\n";

  // Bit-reversal gives the conventional algorithms their worst-case
  // distribution; the scheduled algorithm's rounds are permutation-
  // independent (asserted below by also running the identical case).
  const perm::Permutation p = perm::bit_reversal(n);
  const perm::Permutation pinv = p.inverse();
  const std::uint64_t dist = perm::distribution(p, mp.width);

  std::vector<Row> rows;

  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "D-designated";
    r.sim_time = core::d_designated_sim_rounds(sim, p);
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::d_designated_time(n, dist, mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }
  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "S-designated";
    r.sim_time = core::s_designated_sim_rounds(sim, pinv);
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::s_designated_time(n, perm::inverse_distribution(p, mp.width), mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }

  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "Scheduled (ours)";
    r.sim_time = core::scheduled_sim_rounds(sim, plan);
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::scheduled_time(n, mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }

  // Component rows (transpose / row-wise / column-wise), measured by
  // running the standalone ops on the simulator.
  const core::MatrixShape shape = core::shape_for(n, mp.width);
  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "  transpose (component)";
    r.sim_time = core::transpose_sim_rounds(sim, shape.rows, shape.cols);
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::transpose_time(n, mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }
  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "  row-wise (component)";
    r.sim_time = core::row_wise_sim_rounds(sim, plan.pass1());
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::row_wise_time(n, mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }
  {
    sim::HmmSim sim(mp);
    Row r;
    r.name = "  column-wise (component)";
    r.sim_time = core::column_wise_sim_rounds(sim, "colwise", plan.pass2(), shape.rows,
                                              shape.cols);
    r.observed = sim.stats().observed_counts();
    r.formula_time = model::column_wise_time(n, mp);
    r.declarations_ok = sim.stats().declarations_hold();
    rows.push_back(r);
  }

  util::Table table({"algorithm", "casual rd", "casual wr", "coal rd", "coal wr", "cf rd",
                     "cf wr", "rounds", "sim time", "formula", "decl ok"});
  for (const auto& r : rows) table.add_row(cells(r));
  if (cli.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nLower bound max(2n/w, l) = " << model::lower_bound(n, mp)
            << " time units;  scheduled/lower-bound = "
            << util::format_double(
                   static_cast<double>(model::scheduled_time(n, mp)) /
                       static_cast<double>(model::lower_bound(n, mp)),
                   2)
            << "x (Theorem 9: optimal up to the constant).\n";

  // Cross-check: the scheduled inventory equals Table I regardless of P.
  {
    sim::HmmSim sim(mp);
    const core::ScheduledPlan plan_id =
        core::ScheduledPlan::build(perm::identical(n), mp);
    core::scheduled_sim_rounds(sim, plan_id);
    const bool same = sim.stats().observed_counts() == model::rounds::scheduled;
    std::cout << "Scheduled round inventory matches Table I for identical permutation: "
              << (same ? "yes" : "NO") << "\n";
  }
  return 0;
}
