/// \file bench_ablation_tile.cpp
/// \brief Tile-size ablation for the host transpose — the CPU analogue
///        of the paper's w x w shared-memory tile (Section V). The
///        paper's diagonal arrangement fixes bank conflicts; on a CPU
///        the tile instead bounds the strided-write working set, and
///        this bench locates the sweet spot (typically near the
///        cacheline-per-way budget, 16-64).

#include <benchmark/benchmark.h>

#include "cpu/kernels.hpp"
#include "util/aligned_vector.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace hmm;

util::ThreadPool& pool() {
  static util::ThreadPool p;
  return p;
}

void BM_TransposeTile(benchmark::State& state) {
  const std::uint64_t m = state.range(0);
  const std::uint64_t tile = state.range(1);
  util::aligned_vector<float> a(m * m, 1.f), b(m * m);
  for (auto _ : state) {
    cpu::transpose_blocked<float>(pool(), a, b, m, m, tile);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * m * m * sizeof(float) * 2));
}

void TileArgs(benchmark::internal::Benchmark* b) {
  for (std::int64_t m : {512, 1024, 2048}) {
    for (std::int64_t tile : {4, 8, 16, 32, 64, 128}) b->Args({m, tile});
  }
}
BENCHMARK(BM_TransposeTile)->Apply(TileArgs);

void BM_TransposeNaiveRef(benchmark::State& state) {
  const std::uint64_t m = state.range(0);
  util::aligned_vector<float> a(m * m, 1.f), b(m * m);
  for (auto _ : state) {
    cpu::transpose_naive<float>(pool(), a, b, m, m);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * m * m * sizeof(float) * 2));
}
BENCHMARK(BM_TransposeNaiveRef)->Arg(512)->Arg(1024)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
