/// \file bench_distribution.cpp
/// \brief Sweeps the distribution metric d_w(P) (Section IV) across all
///        permutation families and machine widths — the quantity
///        Lemma 4 identifies as the conventional algorithms' cost
///        driver, and the basis of the paper's claim that "for almost
///        all permutations" the scheduled algorithm wins.
///
/// Usage: bench_distribution [--n 1M] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const bool csv = cli.get_bool("csv");

  bench::print_header("Distribution metric d_w(P) across permutation families",
                      "Section IV analysis");
  std::cout << "n = " << bench::size_label(n)
            << ". d_w ranges from n/w (identical) to n (full scatter);\n"
               "Lemma 4: conventional time = 2n/w + d_w(P) + 3(l-1).\n\n";

  const std::vector<std::uint32_t> widths = {4, 8, 16, 32};
  std::vector<std::string> header = {"permutation"};
  for (auto w : widths) header.push_back("d_" + std::to_string(w) + "/n");
  header.push_back("d_32(P^-1)/n");
  header.push_back("D-time @w=32,l=300");
  header.push_back("vs scheduled");

  util::Table table(header);
  model::MachineParams mp = model::MachineParams::gtx680();

  for (const auto& name : perm::family_names()) {
    const perm::Permutation p = perm::by_name(name, n, 42);
    std::vector<std::string> row = {name};
    std::uint64_t d32 = 0;
    for (auto w : widths) {
      const std::uint64_t d = perm::distribution(p, w);
      if (w == 32) d32 = d;
      row.push_back(util::format_double(static_cast<double>(d) / static_cast<double>(n), 5));
    }
    const std::uint64_t dinv = perm::inverse_distribution(p, 32);
    row.push_back(util::format_double(static_cast<double>(dinv) / static_cast<double>(n), 5));
    const std::uint64_t td = model::d_designated_time(n, d32, mp);
    const std::uint64_t ts = model::scheduled_time(n, mp);
    row.push_back(util::format_count(td));
    row.push_back(util::format_double(static_cast<double>(td) / static_cast<double>(ts), 2) +
                  "x");
    table.add_row(row);
  }
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Random-permutation concentration: the basis of Table III.
  std::cout << "\nd_32(P)/n over 20 random permutations of " << bench::size_label(n) << ": ";
  double lo = 1e9, hi = 0;
  for (int s = 0; s < 20; ++s) {
    const perm::Permutation p = perm::by_name("random", n, 7000 + s);
    const double ratio =
        static_cast<double>(perm::distribution(p, 32)) / static_cast<double>(n);
    lo = std::min(lo, ratio);
    hi = std::max(hi, ratio);
  }
  std::cout << "[" << util::format_double(lo, 5) << ", " << util::format_double(hi, 5)
            << "] (paper @4M: [0.99987, 0.99990])\n";
  return 0;
}
