/// \file bench_ablation_passes.cpp
/// \brief Ablation of the online phase's pass structure on the host:
///  * GPU-faithful scheduled (reads the (p̂, q) schedule arrays, like
///    the paper's kernels) vs the direct variant (applies g per row,
///    one indirection) — the cost of schedule reads;
///  * per-pass breakdown (3 row passes + 2 transposes) vs the
///    conventional single-scatter — where the 5x traffic goes.
///
/// Usage: bench_ablation_passes [--n 1M] [--reps 3] [--csv]

#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv) {
  using namespace hmm;
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"csv", "n", "reps"}, std::cerr)) return 2;
  const std::uint64_t n = cli.get_int("n", 1 << 20);
  const int reps = static_cast<int>(cli.get_int("reps", 3));
  const bool csv = cli.get_bool("csv");

  bench::print_header("Ablation — pass structure & schedule-read overhead (host)",
                      "Section VIII implementation notes");

  const model::MachineParams mp = model::MachineParams::gtx680();
  util::ThreadPool pool;
  const perm::Permutation p = perm::bit_reversal(n);
  const core::ScheduledPlan plan = core::ScheduledPlan::build(p, mp);
  const std::uint64_t r = plan.shape().rows;
  const std::uint64_t m = plan.shape().cols;

  util::aligned_vector<float> a(n, 1.f), b(n), s1(n), s2(n);

  const double t_sched = bench::time_ms(
      [&] { core::scheduled_cpu<float>(pool, plan, a, b, s1, s2); }, reps);
  const double t_direct = bench::time_ms(
      [&] { core::scheduled_cpu_direct<float>(pool, plan, a, b, s1, s2); }, reps);
  const double t_conv =
      bench::time_ms([&] { core::d_designated_cpu<float>(pool, a, b, p); }, reps);

  const double t_row = bench::time_ms(
      [&] {
        cpu::row_wise_pass<float>(pool, a, s1, r, m, plan.pass1().phat, plan.pass1().q);
      },
      reps);
  const double t_row_direct = bench::time_ms(
      [&] { cpu::row_wise_pass_direct<float>(pool, a, s1, r, m, plan.direct1()); }, reps);
  const double t_transpose = bench::time_ms(
      [&] { cpu::transpose_blocked<float>(pool, a, s1, r, m, mp.width); }, reps);

  util::Table table({"variant", "ms", "vs conventional", "notes"});
  auto ratio = [&](double t) { return util::format_double(t / t_conv, 2) + "x"; };
  table.add_row({"D-designated (1 scatter)", util::format_ms(t_conv), "1.00x",
                 "casual writes"});
  table.add_row({"scheduled, GPU-faithful", util::format_ms(t_sched), ratio(t_sched),
                 "reads phat+q arrays (paper's kernels)"});
  table.add_row({"scheduled, direct g", util::format_ms(t_direct), ratio(t_direct),
                 "one indirection per element"});
  table.add_separator();
  table.add_row({"one row-wise pass (sched)", util::format_ms(t_row), ratio(t_row),
                 "of 3 in the pipeline"});
  table.add_row({"one row-wise pass (direct)", util::format_ms(t_row_direct),
                 ratio(t_row_direct), ""});
  table.add_row({"one blocked transpose", util::format_ms(t_transpose), ratio(t_transpose),
                 "of 2 in the pipeline"});
  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::cout << "\nn = " << bench::size_label(n)
            << " float32. Expected: 3*row + 2*transpose ~= scheduled total; the\n"
               "direct variant trims the schedule-array traffic (the paper's GPU\n"
               "reads schedules essentially for free thanks to coalescing).\n";
  return 0;
}
