/// \file bench_fig3_pipeline.cpp
/// \brief Reproduces **Figure 3**: the pipeline-stage example of two
///        warps accessing the DMM and the UMM with width 4.
///
/// The paper's example: warp w0 accesses addresses {7, 5, 15, 0} and
/// warp w1 accesses {10, 11, 12, 15}.
///  * DMM: w0's requests split over 2 stages (bank 3 is hit by 7 and
///    15); w1 also needs 2 stages — the figure's text says memory
///    requests occupy three stages for its variant; our trace prints
///    the exact stage occupancy per warp.
///  * UMM: w0 touches 3 address groups, w1 touches 2 — total 5 stages;
///    completion at `stages + l - 1`.
///
/// Usage: bench_fig3_pipeline [--width 4] [--latency 10]

#include <iostream>
#include <vector>

#include "model/access.hpp"
#include "sim/pipeline.hpp"
#include "util/cli.hpp"

namespace {

using namespace hmm;

void print_trace(const char* title, const std::vector<std::vector<std::uint64_t>>& warps,
                 std::uint32_t width, std::uint32_t latency, bool dmm) {
  std::cout << "\n" << title << " (width " << width << ", latency " << (dmm ? 1 : latency)
            << ")\n";
  std::uint64_t total_stages = 0;
  for (std::size_t w = 0; w < warps.size(); ++w) {
    const sim::WarpTrace trace =
        dmm ? sim::pack_dmm(warps[w], width) : sim::pack_umm(warps[w], width);
    std::cout << "  warp w" << w << " accesses {";
    for (std::size_t i = 0; i < warps[w].size(); ++i) {
      std::cout << warps[w][i] << (i + 1 < warps[w].size() ? ", " : "");
    }
    std::cout << "} -> " << trace.stages.size() << " stage(s)\n";
    for (std::size_t s = 0; s < trace.stages.size(); ++s) {
      std::cout << "    stage " << total_stages + s << ": ";
      for (const auto& req : trace.stages[s].requests) {
        std::cout << "[t" << req.thread << " -> " << req.addr << " ("
                  << (dmm ? "bank " : "group ")
                  << (dmm ? model::bank_of(req.addr, width)
                          : model::group_of(req.addr, width))
                  << ")] ";
      }
      std::cout << "\n";
    }
    total_stages += trace.stages.size();
  }
  const std::uint32_t lat = dmm ? 1 : latency;
  std::cout << "  total stages = " << total_stages << ", completion time = stages + l - 1 = "
            << sim::round_time(total_stages, lat) << " time units\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  if (!cli.expect_flags({"latency", "width"}, std::cerr)) return 2;
  const auto width = static_cast<std::uint32_t>(cli.get_int("width", 4));
  const auto latency = static_cast<std::uint32_t>(cli.get_int("latency", 10));

  std::cout << "================================================================\n"
               "Figure 3 — memory access examples on the DMM and the UMM\n"
               "(reproduces Fig. 3 of Kasagi/Nakano/Ito, ICPP 2013)\n"
               "================================================================\n";

  const std::vector<std::vector<std::uint64_t>> warps = {{7, 5, 15, 0}, {10, 11, 12, 15}};
  print_trace("DMM (shared memory: one request per bank per stage)", warps, width, latency,
              /*dmm=*/true);
  print_trace("UMM (global memory: one address group per stage)", warps, width, latency,
              /*dmm=*/false);

  std::cout << "\nWorst cases for contrast:\n";
  const std::vector<std::vector<std::uint64_t>> same_bank = {{0, 4, 8, 12}};
  print_trace("DMM, all requests to bank 0 (full serialization)", same_bank, width, latency,
              true);
  const std::vector<std::vector<std::uint64_t>> coalesced = {{0, 1, 2, 3}};
  print_trace("UMM, coalesced (single group, single stage)", coalesced, width, latency,
              false);
  return 0;
}
